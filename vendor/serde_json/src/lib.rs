//! Offline, dependency-free stand-in for the `serde_json` crate.
//!
//! The real crate serializes any `serde::Serialize` type; this stand-in
//! covers the subset the workspace actually uses: the self-describing
//! [`Value`] tree, a strict parser ([`from_str`]), and deterministic
//! compact/pretty writers ([`to_string`] / [`to_string_pretty`]).
//! Callers build `Value`s explicitly instead of deriving serializers —
//! when crates.io access exists, swap the manifest entry for the real
//! `serde_json` and replace manual `Value` construction with
//! `serde_json::to_value` on the already-`#[derive(Serialize)]`d types.
//!
//! Determinism contract (the experiment engine depends on it): writing a
//! `Value` is a pure function of the tree — object members keep insertion
//! order, and numbers are formatted with Rust's shortest-roundtrip `f64`
//! formatting — so equal trees always produce byte-identical documents.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

/// Alias mirroring `serde_json::Map` closely enough for field access.
/// Insertion order is preserved (like the real crate's `preserve_order`
/// feature, which experiment tooling enables for stable diffs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Looks up a member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// `true` if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map has no members.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Member keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A parsed/buildable JSON document node (the stand-in's `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like lossy mode of the real crate).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered members.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Array element lookup; `None` for other variants / out of range.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

/// Writes a number exactly the way every emitter in the workspace must:
/// integral values without a trailing `.0`, everything else via Rust's
/// shortest-roundtrip formatting. Deterministic on every platform.
fn write_number(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Inf; mirror the real crate's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Serializes `value` compactly (no whitespace).
#[allow(clippy::inherent_to_string_shadow_display)]
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes `value` with two-space indentation (matches the real
/// crate's `to_string_pretty`).
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// Parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", expected as char))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            self.err(format!("expected `{literal}`"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => self.err(format!("unexpected byte `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.err(format!("invalid number `{text}`")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input was a valid &str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters after document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn roundtrip_compact() {
        let v = obj(vec![
            ("name", Value::from("bench")),
            ("count", Value::from(3u64)),
            ("ratio", Value::from(0.25)),
            ("ok", Value::from(true)),
            ("none", Value::Null),
            (
                "cells",
                Value::Array(vec![Value::from(1u64), Value::from(2u64)]),
            ),
        ]);
        let text = to_string(&v);
        assert_eq!(
            text,
            r#"{"name":"bench","count":3,"ratio":0.25,"ok":true,"none":null,"cells":[1,2]}"#
        );
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn roundtrip_pretty() {
        let v = obj(vec![("a", Value::Array(vec![Value::from(1u64)]))]);
        let pretty = to_string_pretty(&v);
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ]\n}");
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn deterministic_number_formatting() {
        assert_eq!(to_string(&Value::Number(5.0)), "5");
        assert_eq!(to_string(&Value::Number(-2.0)), "-2");
        assert_eq!(to_string(&Value::Number(0.1)), "0.1");
        assert_eq!(to_string(&Value::Number(1e-9)), "0.000000001");
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::from("line\nquote\"tab\tback\\slash");
        let text = to_string(&v);
        assert_eq!(from_str(&text).unwrap(), v);
        let unicode = from_str(r#""é中""#).unwrap();
        assert_eq!(unicode.as_str(), Some("é中"));
    }

    #[test]
    fn parser_handles_whitespace_and_nesting() {
        let v = from_str(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(
            v.get("a")
                .and_then(|a| a.get_index(0))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert!(v
            .get("a")
            .and_then(|a| a.get_index(1))
            .and_then(|o| o.get("b"))
            .is_some_and(Value::is_null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn as_u64_guards_range_and_fraction() {
        assert_eq!(Value::Number(3.0).as_u64(), Some(3));
        assert_eq!(Value::Number(3.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut map = Map::new();
        map.insert("a", Value::from(1u64));
        map.insert("b", Value::from(2u64));
        map.insert("a", Value::from(3u64));
        assert_eq!(map.len(), 2);
        assert_eq!(map.keys().collect::<Vec<_>>(), ["a", "b"]);
        assert_eq!(map.get("a").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn btreemap_interop_compiles() {
        // Downstream code may collect sorted maps; keep the path open.
        let sorted: BTreeMap<String, f64> = BTreeMap::from([("k".into(), 1.0)]);
        let v: Value = Value::Object(
            sorted
                .into_iter()
                .map(|(k, n)| (k, Value::Number(n)))
                .collect(),
        );
        assert_eq!(to_string(&v), r#"{"k":1}"#);
    }
}
