//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! Implements the exact API subset this workspace uses — [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`rngs::StdRng`] — with a deterministic xoshiro256++ generator seeded
//! via SplitMix64. It is **not** the upstream crate: stream values differ
//! from the real `StdRng`, but every draw is a pure function of the seed,
//! which is the property the workspace's reproducibility guarantees rest
//! on. Swap in the real `rand` by deleting this vendor entry once network
//! access to crates.io is available.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation primitives (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full output
/// range (the subset of `rand`'s `Standard` distribution we need).
pub trait StandardSample {
    /// Draw one value. Floats land in `[0, 1)`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that can be sampled uniformly (the subset of `rand`'s
/// `SampleRange` this workspace uses: `Range` and `RangeInclusive` over
/// the primitive numeric types).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods layered over [`RngCore`]
/// (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution (floats in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng` for the `u64` entry
/// point this workspace uses exclusively).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`: same API, different (but still
    /// fully seed-deterministic) output stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let inc = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&inc));
            let u = rng.gen_range(0u64..10_000);
            assert!(u < 10_000);
        }
    }

    #[test]
    fn unit_floats_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
