//! Offline, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! Implements the subset the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`black_box`],
//! [`criterion_group!`]/[`criterion_main!`] — with a simple
//! calibrate-then-measure loop that prints mean wall-clock time per
//! iteration. No statistics, HTML reports, or regression detection; swap
//! in the real crate once crates.io access is available.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work (re-export of the standard library implementation).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API parity;
/// this stand-in times each routine invocation individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`]; drives
/// the measurement loop.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = calibrated_iters(&mut routine);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut one = || routine(setup());
        let iters = calibrated_iters(&mut one).min(1_000);
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
        self.iters_done = iters;
    }
}

/// Pick an iteration count targeting ~50 ms of measured work.
fn calibrated_iters<O, R: FnMut() -> O>(routine: &mut R) -> u64 {
    let start = Instant::now();
    black_box(routine());
    let once = start.elapsed().max(Duration::from_nanos(20));
    (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run `f` as a named benchmark and print the mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        let mean_ns = if b.iters_done == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters_done as f64
        };
        println!(
            "{id:<48} {:>12.1} ns/iter ({} iters)",
            mean_ns, b.iters_done
        );
        self
    }
}

/// Bundle benchmark functions into a runnable group (API-compatible with
/// criterion's macro; configuration arguments are not supported).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
