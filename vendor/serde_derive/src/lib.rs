//! Offline, dependency-free stand-in for `serde_derive`.
//!
//! The real derives generate `Serialize`/`Deserialize` impls; nothing in
//! this workspace currently *consumes* those impls (no serde-based I/O is
//! wired up yet), so these derives deliberately expand to nothing. They
//! exist so that `#[derive(Serialize, Deserialize)]` and `#[serde(...)]`
//! field attributes across the workspace compile unchanged, keeping the
//! source ready for the real `serde` once crates.io access is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
