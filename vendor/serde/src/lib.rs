//! Offline, dependency-free stand-in for the `serde` facade.
//!
//! Re-exports the no-op derives from the vendored `serde_derive` and
//! declares empty `Serialize`/`Deserialize` marker traits so that both
//! `#[derive(serde::Serialize)]` and `use serde::{Serialize, Deserialize}`
//! compile unchanged. No serialization is performed; the workspace does
//! not yet consume serde impls. Replace with the real crate when network
//! access is available.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
