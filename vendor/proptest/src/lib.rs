//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range/tuple/`prop_map`/[`collection::vec`] strategies and
//! [`test_runner::Config`] (`ProptestConfig`). Differences from upstream:
//!
//! * **Fixed RNG seed.** Every run draws from the same deterministic
//!   stream (see [`test_runner::Config::rng_seed`]), so failures are
//!   always reproducible — the workspace's reproducibility bar.
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message; it is not minimized.
//!
//! Swap in the real `proptest` by deleting this vendor entry once
//! crates.io access is available.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Test-case outcomes and the case runner.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was filtered out by `prop_assume!`; it does not count
        /// toward the executed-case total.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection (assumption not met).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type property-test bodies evaluate to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (stands in for `proptest::prelude::ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successfully executed cases required.
        pub cases: u32,
        /// Seed for the deterministic case-generation stream.
        pub rng_seed: u64,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                rng_seed: 0x5EED_CA5E,
            }
        }
    }

    impl Config {
        /// A config running `cases` cases (mirrors upstream's constructor).
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Execute `case` until `config.cases` cases pass, panicking on the
    /// first failure. Rejections retry with fresh draws, up to a cap.
    pub fn run<F>(config: Config, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        let mut rng = StdRng::seed_from_u64(config.rng_seed);
        let mut executed = 0u32;
        let mut rejected = 0u32;
        while executed < config.cases {
            match case(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.cases.saturating_mul(16).max(256),
                        "proptest `{name}`: too many rejected cases ({rejected}); \
                         weaken the prop_assume! filter"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {executed}: {msg}")
                }
            }
        }
    }
}

/// Value-generation strategies (deterministic, non-shrinking).
pub mod strategy {
    use super::StdRng;
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value from the deterministic stream.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f` (mirrors upstream).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0.0)
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
        (S0.0, S1.1, S2.2, S3.3, S4.4)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` (see [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements drawn from `elem` (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng as _;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            rng.gen_bool(0.5)
        }
    }
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run($cfg, stringify!($name), |prop_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// `assert!` that fails the current generated case (with optional format
/// message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{:?} != {:?} at {}:{}", l, r, file!(), line!()),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{:?} != {:?}: {} at {}:{}", l, r, format_args!($($fmt)+), file!(), line!()),
            ));
        }
    }};
}

/// Skip the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -1.0f64..1.0), c in 0u64..5) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!(c < 5);
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec((0usize..3, 0.0f32..1.0), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (i, f) in v {
                prop_assert!(i < 3 && (0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn assume_filters(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let collect = || {
            let mut out = Vec::new();
            crate::test_runner::run(ProptestConfig::with_cases(8), "det", |rng| {
                out.push((0usize..100).generate(rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
