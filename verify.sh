#!/usr/bin/env bash
# Tier-1 verification gates for the workspace. CI runs these same
# subcommands as separate jobs; run `./verify.sh` locally before pushing.
# Requires only the stable Rust toolchain (all third-party dependencies
# are vendored under vendor/ — no network needed).
#
# Usage:
#   ./verify.sh             # lint + test (the tier-1 gate)
#   ./verify.sh lint        # rustfmt + clippy only (fast feedback)
#   ./verify.sh test        # release build + full test pyramid (incl. the
#                           # slot-equivalence golden suite, run at both
#                           # full and FAST=1 horizons)
#   ./verify.sh bench-smoke # FAST=1 run of every fig/table binary;
#                           # writes CSV/JSON artifacts into $RESULTS_DIR,
#                           # then runs the hotpath trend gate (fails on a
#                           # sustained >20% regression) and prints the
#                           # markdown digest of the BENCH_*.json rates
#   ./verify.sh bench-full  # the same suite at full resolution (no FAST);
#                           # slow — CI exposes it as a manual
#                           # workflow_dispatch job
#   ./verify.sh sweep-smoke # FAST=1 sharded-sweep determinism check: runs
#                           # two figure grids single-process and as local
#                           # multi-process worker fleets, then byte-diffs
#                           # the merged BENCH_*.json against the reference
#   ./verify.sh search-smoke# FAST=1 manifest-search determinism check:
#                           # runs the tiny checked-in `smoke` manifest
#                           # search twice (second run on a single worker
#                           # thread) and byte-diffs the two
#                           # BENCH_search_smoke.json outputs
set -euo pipefail
cd "$(dirname "$0")"

FIG_BINARIES=(
  fig1_convergence fig2_latency_vs_load fig3_cost_vs_load fig4_acceptance
  fig5_scalability fig6_chain_length fig7_dynamic fig8_optgap fig9_ablation
  fig10_reward_weights fig11_pg_vs_dqn fig12_resilience fig13_metro
  table1_params table2_hyperparams table3_summary
  hotpath
)

lint() {
  echo "==> cargo fmt --all --check"
  cargo fmt --all --check

  echo "==> cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
}

test_() {
  echo "==> cargo build --release"
  cargo build --release

  echo "==> cargo test -q"
  cargo test -q

  # The slot-equivalence golden suite runs inside the full pyramid above;
  # run it again under FAST=1 so both horizon resolutions of the
  # slot-loop-vs-event-queue contract stay green (FAST trims the
  # scenarios' horizons, which shifts which slots carry events).
  echo "==> FAST=1 cargo test -q -p mano --test event_slot_equivalence"
  FAST=1 cargo test -q -p mano --test event_slot_equivalence
}

run_figures() {
  echo "==> cargo build --release -p bench"
  cargo build --release -p bench

  for bin in "${FIG_BINARIES[@]}"; do
    echo "==> $bin (FAST=${FAST:-0} -> $RESULTS_DIR)"
    ./target/release/"$bin" >/dev/null
  done

  echo "==> artifacts in $RESULTS_DIR:"
  ls -l "$RESULTS_DIR"
  # The perf trajectory needs at least one machine-readable report, the
  # resilience sweep must have produced its report, and the hotpath
  # throughput tracker (decisions/sec, batched decisions/sec and
  # train-steps/sec, with its in-report pre-optimization baseline) must
  # have emitted its report, as must the fig13 metro-scale streaming
  # sweep (requests/sec + peak heap across the 1x→100x horizon growth).
  ls "$RESULTS_DIR"/BENCH_*.json >/dev/null
  ls "$RESULTS_DIR"/BENCH_resilience.json >/dev/null
  ls "$RESULTS_DIR"/BENCH_hotpath.json >/dev/null
  ls "$RESULTS_DIR"/BENCH_metro.json >/dev/null
}

# Byte-identity check for one grid: single-process reference vs a merged
# N-shard × W-worker run. sweep_drive re-checks the bytes in memory; the
# cmp here additionally pins the on-disk artifact (the thing figures and
# the summary actually consume).
run_sweep_grid_check() {
  local grid="$1" shards="$2" workers="$3"
  echo "==> sweep: $grid reference (single process)"
  ./target/release/sweep_drive --grid "$grid" --in-process
  cp "$RESULTS_DIR/BENCH_$grid.json" "$RESULTS_DIR/BENCH_$grid.reference.json"

  echo "==> sweep: $grid sharded ($shards shards, $workers workers)"
  ./target/release/sweep_drive --grid "$grid" --shards "$shards" --workers "$workers"

  echo "==> sweep: byte-diff merged vs reference"
  cmp "$RESULTS_DIR/BENCH_$grid.reference.json" "$RESULTS_DIR/BENCH_$grid.json"
  rm -f "$RESULTS_DIR/BENCH_$grid.reference.json"
}

run_sweep_smoke() {
  echo "==> cargo build --release -p bench"
  cargo build --release -p bench
  run_sweep_grid_check fig2_load 4 4
  run_sweep_grid_check fig6_chains 2 2
}

# Byte-identity check for the manifest search: the checked-in two-axis
# `smoke` manifest searched twice — the second run pinned to one worker
# thread — must write byte-identical BENCH_search_smoke.json documents.
# This is the successive-halving determinism contract (index-keyed
# reduction, seeded expansion) pinned on the on-disk artifact.
run_search_smoke() {
  echo "==> cargo build --release -p bench"
  cargo build --release -p bench

  echo "==> search: smoke manifest (reference run)"
  ./target/release/search_drive smoke
  cp "$RESULTS_DIR/BENCH_search_smoke.json" "$RESULTS_DIR/BENCH_search_smoke.reference.json"

  echo "==> search: smoke manifest again (EXPER_THREADS=1)"
  EXPER_THREADS=1 ./target/release/search_drive smoke

  echo "==> search: byte-diff second run vs reference"
  cmp "$RESULTS_DIR/BENCH_search_smoke.reference.json" "$RESULTS_DIR/BENCH_search_smoke.json"
  rm -f "$RESULTS_DIR/BENCH_search_smoke.reference.json"
}

search_smoke() {
  export FAST=1
  export RESULTS_DIR="${RESULTS_DIR:-results}"
  run_search_smoke
}

sweep_smoke() {
  export FAST=1
  export RESULTS_DIR="${RESULTS_DIR:-results}"
  run_sweep_smoke
}

bench_smoke() {
  export FAST=1
  export RESULTS_DIR="${RESULTS_DIR:-results}"
  run_figures

  # Sharded-sweep smoke between the figures and the gate: sweep_drive
  # records optimized.sweep_cells_per_sec into the BENCH_hotpath.json the
  # figures just produced, so the trend gate below genuinely gates it.
  run_sweep_smoke

  # Manifest-search smoke ahead of the trend gate: its
  # BENCH_search_smoke.json lands in $RESULTS_DIR so the summary's search
  # digest (and the fingerprint-drift ⚠) covers a fresh document.
  run_search_smoke

  # Trend gate: compares BENCH_hotpath.json against the persisted series
  # state (restored across CI runs via actions/cache; accumulated in
  # $RESULTS_DIR locally). Soft-logs a single >20% dip, fails the job on
  # two consecutive ones.
  echo "==> hotpath trend gate"
  ./target/release/hotpath_gate

  echo "==> bench summary (markdown)"
  ./target/release/bench_summary
}

bench_full() {
  # Full-resolution on-demand sample of the perf trajectory: no FAST, its
  # own results dir, no trend gate (the tracked series is the smoke run's).
  unset FAST
  export RESULTS_DIR="${RESULTS_DIR:-results-full}"
  run_figures

  echo "==> bench summary (markdown)"
  ./target/release/bench_summary
}

case "${1:-all}" in
  lint) lint ;;
  test) test_ ;;
  bench-smoke) bench_smoke ;;
  bench-full) bench_full ;;
  sweep-smoke) sweep_smoke ;;
  search-smoke) search_smoke ;;
  all)
    lint
    test_
    ;;
  *)
    echo "usage: $0 [lint|test|bench-smoke|bench-full|sweep-smoke|search-smoke|all]" >&2
    exit 2
    ;;
esac

echo "verify.sh: ${1:-all} gates passed"
