#!/usr/bin/env bash
# Tier-1 verification gate for the workspace. CI runs exactly this; run it
# locally before pushing. Requires only the stable Rust toolchain (all
# third-party dependencies are vendored under vendor/ — no network needed).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "verify.sh: all gates passed"
