#!/usr/bin/env bash
# Tier-1 verification gates for the workspace. CI runs these same
# subcommands as separate jobs; run `./verify.sh` locally before pushing.
# Requires only the stable Rust toolchain (all third-party dependencies
# are vendored under vendor/ — no network needed).
#
# Usage:
#   ./verify.sh             # lint + test (the tier-1 gate)
#   ./verify.sh lint        # rustfmt + clippy only (fast feedback)
#   ./verify.sh test        # release build + full test pyramid
#   ./verify.sh bench-smoke # FAST=1 run of every fig/table binary;
#                           # writes CSV/JSON artifacts into $RESULTS_DIR
set -euo pipefail
cd "$(dirname "$0")"

lint() {
  echo "==> cargo fmt --all --check"
  cargo fmt --all --check

  echo "==> cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
}

test_() {
  echo "==> cargo build --release"
  cargo build --release

  echo "==> cargo test -q"
  cargo test -q
}

bench_smoke() {
  export FAST=1
  export RESULTS_DIR="${RESULTS_DIR:-results}"
  echo "==> cargo build --release -p bench"
  cargo build --release -p bench

  local binaries=(
    fig1_convergence fig2_latency_vs_load fig3_cost_vs_load fig4_acceptance
    fig5_scalability fig6_chain_length fig7_dynamic fig8_optgap fig9_ablation
    fig10_reward_weights fig11_pg_vs_dqn fig12_resilience
    table1_params table2_hyperparams table3_summary
    hotpath
  )
  for bin in "${binaries[@]}"; do
    echo "==> $bin (FAST=1 -> $RESULTS_DIR)"
    ./target/release/"$bin" >/dev/null
  done

  echo "==> artifacts in $RESULTS_DIR:"
  ls -l "$RESULTS_DIR"
  # The perf trajectory needs at least one machine-readable report, the
  # resilience sweep must have produced its report, and the hotpath
  # throughput tracker (decisions/sec + train-steps/sec, with its in-report
  # pre-optimization baseline and soft previous-run comparison) must have
  # emitted its report.
  ls "$RESULTS_DIR"/BENCH_*.json >/dev/null
  ls "$RESULTS_DIR"/BENCH_resilience.json >/dev/null
  ls "$RESULTS_DIR"/BENCH_hotpath.json >/dev/null
}

case "${1:-all}" in
  lint) lint ;;
  test) test_ ;;
  bench-smoke) bench_smoke ;;
  all)
    lint
    test_
    ;;
  *)
    echo "usage: $0 [lint|test|bench-smoke|all]" >&2
    exit 2
    ;;
esac

echo "verify.sh: ${1:-all} gates passed"
