//! # drl-vnf-edge — Deep-RL based VNF management in geo-distributed edge computing
//!
//! Umbrella crate: re-exports the full stack so downstream users depend on
//! one crate. See the README for the architecture overview and DESIGN.md
//! for the paper-reproduction inventory.
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | sweep protocol | [`sweep`] | shard planning, fragment format, byte-identical merge |
//! | experiments | [`exper`] | parallel multi-seed grid engine, deterministic aggregation |
//! | serving | [`serve`] | cross-simulation policy server: fused batched forwards per tick |
//! | orchestrator | [`mano`] | MDP formulation, simulation engine, DRL manager, baselines |
//! | learning | [`rl`] | DQN family, replay buffers, schedules, toy validation envs |
//! | function approximation | [`nn`] | MLP + backprop, optimizers, gradient checking |
//! | infrastructure | [`edgenet`] | geo topologies, routing, capacity, energy/price models |
//! | services | [`sfc`] | VNF catalog, chains, instances, M/M/1 delay model |
//! | traffic | [`workload`] | arrival processes, load patterns, trace synthesis |
//!
//! # Examples
//!
//! ```
//! use drl_vnf_edge::prelude::*;
//!
//! let scenario = Scenario::small_test();
//! let mut policy = FirstFitPolicy;
//! let result = evaluate_policy(&scenario, RewardConfig::default(), &mut policy, 0);
//! assert!(result.summary.total_arrivals > 0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use edgenet;
pub use exper;
pub use mano;
pub use nn;
pub use rl;
pub use serve;
pub use sfc;
pub use sweep;
pub use workload;

/// One prelude over the whole stack — every layer's prelude merged, so
/// examples and figure binaries need exactly one import.
pub mod prelude {
    pub use edgenet::prelude::*;
    pub use exper::prelude::*;
    pub use mano::prelude::*;
    pub use nn::prelude::*;
    pub use rl::prelude::*;
    pub use serve::prelude::*;
    pub use sfc::prelude::*;
    pub use workload::prelude::*;
}
