//! Concurrent-simulation harness: N simulations, one policy server.
//!
//! Each worker thread gets its own [`ServedPolicy`] client and runs its
//! evaluation cells through the ordinary engine; every greedy query
//! crosses the ring to the shared server, where queries from concurrent
//! simulations fuse into wide forwards. Results are index-keyed: the
//! summaries come back in cell order and are bit-identical to the same
//! cells evaluated in-process, for any worker count (the serving layer's
//! determinism contract, pinned by the parity tests).

use crate::client::ServedPolicy;
use crate::server::{PolicyServer, ServeConfig, ServeStats};
use exper::eval::EvalCell;
use exper::pool::run_indexed_with;
use mano::prelude::*;

/// Evaluates every cell through one policy server, fanning the cells out
/// over `threads` concurrent simulations (defaults to one thread per
/// cell, capped at 8). Returns the per-cell summaries (in cell order,
/// decision-time scrubbed) and the server's fusion counters.
pub fn serve_evaluations<P>(
    policy: P,
    config: ServeConfig,
    reward: RewardConfig,
    cells: &[EvalCell],
    threads: Option<usize>,
    semantics: DecisionSemantics,
) -> (Vec<BenchCell>, ServeStats)
where
    P: PlacementPolicy + Send + 'static,
{
    let threads = threads.unwrap_or_else(|| cells.len().clamp(1, 8)).max(1);
    let server = PolicyServer::spawn(policy, config);
    let results = run_indexed_with(
        cells.len(),
        threads,
        || ServedPolicy::new(&server),
        |client, index| {
            let cell = &cells[index];
            let mut result = evaluate_policy_with_semantics(
                &cell.scenario,
                reward,
                client,
                cell.seed,
                semantics,
            );
            result.summary.mean_decision_time_us = 0.0;
            BenchCell {
                scenario: cell.label.clone(),
                policy: "served".to_string(),
                x: cell.x,
                seed: cell.seed,
                summary: result.summary,
            }
        },
    );
    let stats = server.shutdown();
    (results, stats)
}
