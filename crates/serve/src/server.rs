//! The policy server: ONE policy with its warm inference workspace on a
//! dedicated thread, answering decision requests from any number of
//! concurrent simulations with one fused batched forward per tick.
//!
//! Tick model: the server blocks until at least one decision wave is
//! queued, drains whatever has accumulated (up to `tick_capacity`
//! waves), concatenates every wave's rows into one matrix, runs ONE
//! `greedy_batch` forward, and replies by ticket — each wave gets its
//! row-slice of the fused answer back in one message. There is no timer
//! — a tick is "everything pending now" — so a lone simulation degrades
//! gracefully to per-wave batches while 8 busy simulations fuse into
//! 8x-wider forwards that reach the register-tiled kernels.
//!
//! Determinism contract: a row's greedy action is a pure function of its
//! (state, mask) bits — batch composition cannot change it, because the
//! batched kernels are row-independent and batch-size invariant (pinned
//! by the nn golden suite and the serve parity tests). Scheduling only
//! decides *which* rows share a forward, never what any row's answer is,
//! so every simulation's run is bit-identical to the same run served
//! in-process, for any thread count or tick capacity.

use crate::ring::{ring, RingSender};
use mano::prelude::PlacementPolicy;
use nn::tensor::Matrix;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Server knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded ring depth: how many decision waves may queue before
    /// producers block (backpressure).
    pub queue_capacity: usize,
    /// Most decision waves fused into one tick's forward (each wave
    /// carries one simulation's pending rows).
    pub tick_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            tick_capacity: 256,
        }
    }
}

/// One pending decision *wave*: a whole wavefront of frozen observations
/// plus the reply route. Shipping the wave as one request (rather than a
/// request per row) is what keeps the ring off the per-decision critical
/// path — one send and one reply amortize over every row in the wave.
pub struct DecisionRequest {
    /// Client-assigned correlation id, echoed in the [`Decision`].
    pub ticket: u64,
    /// Encoded observations, one row per pending decision.
    pub states: Matrix,
    /// Row-major valid-action masks (`masks.len() / states.rows()` =
    /// action count; last index per row = reject).
    pub masks: Vec<bool>,
    /// Where the decisions go back to.
    pub reply: mpsc::Sender<Decision>,
}

/// A served decision wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Echo of [`DecisionRequest::ticket`].
    pub ticket: u64,
    /// Selected encoded action indices, one per request row.
    pub actions: Vec<usize>,
}

/// Serving counters, returned by [`PolicyServer::shutdown`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Decisions served.
    pub decisions: u64,
    /// Fused forwards run.
    pub ticks: u64,
    /// Widest single tick (rows in one forward).
    pub max_rows_per_tick: u64,
}

impl ServeStats {
    /// Mean rows fused per forward.
    pub fn mean_rows_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.decisions as f64 / self.ticks as f64
        }
    }
}

/// Handle to a running policy server. Dropping it without
/// [`PolicyServer::shutdown`] also stops the server (and discards stats).
pub struct PolicyServer {
    sender: Option<RingSender<DecisionRequest>>,
    handle: Option<JoinHandle<ServeStats>>,
}

impl PolicyServer {
    /// Spawns the serving thread around `policy` (switched to frozen
    /// evaluation mode).
    ///
    /// # Panics
    ///
    /// Panics if the policy cannot answer batched greedy queries
    /// ([`PlacementPolicy::supports_greedy_batch`]).
    pub fn spawn<P>(mut policy: P, config: ServeConfig) -> Self
    where
        P: PlacementPolicy + Send + 'static,
    {
        policy.set_training(false);
        assert!(
            policy.supports_greedy_batch(),
            "policy server requires a batch-capable policy (got {})",
            policy.name()
        );
        let (sender, receiver) = ring::<DecisionRequest>(config.queue_capacity);
        let tick_capacity = config.tick_capacity;
        let handle = std::thread::spawn(move || {
            let mut pending: Vec<DecisionRequest> = Vec::with_capacity(tick_capacity);
            let mut states = Matrix::default();
            let mut masks: Vec<bool> = Vec::new();
            let mut actions: Vec<usize> = Vec::new();
            let mut stats = ServeStats::default();
            while receiver.recv_batch(tick_capacity, &mut pending) {
                let dim = pending[0].states.cols();
                let stride = pending[0].masks.len() / pending[0].states.rows().max(1);
                let total_rows: usize = pending.iter().map(|req| req.states.rows()).sum();
                states.begin_rows(total_rows, dim);
                masks.clear();
                for req in &pending {
                    assert_eq!(
                        req.states.cols(),
                        dim,
                        "all simulations served by one policy share its encoder"
                    );
                    assert_eq!(
                        req.masks.len(),
                        req.states.rows() * stride,
                        "all simulations served by one policy share its action space"
                    );
                    for r in 0..req.states.rows() {
                        states.push_row(req.states.row(r));
                    }
                    masks.extend_from_slice(&req.masks);
                }
                actions.clear();
                policy.greedy_batch(&states, &masks, &mut actions);
                stats.ticks += 1;
                stats.decisions += total_rows as u64;
                stats.max_rows_per_tick = stats.max_rows_per_tick.max(total_rows as u64);
                let mut offset = 0usize;
                for req in &pending {
                    let rows = req.states.rows();
                    // A client that gave up (dropped its receiver) is fine.
                    let _ = req.reply.send(Decision {
                        ticket: req.ticket,
                        actions: actions[offset..offset + rows].to_vec(),
                    });
                    offset += rows;
                }
                pending.clear();
            }
            stats
        });
        Self {
            sender: Some(sender),
            handle: Some(handle),
        }
    }

    /// A fresh producer handle for one simulation/client thread.
    pub fn client_sender(&self) -> RingSender<DecisionRequest> {
        self.sender.as_ref().expect("server not shut down").clone()
    }

    /// Stops the server once every outstanding client sender is dropped,
    /// and returns the serving counters.
    ///
    /// Call this *after* dropping all clients — the server thread only
    /// exits when the last sender is gone.
    pub fn shutdown(mut self) -> ServeStats {
        self.sender.take(); // drop the prototype sender
        self.handle
            .take()
            .expect("server not shut down")
            .join()
            .expect("serve thread panicked")
    }
}

impl Drop for PolicyServer {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
