//! # serve — cross-simulation policy serving
//!
//! A request-level front-end for placement policies: ONE policy (and its
//! warm inference workspace) lives on a dedicated server thread, and any
//! number of concurrent simulations submit [`server::DecisionRequest`]s
//! through a bounded MPSC [`ring`]. Each server tick drains everything
//! pending (up to a tick capacity) and answers it with a single fused
//! `greedy_batch` forward — the "millions of users hitting one policy
//! server" deployment shape, where batched inference finally pays off
//! end-to-end because batches fuse *across* simulations instead of dying
//! at one simulation's first acceptance.
//!
//! * [`ring`] — the bounded MPSC ring (backpressure, cooperative close).
//! * [`server`] — [`server::PolicyServer`]: the tick loop, fusion stats,
//!   and the determinism contract (row answers are independent of batch
//!   composition; scheduling cannot change results).
//! * [`client`] — [`client::ServedPolicy`]: a `PlacementPolicy` façade
//!   whose forwards happen on the server; pairs naturally with
//!   `DecisionSemantics::SlotSnapshot`, which ships whole decision
//!   wavefronts per call.
//! * [`harness`] — [`harness::serve_evaluations`]: N concurrent
//!   simulations against one server, index-keyed deterministic.
//!
//! See `docs/serving.md` for the full tick model and contract.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod harness;
pub mod ring;
pub mod server;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::client::ServedPolicy;
    pub use crate::harness::serve_evaluations;
    pub use crate::ring::{ring, RingReceiver, RingSender};
    pub use crate::server::{Decision, DecisionRequest, PolicyServer, ServeConfig, ServeStats};
}
