//! A bounded multi-producer single-consumer ring on std primitives.
//!
//! N simulation threads push [`crate::server::DecisionRequest`]s; the one
//! server thread drains them in arrival order, up to a tick capacity at a
//! time. The ring is *bounded*: a full buffer blocks producers
//! (backpressure) instead of growing, so a slow server tick cannot let
//! queued requests pile up without limit. Closing is cooperative — the
//! channel closes when every sender is dropped (or the receiver hangs
//! up), and both sides observe it.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct RingState<T> {
    buf: VecDeque<T>,
    capacity: usize,
    /// Live sender handles; 0 = closed from the producer side.
    senders: usize,
    /// The receiver hung up; sends fail immediately.
    receiver_gone: bool,
}

struct RingInner<T> {
    state: Mutex<RingState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// Creates a bounded MPSC ring with room for `capacity` queued items.
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn ring<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let inner = Arc::new(RingInner {
        state: Mutex::new(RingState {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receiver_gone: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        RingSender {
            inner: Arc::clone(&inner),
        },
        RingReceiver { inner },
    )
}

/// Producer handle: clonable, blocking on a full ring.
pub struct RingSender<T> {
    inner: Arc<RingInner<T>>,
}

/// The receiver hung up before (or while) the value could be queued.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> RingSender<T> {
    /// Queues `value`, blocking while the ring is full. Returns the value
    /// back if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().expect("ring lock");
        loop {
            if state.receiver_gone {
                return Err(SendError(value));
            }
            if state.buf.len() < state.capacity {
                state.buf.push_back(value);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("ring lock");
        }
    }
}

impl<T> Clone for RingSender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("ring lock").senders += 1;
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.inner.state.lock().expect("ring lock");
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Last producer: wake the receiver so it can observe closure.
            self.inner.not_empty.notify_all();
        }
    }
}

/// Consumer handle (single).
pub struct RingReceiver<T> {
    inner: Arc<RingInner<T>>,
}

impl<T> RingReceiver<T> {
    /// Drains up to `max` queued items into `out` (appended in arrival
    /// order), blocking until at least one item is available. Returns
    /// `false` — with `out` untouched — once the ring is closed (every
    /// sender dropped) and empty.
    pub fn recv_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        assert!(max > 0, "tick capacity must be positive");
        let mut state = self.inner.state.lock().expect("ring lock");
        loop {
            if !state.buf.is_empty() {
                let take = state.buf.len().min(max);
                out.extend(state.buf.drain(..take));
                drop(state);
                // Producers blocked on a full ring can move again.
                self.inner.not_full.notify_all();
                return true;
            }
            if state.senders == 0 {
                return false;
            }
            state = self.inner.not_empty.wait(state).expect("ring lock");
        }
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.inner.state.lock().expect("ring lock").receiver_gone = true;
        self.inner.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_arrival_order() {
        let (tx, rx) = ring::<u32>(8);
        for v in 0..5 {
            tx.send(v).unwrap();
        }
        let mut out = Vec::new();
        assert!(rx.recv_batch(3, &mut out));
        assert_eq!(out, vec![0, 1, 2]);
        assert!(rx.recv_batch(3, &mut out));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn closes_when_all_senders_drop() {
        let (tx, rx) = ring::<u32>(4);
        let tx2 = tx.clone();
        tx2.send(9).unwrap();
        drop(tx);
        drop(tx2);
        let mut out = Vec::new();
        assert!(rx.recv_batch(4, &mut out), "queued item still delivered");
        assert_eq!(out, vec![9]);
        assert!(!rx.recv_batch(4, &mut out), "closed and empty");
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = ring::<u32>(4);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn full_ring_blocks_until_drained() {
        let (tx, rx) = ring::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let producer = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the receiver drains
            tx.send(4).unwrap();
        });
        let mut out = Vec::new();
        while out.len() < 4 {
            assert!(rx.recv_batch(2, &mut out));
        }
        producer.join().unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
