//! The client side of the serving layer: a [`PlacementPolicy`] whose
//! forwards happen on the server thread.
//!
//! A [`ServedPolicy`] owns its private reply channel and a ticket
//! counter. Both `decide` (a one-row wave) and `greedy_batch` (a whole
//! wavefront) ship ONE [`DecisionRequest`] across the ring and block on
//! ONE reply carrying every row's action — so an engine running
//! [`DecisionSemantics::SlotSnapshot`](mano::prelude::DecisionSemantics)
//! pays the channel round-trip once per wave, not once per decision,
//! and concurrent simulations' waves fuse into wide forwards.

use crate::server::{Decision, DecisionRequest, PolicyServer};
use edgenet::node::NodeId;
use mano::prelude::{DecisionContext, PlacementAction, PlacementPolicy};
use nn::tensor::Matrix;
use rand::rngs::StdRng;
use std::sync::mpsc;

/// A policy façade that forwards every greedy query to a
/// [`PolicyServer`].
pub struct ServedPolicy {
    name: String,
    sender: crate::ring::RingSender<DecisionRequest>,
    reply_tx: mpsc::Sender<Decision>,
    reply_rx: mpsc::Receiver<Decision>,
    next_ticket: u64,
}

impl ServedPolicy {
    /// A new client of `server`. Each client is single-threaded; spawn
    /// one per simulation.
    pub fn new(server: &PolicyServer) -> Self {
        let (reply_tx, reply_rx) = mpsc::channel();
        Self {
            name: "served".to_string(),
            sender: server.client_sender(),
            reply_tx,
            reply_rx,
            next_ticket: 0,
        }
    }

    /// Ships one wave (any number of rows) and blocks on its fused
    /// answer. One ring send and one reply per wave — never per row.
    fn round_trip(&mut self, states: Matrix, masks: Vec<bool>) -> Vec<usize> {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let rows = states.rows();
        self.sender
            .send(DecisionRequest {
                ticket,
                states,
                masks,
                reply: self.reply_tx.clone(),
            })
            .unwrap_or_else(|_| panic!("policy server hung up"));
        let decision = self.reply_rx.recv().expect("policy server hung up");
        debug_assert_eq!(decision.ticket, ticket, "single-flight reply mismatch");
        debug_assert_eq!(decision.actions.len(), rows, "short reply");
        decision.actions
    }
}

impl PlacementPolicy for ServedPolicy {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        let actions = self.round_trip(Matrix::row_vector(&ctx.encoded_state), ctx.mask.clone());
        let action_index = actions[0];
        if action_index + 1 == ctx.mask.len() {
            PlacementAction::Reject
        } else {
            PlacementAction::Place(NodeId(action_index))
        }
    }

    fn supports_greedy_batch(&self) -> bool {
        true
    }

    fn greedy_batch(&mut self, states: &Matrix, masks: &[bool], out: &mut Vec<usize>) {
        *out = self.round_trip(states.clone(), masks.to_vec());
    }

    fn set_training(&mut self, training: bool) {
        assert!(!training, "served policies are frozen (greedy) by design");
    }
}
