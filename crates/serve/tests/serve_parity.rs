//! The serving layer's determinism contract, end to end: runs whose
//! forwards happen on the shared policy server — fused with whatever
//! other rows happened to be pending — must be bit-identical to the same
//! runs evaluated in-process, for any client count and thread count.

use exper::eval::cells_for_seeds;
use mano::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::dqn::DqnConfig;
use rl::qnet::QNetworkConfig;
use rl::schedule::EpsilonSchedule;
use serve::prelude::*;

/// A multi-arrival scenario so slots routinely carry whole wavefronts.
fn scenario() -> Scenario {
    let mut s = Scenario::small_test();
    s.horizon_slots = 40;
    s
}

/// A frozen, batch-capable DQN policy (untrained weights are fine — the
/// contract is about bits, not quality).
fn frozen_policy(scenario: &Scenario) -> DrlPolicy {
    let probe = Simulation::new(scenario, RewardConfig::default());
    let state_dim = probe.encoder.dim();
    let action_count = probe.action_space.len();
    drop(probe);
    let config = DrlManagerConfig {
        dqn: DqnConfig {
            network: QNetworkConfig::Standard { hidden: vec![16] },
            epsilon: EpsilonSchedule::Constant(0.0),
            ..DqnConfig::default()
        },
        label: "drl".into(),
    };
    let mut rng = StdRng::seed_from_u64(0x5E21);
    let mut policy = DrlPolicy::new(config, state_dim, action_count, &mut rng);
    policy.set_training(false);
    policy
}

fn in_process_summary(scenario: &Scenario, policy: &DrlPolicy, seed: u64) -> RunSummary {
    let mut worker = policy.clone();
    let mut result = evaluate_policy_with_semantics(
        scenario,
        RewardConfig::default(),
        &mut worker,
        seed,
        DecisionSemantics::SlotSnapshot,
    );
    result.summary.mean_decision_time_us = 0.0;
    result.summary
}

#[test]
fn single_simulation_served_run_is_bit_identical_to_in_process() {
    let scenario = scenario();
    let policy = frozen_policy(&scenario);
    let expected = in_process_summary(&scenario, &policy, 3);

    let cells = cells_for_seeds("small", 1.0, &scenario, &[3]);
    let (served, stats) = serve_evaluations(
        policy,
        ServeConfig::default(),
        RewardConfig::default(),
        &cells,
        Some(1),
        DecisionSemantics::SlotSnapshot,
    );
    assert_eq!(served.len(), 1);
    assert_eq!(served[0].summary, expected, "serving changed the run");
    assert!(stats.ticks > 0, "no forwards ran on the server");
    assert!(
        stats.decisions >= stats.ticks,
        "ticks without decisions make no sense"
    );
}

#[test]
fn eight_concurrent_simulations_match_in_process_runs() {
    let scenario = scenario();
    let policy = frozen_policy(&scenario);
    let seeds: Vec<u64> = (0..8).collect();
    let expected: Vec<RunSummary> = seeds
        .iter()
        .map(|&seed| in_process_summary(&scenario, &policy, seed))
        .collect();

    let cells = cells_for_seeds("small", 1.0, &scenario, &seeds);
    let (served, stats) = serve_evaluations(
        policy,
        ServeConfig::default(),
        RewardConfig::default(),
        &cells,
        Some(8),
        DecisionSemantics::SlotSnapshot,
    );
    assert_eq!(served.len(), 8);
    for (cell, expected) in served.iter().zip(expected.iter()) {
        assert_eq!(
            &cell.summary, expected,
            "cross-simulation fusion changed a run (seed {})",
            cell.seed
        );
    }
    let total: u64 = stats.decisions;
    assert!(total > 0);
}

#[test]
fn served_results_are_thread_count_invariant() {
    let scenario = scenario();
    let policy = frozen_policy(&scenario);
    let cells = cells_for_seeds("small", 1.0, &scenario, &[11, 12, 13, 14]);
    let (one, _) = serve_evaluations(
        policy.clone(),
        ServeConfig::default(),
        RewardConfig::default(),
        &cells,
        Some(1),
        DecisionSemantics::SlotSnapshot,
    );
    let (four, _) = serve_evaluations(
        policy,
        ServeConfig::default(),
        RewardConfig::default(),
        &cells,
        Some(4),
        DecisionSemantics::SlotSnapshot,
    );
    for (a, b) in one.iter().zip(four.iter()) {
        assert_eq!(a.summary, b.summary, "thread count changed a served run");
    }
}

#[test]
fn sequential_semantics_also_serve_correctly() {
    // The serving layer is semantics-agnostic: a Sequential run through
    // the server (per-decision round trips at the speculative batch's
    // mercy) still matches its in-process twin.
    let scenario = scenario();
    let policy = frozen_policy(&scenario);
    let mut worker = policy.clone();
    let mut expected = evaluate_policy_with_semantics(
        &scenario,
        RewardConfig::default(),
        &mut worker,
        5,
        DecisionSemantics::Sequential,
    );
    expected.summary.mean_decision_time_us = 0.0;

    let cells = cells_for_seeds("small", 1.0, &scenario, &[5]);
    let (served, _) = serve_evaluations(
        policy,
        ServeConfig::default(),
        RewardConfig::default(),
        &cells,
        Some(1),
        DecisionSemantics::Sequential,
    );
    assert_eq!(served[0].summary, expected.summary);
}
