//! Edge-case coverage for the bounded MPSC ring backing the policy
//! server: the blocking/close interactions that only show up under real
//! thread interleavings — a sender parked on a full ring observing the
//! receiver hang up, draining buffered values after every sender is gone,
//! and capacity-1 backpressure preserving arrival order.

use serve::ring::{ring, SendError};
use std::time::Duration;

#[test]
fn sender_blocked_on_full_ring_observes_receiver_hangup() {
    let (tx, rx) = ring::<u32>(1);
    tx.send(0).expect("capacity available");
    // This send cannot complete: the ring is full and nobody drains it.
    let blocked = std::thread::spawn(move || tx.send(1));
    // Give the sender time to actually park on the not-full condvar
    // before hanging up; the test is about waking a *blocked* sender.
    std::thread::sleep(Duration::from_millis(50));
    drop(rx);
    let result = blocked.join().expect("sender thread must not deadlock");
    assert_eq!(
        result.map_err(|SendError(v)| v),
        Err(1),
        "the failed send hands the undelivered value back"
    );
}

#[test]
fn drain_after_close_preserves_arrival_order() {
    let (tx, rx) = ring::<u32>(8);
    let tx2 = tx.clone();
    // Two senders interleave; arrival order is whatever the ring saw.
    tx.send(1).unwrap();
    tx2.send(2).unwrap();
    tx.send(3).unwrap();
    tx2.send(4).unwrap();
    drop(tx);
    drop(tx2);
    // The channel is closed but not empty: batches must keep coming, in
    // order, until the buffer is dry — only then does recv_batch report
    // closure.
    let mut out = Vec::new();
    assert!(rx.recv_batch(2, &mut out), "buffered values outlive close");
    assert_eq!(out, vec![1, 2]);
    out.clear();
    assert!(rx.recv_batch(2, &mut out));
    assert_eq!(out, vec![3, 4]);
    out.clear();
    assert!(
        !rx.recv_batch(2, &mut out),
        "closed and drained terminates the stream"
    );
    assert!(out.is_empty());
}

#[test]
fn capacity_one_backpressure_delivers_everything_in_order() {
    const N: u32 = 100;
    let (tx, rx) = ring::<u32>(1);
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            tx.send(i).expect("receiver alive until all values seen");
        }
    });
    let mut seen = Vec::with_capacity(N as usize);
    let mut out = Vec::new();
    while rx.recv_batch(8, &mut out) {
        assert!(
            out.len() <= 1,
            "a capacity-1 ring can never hold more than one value"
        );
        seen.append(&mut out);
        if seen.len() == N as usize {
            break;
        }
    }
    producer.join().expect("producer finished");
    assert_eq!(seen, (0..N).collect::<Vec<_>>(), "strict arrival order");
}
