//! Generic episode-loop trainer and evaluator for DQN agents on any
//! [`Environment`].

use crate::dqn::DqnAgent;
use crate::env::Environment;
use crate::transition::Transition;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-episode training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Episode index (0-based).
    pub episode: usize,
    /// Undiscounted return.
    pub total_reward: f32,
    /// Steps taken.
    pub steps: usize,
    /// Mean learn-step loss during the episode (`None` before learning
    /// starts).
    pub mean_loss: Option<f32>,
    /// ε at episode end.
    pub epsilon: f32,
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Per-episode statistics, in order.
    pub episodes: Vec<EpisodeStats>,
}

impl TrainingHistory {
    /// Mean return over the trailing `window` episodes.
    pub fn trailing_mean_return(&self, window: usize) -> f32 {
        if self.episodes.is_empty() {
            return 0.0;
        }
        let tail = &self.episodes[self.episodes.len().saturating_sub(window)..];
        tail.iter().map(|e| e.total_reward).sum::<f32>() / tail.len() as f32
    }

    /// Per-episode returns as a plain vector (for plotting/CSV).
    pub fn returns(&self) -> Vec<f32> {
        self.episodes.iter().map(|e| e.total_reward).collect()
    }
}

/// Runs `episodes` training episodes of `agent` on `env`.
///
/// The step cap is `env.max_episode_steps()` or `fallback_step_cap`.
pub fn train_dqn<E: Environment, R: Rng>(
    agent: &mut DqnAgent,
    env: &mut E,
    episodes: usize,
    fallback_step_cap: usize,
    rng: &mut R,
) -> TrainingHistory {
    let cap = env.max_episode_steps().unwrap_or(fallback_step_cap);
    let mut history = TrainingHistory {
        episodes: Vec::with_capacity(episodes),
    };
    for episode in 0..episodes {
        let mut state = env.reset(rng);
        let mut total_reward = 0.0;
        let mut steps = 0usize;
        let mut loss_sum = 0.0f64;
        let mut loss_count = 0usize;
        for _ in 0..cap {
            let mask = env.action_mask();
            let action = agent.act(&state, &mask, rng);
            let outcome = env.step(action, rng);
            let next_mask = env.action_mask();
            let transition = Transition::with_mask(
                state,
                action,
                outcome.reward,
                outcome.next_state.clone(),
                outcome.done,
                next_mask,
            );
            if let Some(stats) = agent.observe(transition, rng) {
                loss_sum += stats.loss as f64;
                loss_count += 1;
            }
            total_reward += outcome.reward;
            steps += 1;
            state = outcome.next_state;
            if outcome.done {
                break;
            }
        }
        history.episodes.push(EpisodeStats {
            episode,
            total_reward,
            steps,
            mean_loss: (loss_count > 0).then(|| (loss_sum / loss_count as f64) as f32),
            epsilon: agent.epsilon(),
        });
    }
    history
}

/// Greedy-policy evaluation: runs `episodes` episodes without exploration
/// or learning; returns the mean undiscounted return. Takes `&mut` only to
/// reuse the agent's inference workspace — no learning happens.
pub fn evaluate_dqn<E: Environment, R: Rng>(
    agent: &mut DqnAgent,
    env: &mut E,
    episodes: usize,
    fallback_step_cap: usize,
    rng: &mut R,
) -> f32 {
    let cap = env.max_episode_steps().unwrap_or(fallback_step_cap);
    let mut total = 0.0;
    for _ in 0..episodes {
        let mut state = env.reset(rng);
        for _ in 0..cap {
            let mask = env.action_mask();
            let action = agent.act_greedy(&state, &mask);
            let outcome = env.step(action, rng);
            total += outcome.reward;
            state = outcome.next_state;
            if outcome.done {
                break;
            }
        }
    }
    total / episodes.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dqn::DqnConfig;
    use crate::qnet::QNetworkConfig;
    use crate::schedule::EpsilonSchedule;
    use crate::toy::{BanditEnv, ChainEnv, GridWorld};
    use nn::prelude::OptimizerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_config() -> DqnConfig {
        DqnConfig {
            network: QNetworkConfig::Standard { hidden: vec![32] },
            gamma: 0.95,
            optimizer: OptimizerConfig::adam(3e-3),
            replay_capacity: 4_000,
            batch_size: 32,
            learn_start: 64,
            train_every: 1,
            target_sync_every: 100,
            epsilon: EpsilonSchedule::Linear {
                start: 1.0,
                end: 0.02,
                steps: 2_000,
            },
            ..DqnConfig::default()
        }
    }

    #[test]
    fn dqn_solves_contextual_bandit() {
        let mut rng = StdRng::seed_from_u64(100);
        let mut env = BanditEnv::new(3, 3);
        let mut agent = DqnAgent::new(fast_config(), env.state_dim(), env.action_count(), &mut rng);
        train_dqn(&mut agent, &mut env, 1_500, 1, &mut rng);
        let mean = evaluate_dqn(&mut agent, &mut env, 200, 1, &mut rng);
        assert!(mean > 0.95, "bandit mean reward {mean}");
    }

    #[test]
    fn dqn_solves_chain() {
        let mut rng = StdRng::seed_from_u64(101);
        let mut env = ChainEnv::new(6, 0.01);
        let mut agent = DqnAgent::new(fast_config(), env.state_dim(), env.action_count(), &mut rng);
        train_dqn(&mut agent, &mut env, 250, 60, &mut rng);
        let mean = evaluate_dqn(&mut agent, &mut env, 20, 60, &mut rng);
        // Optimal: 5 steps right → 1 - 0.05 = 0.95.
        assert!(mean > 0.9, "chain mean return {mean}");
    }

    #[test]
    fn dqn_solves_gridworld_with_mask() {
        let mut rng = StdRng::seed_from_u64(102);
        let mut env = GridWorld::new(4);
        let mut agent = DqnAgent::new(fast_config(), env.state_dim(), env.action_count(), &mut rng);
        train_dqn(&mut agent, &mut env, 400, 64, &mut rng);
        let mean = evaluate_dqn(&mut agent, &mut env, 10, 64, &mut rng);
        let optimal = env.optimal_return().unwrap();
        assert!(
            mean > optimal - 0.1,
            "gridworld mean return {mean}, optimal {optimal}"
        );
    }

    #[test]
    fn history_trailing_mean() {
        let history = TrainingHistory {
            episodes: (0..10)
                .map(|i| EpisodeStats {
                    episode: i,
                    total_reward: i as f32,
                    steps: 1,
                    mean_loss: None,
                    epsilon: 0.1,
                })
                .collect(),
        };
        assert!((history.trailing_mean_return(2) - 8.5).abs() < 1e-6);
        assert_eq!(history.returns().len(), 10);
    }

    #[test]
    fn evaluate_on_empty_history_is_zero() {
        let h = TrainingHistory { episodes: vec![] };
        assert_eq!(h.trailing_mean_return(5), 0.0);
    }
}
