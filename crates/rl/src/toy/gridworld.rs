//! A deterministic grid world with obstacles — the standard DQN sanity
//! check. Actions: 0=up, 1=down, 2=left, 3=right. Walking into a wall or
//! obstacle is masked out, exercising the action-mask machinery end to end.

use crate::env::{DiscreteStateEnvironment, Environment, StepOutcome};
use rand::RngCore;

/// An `n x n` grid; the agent starts at `(0, 0)` and must reach
/// `(n-1, n-1)`. Each step costs `step_penalty`; the goal pays `+1`.
#[derive(Debug, Clone)]
pub struct GridWorld {
    n: usize,
    row: usize,
    col: usize,
    obstacles: Vec<(usize, usize)>,
    step_penalty: f32,
}

impl GridWorld {
    /// Creates an `n x n` grid with no obstacles.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        Self::with_obstacles(n, &[], 0.01)
    }

    /// Creates a grid with obstacle cells (never the start or the goal).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, or any obstacle is out of bounds, on the start, or
    /// on the goal.
    pub fn with_obstacles(n: usize, obstacles: &[(usize, usize)], step_penalty: f32) -> Self {
        assert!(n >= 2, "grid must be at least 2x2");
        for &(r, c) in obstacles {
            assert!(r < n && c < n, "obstacle ({r},{c}) out of bounds");
            assert!(!(r == 0 && c == 0), "obstacle on start cell");
            assert!(!(r == n - 1 && c == n - 1), "obstacle on goal cell");
        }
        Self {
            n,
            row: 0,
            col: 0,
            obstacles: obstacles.to_vec(),
            step_penalty,
        }
    }

    /// Grid side length.
    pub fn side(&self) -> usize {
        self.n
    }

    /// Length of the shortest obstacle-free path from start to goal
    /// (breadth-first search); `None` if the goal is unreachable.
    pub fn shortest_path_len(&self) -> Option<usize> {
        let n = self.n;
        let blocked = |r: usize, c: usize| self.obstacles.contains(&(r, c));
        let mut dist = vec![usize::MAX; n * n];
        let mut queue = std::collections::VecDeque::new();
        dist[0] = 0;
        queue.push_back((0usize, 0usize));
        while let Some((r, c)) = queue.pop_front() {
            if (r, c) == (n - 1, n - 1) {
                return Some(dist[r * n + c]);
            }
            let neighbours = [
                (r.wrapping_sub(1), c),
                (r + 1, c),
                (r, c.wrapping_sub(1)),
                (r, c + 1),
            ];
            for (nr, nc) in neighbours {
                if nr < n && nc < n && !blocked(nr, nc) && dist[nr * n + nc] == usize::MAX {
                    dist[nr * n + nc] = dist[r * n + c] + 1;
                    queue.push_back((nr, nc));
                }
            }
        }
        None
    }

    /// The undiscounted return of an optimal policy, given the reward
    /// structure (`+1` at goal minus per-step penalties).
    pub fn optimal_return(&self) -> Option<f32> {
        self.shortest_path_len()
            .map(|l| 1.0 - self.step_penalty * l as f32)
    }

    fn observe(&self) -> Vec<f32> {
        let mut v = vec![0.0; self.n * self.n];
        v[self.row * self.n + self.col] = 1.0;
        v
    }

    fn target_cell(&self, action: usize) -> Option<(usize, usize)> {
        let (r, c) = (self.row, self.col);
        let cell = match action {
            0 => (r.checked_sub(1)?, c),
            1 => {
                if r + 1 >= self.n {
                    return None;
                }
                (r + 1, c)
            }
            2 => (r, c.checked_sub(1)?),
            3 => {
                if c + 1 >= self.n {
                    return None;
                }
                (r, c + 1)
            }
            _ => return None,
        };
        if self.obstacles.contains(&cell) {
            None
        } else {
            Some(cell)
        }
    }
}

impl Environment for GridWorld {
    fn state_dim(&self) -> usize {
        self.n * self.n
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) -> Vec<f32> {
        self.row = 0;
        self.col = 0;
        self.observe()
    }

    fn step(&mut self, action: usize, _rng: &mut dyn RngCore) -> StepOutcome {
        let cell = self.target_cell(action).unwrap_or_else(|| {
            panic!(
                "masked action {action} taken at ({}, {})",
                self.row, self.col
            )
        });
        self.row = cell.0;
        self.col = cell.1;
        let done = self.row == self.n - 1 && self.col == self.n - 1;
        let reward = if done { 1.0 } else { 0.0 } - self.step_penalty;
        StepOutcome::new(self.observe(), reward, done)
    }

    fn action_mask(&self) -> Vec<bool> {
        (0..4).map(|a| self.target_cell(a).is_some()).collect()
    }

    fn max_episode_steps(&self) -> Option<usize> {
        Some(self.n * self.n * 4)
    }
}

impl DiscreteStateEnvironment for GridWorld {
    fn state_count(&self) -> usize {
        self.n * self.n
    }

    fn state_id(&self) -> usize {
        self.row * self.n + self.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mask_blocks_walls_at_start() {
        let env = GridWorld::new(3);
        // At (0,0): up and left blocked, down and right open.
        assert_eq!(env.action_mask(), vec![false, true, false, true]);
    }

    #[test]
    fn mask_blocks_obstacles() {
        let env = GridWorld::with_obstacles(3, &[(0, 1)], 0.01);
        // Right (action 3) leads into the obstacle.
        assert_eq!(env.action_mask(), vec![false, true, false, false]);
    }

    #[test]
    fn shortest_path_on_open_grid() {
        let env = GridWorld::new(4);
        assert_eq!(env.shortest_path_len(), Some(6)); // 3 down + 3 right
    }

    #[test]
    fn shortest_path_detours_around_obstacles() {
        // Wall across row 1 except the last column.
        let env = GridWorld::with_obstacles(4, &[(1, 0), (1, 1), (1, 2)], 0.01);
        assert_eq!(env.shortest_path_len(), Some(6)); // forced through (1,3)
    }

    #[test]
    fn unreachable_goal_returns_none() {
        // Full wall across row 1.
        let env = GridWorld::with_obstacles(4, &[(1, 0), (1, 1), (1, 2), (1, 3)], 0.01);
        assert_eq!(env.shortest_path_len(), None);
    }

    #[test]
    fn walking_optimal_path_yields_optimal_return() {
        let mut env = GridWorld::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = env.reset(&mut rng);
        let mut total = 0.0;
        for a in [1, 1, 3, 3] {
            total += env.step(a, &mut rng).reward;
        }
        assert!((total - env.optimal_return().unwrap()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "masked action")]
    fn taking_masked_action_panics() {
        let mut env = GridWorld::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = env.reset(&mut rng);
        let _ = env.step(0, &mut rng); // up at (0,0)
    }

    #[test]
    #[should_panic(expected = "obstacle on start")]
    fn obstacle_on_start_rejected() {
        let _ = GridWorld::with_obstacles(3, &[(0, 0)], 0.01);
    }
}
