//! Deterministic chain MDP: `n` states in a line, start at 0, reward 1 at
//! the far end. Action 0 = left, action 1 = right. A small per-step penalty
//! makes the shortest path uniquely optimal.

use crate::env::{DiscreteStateEnvironment, Environment, StepOutcome};
use rand::RngCore;

/// A chain of `n` states; reaching state `n-1` ends the episode with +1.
#[derive(Debug, Clone)]
pub struct ChainEnv {
    n: usize,
    position: usize,
    step_penalty: f32,
    steps_taken: usize,
}

impl ChainEnv {
    /// Creates a chain with `n >= 2` states and a per-step penalty
    /// (`0.0` for none; penalties are subtracted from the reward).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, step_penalty: f32) -> Self {
        assert!(n >= 2, "chain needs at least 2 states");
        Self {
            n,
            position: 0,
            step_penalty,
            steps_taken: 0,
        }
    }

    /// Number of states (public accessor used by tabular agents).
    pub fn state_count_public(&self) -> usize {
        self.n
    }

    fn observe(&self) -> Vec<f32> {
        let mut v = vec![0.0; self.n];
        v[self.position] = 1.0;
        v
    }
}

impl Environment for ChainEnv {
    fn state_dim(&self) -> usize {
        self.n
    }

    fn action_count(&self) -> usize {
        2
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) -> Vec<f32> {
        self.position = 0;
        self.steps_taken = 0;
        self.observe()
    }

    fn step(&mut self, action: usize, _rng: &mut dyn RngCore) -> StepOutcome {
        assert!(action < 2, "chain action out of range");
        self.steps_taken += 1;
        if action == 1 {
            self.position = (self.position + 1).min(self.n - 1);
        } else {
            self.position = self.position.saturating_sub(1);
        }
        let done = self.position == self.n - 1;
        let reward = if done { 1.0 } else { 0.0 } - self.step_penalty;
        StepOutcome::new(self.observe(), reward, done)
    }

    fn max_episode_steps(&self) -> Option<usize> {
        Some(self.n * 10)
    }
}

impl DiscreteStateEnvironment for ChainEnv {
    fn state_count(&self) -> usize {
        self.n
    }

    fn state_id(&self) -> usize {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walking_right_reaches_goal() {
        let mut env = ChainEnv::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = env.reset(&mut rng);
        let mut done = false;
        let mut total = 0.0;
        for _ in 0..3 {
            let out = env.step(1, &mut rng);
            done = out.done;
            total += out.reward;
        }
        assert!(done);
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn left_at_start_stays() {
        let mut env = ChainEnv::new(3, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = env.reset(&mut rng);
        let out = env.step(0, &mut rng);
        assert_eq!(env.state_id(), 0);
        assert!(!out.done);
    }

    #[test]
    fn observation_is_one_hot() {
        let mut env = ChainEnv::new(5, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.iter().filter(|&&v| v == 1.0).count(), 1);
        assert_eq!(obs.len(), 5);
    }

    #[test]
    fn step_penalty_applied() {
        let mut env = ChainEnv::new(3, 0.1);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = env.reset(&mut rng);
        let out = env.step(1, &mut rng);
        assert!((out.reward + 0.1).abs() < 1e-6);
    }
}
