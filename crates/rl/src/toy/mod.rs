//! Toy environments used to validate learning algorithms.
//!
//! These are not part of the VNF domain; they exist so the test suite can
//! prove that the tabular and deep agents actually learn — a regression in
//! backprop or target computation fails these before it silently degrades
//! the headline experiments.

pub mod bandit;
pub mod chain;
pub mod gridworld;

pub use bandit::BanditEnv;
pub use chain::ChainEnv;
pub use gridworld::GridWorld;
