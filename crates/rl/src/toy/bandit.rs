//! A contextual bandit: one-step episodes where the best action depends on
//! the context bit. Catches agents that ignore their input.

use crate::env::{Environment, StepOutcome};
use rand::{Rng, RngCore};

/// Two-context, `k`-armed bandit. In context `c`, arm `c % k` pays `1.0`;
/// all other arms pay `0.0`. Episodes are a single step.
#[derive(Debug, Clone)]
pub struct BanditEnv {
    arms: usize,
    context: usize,
    contexts: usize,
}

impl BanditEnv {
    /// Creates a bandit with `arms >= 2` arms and `contexts >= 1` contexts.
    ///
    /// # Panics
    ///
    /// Panics if `arms < 2` or `contexts == 0`.
    pub fn new(arms: usize, contexts: usize) -> Self {
        assert!(arms >= 2, "bandit needs at least 2 arms");
        assert!(contexts >= 1, "bandit needs at least 1 context");
        Self {
            arms,
            context: 0,
            contexts,
        }
    }

    /// The optimal arm for the current context.
    pub fn optimal_arm(&self) -> usize {
        self.context % self.arms
    }

    fn observe(&self) -> Vec<f32> {
        let mut v = vec![0.0; self.contexts];
        v[self.context] = 1.0;
        v
    }
}

impl Environment for BanditEnv {
    fn state_dim(&self) -> usize {
        self.contexts
    }

    fn action_count(&self) -> usize {
        self.arms
    }

    fn reset(&mut self, rng: &mut dyn RngCore) -> Vec<f32> {
        self.context = (rng.next_u32() as usize) % self.contexts;
        self.observe()
    }

    fn step(&mut self, action: usize, rng: &mut dyn RngCore) -> StepOutcome {
        assert!(action < self.arms, "bandit arm out of range");
        let reward = if action == self.optimal_arm() {
            1.0
        } else {
            0.0
        };
        // Draw next context for the returned observation; episode ends.
        self.context = rng.gen_range(0..self.contexts);
        StepOutcome::new(self.observe(), reward, true)
    }

    fn max_episode_steps(&self) -> Option<usize> {
        Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimal_arm_pays_one() {
        let mut env = BanditEnv::new(3, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = env.reset(&mut rng);
        let best = env.optimal_arm();
        let out = env.step(best, &mut rng);
        assert_eq!(out.reward, 1.0);
        assert!(out.done);
    }

    #[test]
    fn suboptimal_arm_pays_zero() {
        let mut env = BanditEnv::new(3, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = env.reset(&mut rng);
        let bad = (env.optimal_arm() + 1) % 3;
        assert_eq!(env.step(bad, &mut rng).reward, 0.0);
    }

    #[test]
    fn contexts_vary_across_resets() {
        let mut env = BanditEnv::new(2, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let obs = env.reset(&mut rng);
            seen.insert(obs.iter().position(|&v| v == 1.0).unwrap());
        }
        assert!(seen.len() >= 3, "contexts seen: {seen:?}");
    }
}
