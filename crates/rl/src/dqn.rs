//! Deep Q-Network agent (Mnih et al. 2015) with the standard extensions:
//! Double DQN (van Hasselt et al. 2016), Dueling networks (Wang et al. 2016)
//! and prioritized experience replay (Schaul et al. 2016) — each
//! independently switchable for the ablation experiments.

use crate::env::{masked_argmax, masked_max};
use crate::qnet::{QNetWorkspace, QNetwork, QNetworkConfig};
use crate::replay::{PerConfig, PrioritizedReplay, Replay, UniformReplay};
use crate::schedule::EpsilonSchedule;
use crate::transition::Transition;
use nn::prelude::*;
use nn::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Full DQN hyperparameter set.
///
/// Defaults reproduce a conservative small-scale DQN suitable for the VNF
/// placement MDP; every ablation knob is explicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Q-network architecture.
    pub network: QNetworkConfig,
    /// Discount factor γ.
    pub gamma: f32,
    /// Optimizer (Adam by default).
    pub optimizer: OptimizerConfig,
    /// Loss (Huber by default).
    pub loss: Loss,
    /// Global gradient-norm clip; `None` disables clipping.
    pub max_grad_norm: Option<f32>,
    /// Replay capacity. A capacity of 1 with `batch_size` 1 effectively
    /// disables experience replay (online Q-learning) — the ablation case.
    pub replay_capacity: usize,
    /// Minibatch size per learn step.
    pub batch_size: usize,
    /// Steps observed before learning starts.
    pub learn_start: usize,
    /// Learn every `train_every` environment steps.
    pub train_every: usize,
    /// Hard target sync period in learn steps; `0` disables the separate
    /// target network (the ablation case: targets from the online network).
    pub target_sync_every: u64,
    /// Optional Polyak averaging coefficient; when set, soft updates every
    /// learn step replace hard syncs.
    pub soft_tau: Option<f32>,
    /// Double-DQN action selection for bootstrapped targets.
    pub double: bool,
    /// Prioritized replay configuration; `None` = uniform replay.
    pub prioritized: Option<PerConfig>,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            network: QNetworkConfig::default(),
            gamma: 0.99,
            optimizer: OptimizerConfig::adam(1e-3),
            loss: Loss::Huber(1.0),
            max_grad_norm: Some(10.0),
            replay_capacity: 50_000,
            batch_size: 32,
            learn_start: 500,
            train_every: 1,
            target_sync_every: 500,
            soft_tau: None,
            double: true,
            prioritized: None,
            epsilon: EpsilonSchedule::default(),
        }
    }
}

impl DqnConfig {
    /// Validates hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.gamma), "gamma must be in [0,1]");
        assert!(self.replay_capacity > 0, "replay capacity must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.train_every > 0, "train_every must be positive");
        if let Some(tau) = self.soft_tau {
            assert!((0.0..=1.0).contains(&tau), "soft_tau must be in [0,1]");
        }
        self.epsilon.validate();
        if let Some(per) = &self.prioritized {
            per.validate();
        }
    }
}

/// Replay storage, chosen at construction.
#[derive(Debug, Clone)]
enum ReplayStore {
    Uniform(UniformReplay),
    Prioritized(PrioritizedReplay),
}

impl ReplayStore {
    fn push(&mut self, t: Transition) {
        match self {
            ReplayStore::Uniform(b) => b.push(t),
            ReplayStore::Prioritized(b) => b.push(t),
        }
    }

    fn len(&self) -> usize {
        match self {
            ReplayStore::Uniform(b) => b.len(),
            ReplayStore::Prioritized(b) => b.len(),
        }
    }

    fn sample_into<R: Rng + ?Sized>(
        &mut self,
        batch: usize,
        rng: &mut R,
        indices: &mut Vec<u64>,
        weights: &mut Vec<f32>,
    ) {
        match self {
            ReplayStore::Uniform(b) => b.sample_into(batch, rng, indices, weights),
            ReplayStore::Prioritized(b) => b.sample_into(batch, rng, indices, weights),
        }
    }

    fn get_ref(&self, id: u64) -> &Transition {
        match self {
            ReplayStore::Uniform(b) => b.get_ref(id),
            ReplayStore::Prioritized(b) => b.get_ref(id),
        }
    }

    fn update_priorities(&mut self, indices: &[u64], td: &[f32]) {
        match self {
            ReplayStore::Uniform(b) => b.update_priorities(indices, td),
            ReplayStore::Prioritized(b) => b.update_priorities(indices, td),
        }
    }
}

/// Telemetry from one learn step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnStats {
    /// Minibatch loss.
    pub loss: f32,
    /// Mean |TD error| over the minibatch.
    pub mean_abs_td: f32,
    /// Current ε.
    pub epsilon: f32,
}

/// Long-lived buffers for the agent's decision and learn hot paths:
/// per-network inference workspaces, the two gathered minibatch matrices,
/// and every per-step vector the old code rebuilt on each call.
#[derive(Clone, Default)]
struct DqnScratch {
    /// Online-network inference workspace (actions and Double-DQN
    /// selection).
    online_ws: QNetWorkspace,
    /// Bootstrap-network inference workspace (target evaluation).
    target_ws: QNetWorkspace,
    /// Gathered minibatch of states (`batch x state_dim`).
    states: Matrix,
    /// Gathered minibatch of next states (`batch x state_dim`).
    next_states: Matrix,
    /// Sampled replay ids.
    indices: Vec<u64>,
    /// Importance-sampling weights for the sampled batch.
    weights: Vec<f32>,
    /// Actions taken in the sampled transitions.
    actions: Vec<usize>,
    /// Bootstrapped regression targets.
    targets: Vec<f32>,
    /// Cached all-valid action mask (for transitions without one).
    all_valid: Vec<bool>,
    /// Per-row selection results of the batched greedy path.
    batch_choice: Vec<Option<usize>>,
}

/// A DQN agent over vectorized states and discrete (maskable) actions.
#[derive(Clone)]
pub struct DqnAgent {
    config: DqnConfig,
    online: QNetwork,
    target: Option<QNetwork>,
    optimizer: Optimizer,
    replay: ReplayStore,
    /// Environment steps observed (drives ε and learn cadence).
    env_steps: u64,
    /// Learn steps performed (drives target syncs).
    learn_steps: u64,
    /// Reusable hot-path buffers (no behavioral state).
    scratch: DqnScratch,
}

impl std::fmt::Debug for DqnAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DqnAgent")
            .field("state_dim", &self.online.state_dim())
            .field("action_count", &self.online.action_count())
            .field("env_steps", &self.env_steps)
            .field("learn_steps", &self.learn_steps)
            .field("replay_len", &self.replay.len())
            .finish()
    }
}

impl DqnAgent {
    /// Builds an agent for `state_dim` observations and `action_count`
    /// discrete actions.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or dimensions are zero.
    pub fn new<R: Rng + ?Sized>(
        config: DqnConfig,
        state_dim: usize,
        action_count: usize,
        rng: &mut R,
    ) -> Self {
        config.validate();
        let online = QNetwork::new(&config.network, state_dim, action_count, rng);
        let target = if config.target_sync_every > 0 || config.soft_tau.is_some() {
            let mut t = QNetwork::new(&config.network, state_dim, action_count, rng);
            t.copy_parameters_from(&online);
            Some(t)
        } else {
            None
        };
        let replay = match &config.prioritized {
            Some(per) => {
                ReplayStore::Prioritized(PrioritizedReplay::new(config.replay_capacity, *per))
            }
            None => ReplayStore::Uniform(UniformReplay::new(config.replay_capacity)),
        };
        let optimizer = config.optimizer.build();
        let scratch = DqnScratch {
            all_valid: vec![true; action_count],
            ..DqnScratch::default()
        };
        Self {
            config,
            online,
            target,
            optimizer,
            replay,
            env_steps: 0,
            learn_steps: 0,
            scratch,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f32 {
        self.config.epsilon.value(self.env_steps)
    }

    /// Environment steps observed so far.
    pub fn env_steps(&self) -> u64 {
        self.env_steps
    }

    /// Learn steps performed so far.
    pub fn learn_steps(&self) -> u64 {
        self.learn_steps
    }

    /// Read-only view of the online Q-network.
    pub fn online_network(&self) -> &QNetwork {
        &self.online
    }

    /// Number of stored transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// ε-greedy action for `state` under `mask`.
    ///
    /// Takes `&mut self` to route inference through the agent-owned
    /// workspace; the decision itself is a pure function of the network.
    ///
    /// # Panics
    ///
    /// Panics if every action is masked.
    pub fn act<R: Rng + ?Sized>(&mut self, state: &[f32], mask: &[bool], rng: &mut R) -> usize {
        let eps = self.epsilon();
        if rng.gen::<f32>() < eps {
            // Uniform draw over valid actions without materializing them:
            // count, draw the same `gen_range(0..count)` the old collected
            // form drew, then walk to the chosen one.
            let valid_count = mask.iter().filter(|&&ok| ok).count();
            assert!(valid_count > 0, "act called with fully-masked action set");
            let pick = rng.gen_range(0..valid_count);
            mask.iter()
                .enumerate()
                .filter_map(|(i, &ok)| ok.then_some(i))
                .nth(pick)
                .expect("pick is within the valid count")
        } else {
            self.act_greedy(state, mask)
        }
    }

    /// Greedy (evaluation) action for `state` under `mask`.
    ///
    /// Takes `&mut self` to route inference through the agent-owned
    /// workspace (allocation-free); the decision itself is a pure function
    /// of the network.
    ///
    /// # Panics
    ///
    /// Panics if every action is masked.
    pub fn act_greedy(&mut self, state: &[f32], mask: &[bool]) -> usize {
        let q = self
            .online
            .q_values_into(state, &mut self.scratch.online_ws);
        masked_argmax(q, mask).expect("act_greedy called with fully-masked action set")
    }

    /// Batched Q-values for `states` (one encoded state per row) through
    /// the agent-owned online workspace: ONE forward pass instead of
    /// `rows` single-state calls. Rows are independent under the kernels,
    /// so row `r` of the result is bit-identical to
    /// `q_values_into(states.row(r))`. The returned reference is valid
    /// until the workspace's next use.
    pub fn q_values_batch_into(&mut self, states: &Matrix) -> &Matrix {
        self.online
            .forward_into(states, &mut self.scratch.online_ws)
    }

    /// Greedy actions for a whole batch of decisions: `states` holds one
    /// encoded state per row, `masks` is the row-major valid-action mask
    /// (`masks[r * action_count + c]` gates action `c` of row `r`), and
    /// `out` receives one action index per row (cleared first).
    ///
    /// Runs a single batched forward plus a mask-aware per-row argmax, so
    /// the selected actions (and the underlying Q-rows) are bit-identical
    /// to calling [`DqnAgent::act_greedy`] once per row — pinned by the
    /// batch-parity test suite.
    ///
    /// # Panics
    ///
    /// Panics if `masks.len() != states.rows() * action_count` or any row
    /// is fully masked.
    pub fn act_greedy_batch(&mut self, states: &Matrix, masks: &[bool], out: &mut Vec<usize>) {
        let DqnScratch {
            online_ws,
            batch_choice,
            ..
        } = &mut self.scratch;
        let q = self.online.forward_into(states, online_ws);
        q.masked_argmax_rows_into(masks, batch_choice);
        out.clear();
        out.extend(batch_choice.iter().map(|choice| {
            choice.expect("act_greedy_batch called with a fully-masked action set row")
        }));
    }

    /// Stores a transition and, if due, performs a learn step.
    ///
    /// Returns learn-step telemetry when a gradient update happened.
    pub fn observe<R: Rng + ?Sized>(
        &mut self,
        transition: Transition,
        rng: &mut R,
    ) -> Option<LearnStats> {
        self.replay.push(transition);
        self.env_steps += 1;
        let due = self.env_steps as usize >= self.config.learn_start
            && self
                .env_steps
                .is_multiple_of(self.config.train_every as u64)
            && self.replay.len() >= self.config.batch_size;
        if due {
            Some(self.learn(rng))
        } else {
            None
        }
    }

    /// One gradient update from replay.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds fewer than `batch_size` transitions.
    pub fn learn<R: Rng + ?Sized>(&mut self, rng: &mut R) -> LearnStats {
        let n = self.config.batch_size;
        let state_dim = self.online.state_dim();

        // Sample ids, then assemble the minibatch by gathering transition
        // rows straight out of the buffer into two long-lived matrices —
        // no per-step transition clones, no fresh matrices.
        {
            let DqnScratch {
                indices, weights, ..
            } = &mut self.scratch;
            self.replay.sample_into(n, rng, indices, weights);
        }
        {
            let DqnScratch {
                indices,
                states,
                next_states,
                actions,
                ..
            } = &mut self.scratch;
            states.begin_rows(n, state_dim);
            next_states.begin_rows(n, state_dim);
            actions.clear();
            for &id in indices.iter() {
                let t = self.replay.get_ref(id);
                states.push_row(&t.state);
                next_states.push_row(&t.next_state);
                actions.push(t.action);
            }
        }

        // Bootstrapped targets, evaluated through the per-network
        // workspaces.
        {
            let DqnScratch {
                online_ws,
                target_ws,
                next_states,
                indices,
                targets,
                all_valid,
                ..
            } = &mut self.scratch;
            let bootstrap_net = self.target.as_ref().unwrap_or(&self.online);
            let q_next_target = bootstrap_net.forward_into(&*next_states, target_ws);
            let q_next_online = if self.config.double {
                Some(self.online.forward_into(&*next_states, online_ws))
            } else {
                None
            };
            targets.clear();
            for (r, &id) in indices.iter().enumerate() {
                let t = self.replay.get_ref(id);
                let future = if t.done {
                    0.0
                } else {
                    let mask = t.next_mask().unwrap_or(all_valid.as_slice());
                    match &q_next_online {
                        Some(online_next) => {
                            // Double DQN: select with online net, evaluate
                            // with target net.
                            match masked_argmax(online_next.row(r), mask) {
                                Some(a_star) => q_next_target.get(r, a_star),
                                None => 0.0, // terminal-by-masking
                            }
                        }
                        None => masked_max(q_next_target.row(r), mask).unwrap_or(0.0),
                    }
                };
                targets.push(t.reward + self.config.gamma * future);
            }
        }

        let prioritized = matches!(self.replay, ReplayStore::Prioritized(_));
        let (loss, td) = {
            let DqnScratch {
                states,
                actions,
                targets,
                weights,
                ..
            } = &mut self.scratch;
            self.online.train_selected(
                &*states,
                actions,
                targets,
                prioritized.then_some(weights.as_slice()),
                self.config.loss,
                &mut self.optimizer,
                self.config.max_grad_norm,
            )
        };
        self.replay.update_priorities(&self.scratch.indices, &td);
        self.learn_steps += 1;

        // Target maintenance.
        if let Some(target) = &mut self.target {
            if let Some(tau) = self.config.soft_tau {
                target.soft_update_from(&self.online, tau);
            } else if self.config.target_sync_every > 0
                && self
                    .learn_steps
                    .is_multiple_of(self.config.target_sync_every)
            {
                target.copy_parameters_from(&self.online);
            }
        }

        let mean_abs_td = td.iter().map(|e| e.abs()).sum::<f32>() / n as f32;
        LearnStats {
            loss,
            mean_abs_td,
            epsilon: self.epsilon(),
        }
    }

    /// Forces a hard target sync (used by tests).
    pub fn sync_target(&mut self) {
        if let Some(t) = &mut self.target {
            t.copy_parameters_from(&self.online);
        }
    }

    /// Q-values for a state (diagnostics).
    pub fn q_values(&self, state: &[f32]) -> Vec<f32> {
        self.online.q_values(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_config() -> DqnConfig {
        DqnConfig {
            network: QNetworkConfig::Standard { hidden: vec![16] },
            replay_capacity: 100,
            batch_size: 8,
            learn_start: 8,
            target_sync_every: 10,
            epsilon: EpsilonSchedule::Constant(0.1),
            ..DqnConfig::default()
        }
    }

    fn push_n(agent: &mut DqnAgent, n: usize, rng: &mut StdRng) {
        for i in 0..n {
            let s = vec![(i % 3) as f32, 1.0];
            let t = Transition::new(s.clone(), i % 2, 0.5, s, i % 7 == 0);
            agent.observe(t, rng);
        }
    }

    #[test]
    fn act_respects_mask_greedy_and_random() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = DqnConfig {
            epsilon: EpsilonSchedule::Constant(1.0),
            ..tiny_config()
        };
        let mut agent = DqnAgent::new(config, 2, 4, &mut rng);
        let mask = [false, true, false, false];
        for _ in 0..50 {
            assert_eq!(agent.act(&[0.0, 0.0], &mask, &mut rng), 1);
        }
        assert_eq!(agent.act_greedy(&[0.0, 0.0], &mask), 1);
    }

    #[test]
    fn learn_starts_only_after_learn_start() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = DqnAgent::new(tiny_config(), 2, 2, &mut rng);
        let s = vec![0.0, 0.0];
        for i in 0..7 {
            let stats = agent.observe(
                Transition::new(s.clone(), 0, 0.0, s.clone(), false),
                &mut rng,
            );
            assert!(stats.is_none(), "learned too early at step {i}");
        }
        let stats = agent.observe(Transition::new(s.clone(), 0, 0.0, s, false), &mut rng);
        assert!(stats.is_some());
    }

    #[test]
    fn learning_reduces_td_on_constant_reward() {
        // Single state, single action, reward 1, episodic: Q should approach
        // 1.0 (done=true ⇒ no bootstrap).
        let mut rng = StdRng::seed_from_u64(2);
        let config = DqnConfig {
            network: QNetworkConfig::Standard { hidden: vec![8] },
            replay_capacity: 64,
            batch_size: 8,
            learn_start: 8,
            optimizer: OptimizerConfig::adam(5e-3),
            epsilon: EpsilonSchedule::Constant(0.0),
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(config, 1, 1, &mut rng);
        for _ in 0..300 {
            agent.observe(
                Transition::new(vec![1.0], 0, 1.0, vec![1.0], true),
                &mut rng,
            );
        }
        let q = agent.q_values(&[1.0])[0];
        assert!((q - 1.0).abs() < 0.1, "Q = {q}, expected ≈ 1.0");
    }

    #[test]
    fn double_and_single_targets_both_learn() {
        for double in [false, true] {
            let mut rng = StdRng::seed_from_u64(3);
            let config = DqnConfig {
                double,
                ..tiny_config()
            };
            let mut agent = DqnAgent::new(config, 2, 2, &mut rng);
            push_n(&mut agent, 100, &mut rng);
            assert!(agent.learn_steps() > 0);
            assert!(!agent.online_network().has_non_finite_params());
        }
    }

    #[test]
    fn no_target_network_mode_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = DqnConfig {
            target_sync_every: 0,
            soft_tau: None,
            ..tiny_config()
        };
        let mut agent = DqnAgent::new(config, 2, 2, &mut rng);
        push_n(&mut agent, 60, &mut rng);
        assert!(agent.learn_steps() > 0);
    }

    #[test]
    fn soft_target_mode_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = DqnConfig {
            soft_tau: Some(0.05),
            ..tiny_config()
        };
        let mut agent = DqnAgent::new(config, 2, 2, &mut rng);
        push_n(&mut agent, 60, &mut rng);
        assert!(agent.learn_steps() > 0);
    }

    #[test]
    fn prioritized_mode_learns_and_updates_priorities() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = DqnConfig {
            prioritized: Some(PerConfig::default()),
            ..tiny_config()
        };
        let mut agent = DqnAgent::new(config, 2, 2, &mut rng);
        push_n(&mut agent, 100, &mut rng);
        assert!(agent.learn_steps() > 0);
    }

    #[test]
    fn masked_next_state_excluded_from_bootstrap() {
        // Next state has only action 1 valid; with a target net initialized
        // equal to online, the bootstrap must use Q(s', 1), not max over all.
        let mut rng = StdRng::seed_from_u64(8);
        let config = DqnConfig {
            network: QNetworkConfig::Standard { hidden: vec![] },
            replay_capacity: 4,
            batch_size: 1,
            learn_start: 1,
            train_every: 1,
            epsilon: EpsilonSchedule::Constant(0.0),
            optimizer: OptimizerConfig::sgd(1e-9), // negligible updates
            double: false,
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(config, 1, 2, &mut rng);
        let t = Transition::with_mask(vec![1.0], 0, 0.0, vec![1.0], false, vec![false, true]);
        let stats = agent.observe(t, &mut rng).expect("learned");
        // TD target = γ * Q(s',1). With lr≈0 the TD error equals
        // Q(s,0) - γ Q(s',1) exactly; just assert it is finite and the agent
        // didn't pick the masked max (which would differ when Q(s',0) is the
        // global max). Compute both to verify.
        let q = agent.q_values(&[1.0]);
        let expected_td = q[0] - agent.config().gamma * q[1];
        assert!((stats.mean_abs_td - expected_td.abs()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "fully-masked")]
    fn fully_masked_act_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut agent = DqnAgent::new(tiny_config(), 2, 2, &mut rng);
        let _ = agent.act_greedy(&[0.0, 0.0], &[false, false]);
    }

    /// One batched forward must select exactly what per-state calls do,
    /// Q-rows included, for both network variants.
    #[test]
    fn batch_greedy_matches_sequential_bitwise() {
        for network in [
            QNetworkConfig::Standard {
                hidden: vec![16, 8],
            },
            QNetworkConfig::Dueling {
                trunk: vec![16],
                head: 8,
            },
        ] {
            let mut rng = StdRng::seed_from_u64(12);
            let config = DqnConfig {
                network,
                ..tiny_config()
            };
            let mut agent = DqnAgent::new(config, 3, 4, &mut rng);
            let rows = 6;
            let mut states = Matrix::default();
            states.begin_rows(rows, 3);
            let mut masks = Vec::new();
            for r in 0..rows {
                states.push_row(&[r as f32 * 0.3 - 1.0, (r % 2) as f32, 0.5]);
                for c in 0..4 {
                    // Vary the masks; keep the last action always valid.
                    masks.push(c == 3 || (r + c) % 3 != 0);
                }
            }
            let mut batch_actions = Vec::new();
            agent.act_greedy_batch(&states, &masks, &mut batch_actions);
            let q_batch = agent.q_values_batch_into(&states).clone();
            for r in 0..rows {
                let mask: Vec<bool> = masks[r * 4..(r + 1) * 4].to_vec();
                assert_eq!(batch_actions[r], agent.act_greedy(states.row(r), &mask));
                assert_eq!(q_batch.row(r), agent.q_values(states.row(r)).as_slice());
            }
        }
    }

    #[test]
    #[should_panic(expected = "fully-masked")]
    fn batch_greedy_fully_masked_row_panics() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut agent = DqnAgent::new(tiny_config(), 2, 2, &mut rng);
        let states = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let masks = [true, true, false, false];
        let mut out = Vec::new();
        agent.act_greedy_batch(&states, &masks, &mut out);
    }
}
