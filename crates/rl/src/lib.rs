//! # rl — reinforcement-learning toolkit
//!
//! Discrete-action RL machinery for the DRL-based VNF manager: environment
//! abstraction with **action masking** (saturated edge nodes must never be
//! selected), uniform and prioritized experience replay, ε-schedules,
//! tabular Q-learning (the validation reference), and a DQN agent with the
//! Double/Dueling/PER extensions — each independently switchable to support
//! the paper's ablation study.
//!
//! Validation philosophy: the [`toy`] environments have known optimal
//! returns; the test suite requires both the tabular agent and the DQN to
//! reach them. A regression anywhere in the learning stack (backprop,
//! target computation, masking, replay) fails those tests before it can
//! silently corrupt the headline VNF experiments.
//!
//! # Examples
//!
//! ```
//! use rl::dqn::{DqnAgent, DqnConfig};
//! use rl::env::Environment;
//! use rl::toy::ChainEnv;
//! use rl::trainer::{evaluate_dqn, train_dqn};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut env = ChainEnv::new(4, 0.01);
//! let config = DqnConfig {
//!     learn_start: 32,
//!     epsilon: rl::schedule::EpsilonSchedule::Linear { start: 1.0, end: 0.05, steps: 500 },
//!     ..DqnConfig::default()
//! };
//! let mut agent = DqnAgent::new(config, env.state_dim(), env.action_count(), &mut rng);
//! train_dqn(&mut agent, &mut env, 50, 40, &mut rng);
//! let mean_return = evaluate_dqn(&mut agent, &mut env, 5, 40, &mut rng);
//! assert!(mean_return.is_finite());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dqn;
pub mod env;
pub mod qnet;
pub mod qtable;
pub mod reinforce;
pub mod replay;
pub mod schedule;
pub mod toy;
pub mod trainer;
pub mod transition;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::dqn::{DqnAgent, DqnConfig, LearnStats};
    pub use crate::env::{
        masked_argmax, masked_max, DiscreteStateEnvironment, Environment, StepOutcome,
    };
    pub use crate::qnet::{QNetWorkspace, QNetwork, QNetworkConfig};
    pub use crate::qtable::{QTableAgent, QTableConfig};
    pub use crate::reinforce::{
        masked_softmax, masked_softmax_into, ReinforceAgent, ReinforceConfig,
    };
    pub use crate::replay::{PerConfig, PrioritizedReplay, Replay, SampleBatch, UniformReplay};
    pub use crate::schedule::EpsilonSchedule;
    pub use crate::trainer::{evaluate_dqn, train_dqn, EpisodeStats, TrainingHistory};
    pub use crate::transition::Transition;
}
