//! Exploration-rate (ε) schedules.

use serde::{Deserialize, Serialize};

/// A schedule mapping a global step counter to an exploration rate ε.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EpsilonSchedule {
    /// Constant ε.
    Constant(f32),
    /// Linear decay from `start` to `end` over `steps` steps, then `end`.
    Linear {
        /// Initial ε at step 0.
        start: f32,
        /// Final ε after `steps`.
        end: f32,
        /// Number of steps to decay over.
        steps: u64,
    },
    /// Exponential decay: `end + (start - end) * exp(-step / tau)`.
    Exponential {
        /// Initial ε at step 0.
        start: f32,
        /// Asymptotic ε.
        end: f32,
        /// Decay time constant in steps.
        tau: f64,
    },
}

impl Default for EpsilonSchedule {
    fn default() -> Self {
        // The workhorse DQN schedule: explore fully at first, settle at 5%.
        EpsilonSchedule::Linear {
            start: 1.0,
            end: 0.05,
            steps: 50_000,
        }
    }
}

impl EpsilonSchedule {
    /// ε at the given global step.
    pub fn value(&self, step: u64) -> f32 {
        match *self {
            EpsilonSchedule::Constant(e) => e,
            EpsilonSchedule::Linear { start, end, steps } => {
                if steps == 0 || step >= steps {
                    end
                } else {
                    let frac = step as f32 / steps as f32;
                    start + (end - start) * frac
                }
            }
            EpsilonSchedule::Exponential { start, end, tau } => {
                let decayed = (start - end) as f64 * (-(step as f64) / tau.max(1e-9)).exp();
                end + decayed as f32
            }
        }
    }

    /// Validates that all produced values are probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint lies outside `[0, 1]`.
    pub fn validate(&self) {
        let check = |v: f32, name: &str| {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        };
        match *self {
            EpsilonSchedule::Constant(e) => check(e, "epsilon"),
            EpsilonSchedule::Linear { start, end, .. } => {
                check(start, "start");
                check(end, "end");
            }
            EpsilonSchedule::Exponential { start, end, tau } => {
                check(start, "start");
                check(end, "end");
                assert!(tau > 0.0, "tau must be positive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = EpsilonSchedule::Constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1_000_000), 0.3);
    }

    #[test]
    fn linear_endpoints_and_midpoint() {
        let s = EpsilonSchedule::Linear {
            start: 1.0,
            end: 0.0,
            steps: 100,
        };
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.5).abs() < 1e-6);
        assert_eq!(s.value(100), 0.0);
        assert_eq!(s.value(10_000), 0.0);
    }

    #[test]
    fn linear_zero_steps_is_end() {
        let s = EpsilonSchedule::Linear {
            start: 1.0,
            end: 0.1,
            steps: 0,
        };
        assert_eq!(s.value(0), 0.1);
    }

    #[test]
    fn exponential_decays_monotonically_to_end() {
        let s = EpsilonSchedule::Exponential {
            start: 1.0,
            end: 0.1,
            tau: 100.0,
        };
        let mut prev = s.value(0);
        assert!((prev - 1.0).abs() < 1e-6);
        for step in (10..2000).step_by(10) {
            let v = s.value(step);
            assert!(v <= prev + 1e-6, "not monotone at {step}");
            prev = v;
        }
        assert!((s.value(1_000_000) - 0.1).abs() < 1e-4);
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let schedules = [
            EpsilonSchedule::Constant(0.5),
            EpsilonSchedule::Linear {
                start: 0.9,
                end: 0.02,
                steps: 1000,
            },
            EpsilonSchedule::Exponential {
                start: 1.0,
                end: 0.01,
                tau: 333.0,
            },
        ];
        for s in schedules {
            s.validate();
            for step in [0u64, 1, 10, 100, 1000, 100_000] {
                let v = s.value(step);
                assert!((0.0..=1.0).contains(&v), "{s:?} produced {v} at {step}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_constant_rejected() {
        EpsilonSchedule::Constant(1.5).validate();
    }
}
