//! Q-value networks: standard MLP head and the dueling decomposition.

use nn::prelude::*;
use nn::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Architecture of a Q-network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QNetworkConfig {
    /// Plain MLP: `state -> hidden -> Q(s, ·)`.
    Standard {
        /// Hidden layer widths.
        hidden: Vec<usize>,
    },
    /// Dueling (Wang et al. 2016): shared trunk, then separate value and
    /// advantage heads combined as `Q = V + A - mean(A)`.
    Dueling {
        /// Shared trunk widths.
        trunk: Vec<usize>,
        /// Width of each head's hidden layer (one layer per head).
        head: usize,
    },
}

impl Default for QNetworkConfig {
    fn default() -> Self {
        QNetworkConfig::Standard {
            hidden: vec![64, 64],
        }
    }
}

/// Reusable inference buffers for a [`QNetwork`]: one MLP [`Workspace`]
/// per sub-network plus staging/combine matrices for the dueling head.
/// Owned by callers (the DQN agent keeps one per network it evaluates), so
/// a warm workspace makes batched and single-state inference
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct QNetWorkspace {
    input: Matrix,
    trunk: Workspace,
    value: Workspace,
    advantage: Workspace,
    q: Matrix,
}

impl QNetWorkspace {
    /// An empty workspace; buffers take shape on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A trainable state-action value function `Q(s, ·)` over discrete actions.
// The dueling variant inlines three MLPs (each carrying its own training
// scratch); boxing them would put an indirection on the hottest forward
// path for no measurable memory win — agents hold exactly one or two
// QNetworks.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QNetwork {
    /// Plain MLP variant.
    Standard(Mlp),
    /// Dueling variant with shared trunk and two heads.
    Dueling {
        /// Shared representation trunk.
        trunk: Mlp,
        /// State-value head (`1` output).
        value: Mlp,
        /// Advantage head (`action_count` outputs).
        advantage: Mlp,
    },
}

impl QNetwork {
    /// Builds a Q-network for `state_dim` inputs and `action_count` outputs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or a dueling trunk is empty.
    pub fn new<R: Rng + ?Sized>(
        config: &QNetworkConfig,
        state_dim: usize,
        action_count: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            state_dim > 0 && action_count > 0,
            "network dimensions must be positive"
        );
        match config {
            QNetworkConfig::Standard { hidden } => QNetwork::Standard(Mlp::new(
                &MlpConfig::new(state_dim, hidden, action_count),
                rng,
            )),
            QNetworkConfig::Dueling { trunk, head } => {
                assert!(
                    !trunk.is_empty(),
                    "dueling trunk must have at least one layer"
                );
                assert!(*head > 0, "dueling head width must be positive");
                let trunk_out = *trunk.last().expect("non-empty trunk");
                // Trunk ends with an activated hidden layer; heads are small
                // MLPs on top of it.
                let trunk_cfg = MlpConfig::new(state_dim, &trunk[..trunk.len() - 1], trunk_out)
                    .output_activation(Activation::Relu);
                let value_cfg = MlpConfig::new(trunk_out, &[*head], 1);
                let adv_cfg = MlpConfig::new(trunk_out, &[*head], action_count);
                QNetwork::Dueling {
                    trunk: Mlp::new(&trunk_cfg, rng),
                    value: Mlp::new(&value_cfg, rng),
                    advantage: Mlp::new(&adv_cfg, rng),
                }
            }
        }
    }

    /// Number of actions (output width).
    pub fn action_count(&self) -> usize {
        match self {
            QNetwork::Standard(net) => net.output_dim(),
            QNetwork::Dueling { advantage, .. } => advantage.output_dim(),
        }
    }

    /// State input dimension.
    pub fn state_dim(&self) -> usize {
        match self {
            QNetwork::Standard(net) => net.input_dim(),
            QNetwork::Dueling { trunk, .. } => trunk.input_dim(),
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            QNetwork::Standard(net) => net.param_count(),
            QNetwork::Dueling {
                trunk,
                value,
                advantage,
            } => trunk.param_count() + value.param_count() + advantage.param_count(),
        }
    }

    /// Inference: batched Q-values (`batch x action_count`).
    pub fn forward(&self, states: &Matrix) -> Matrix {
        let mut ws = QNetWorkspace::new();
        self.forward_into(states, &mut ws).clone()
    }

    /// Batched inference through a caller-owned workspace; returns a
    /// reference into the workspace, valid until its next use.
    /// Allocation-free once the workspace is warm.
    pub fn forward_into<'w>(&self, states: &Matrix, ws: &'w mut QNetWorkspace) -> &'w Matrix {
        let QNetWorkspace {
            trunk,
            value,
            advantage,
            q,
            ..
        } = ws;
        self.forward_parts(states, trunk, value, advantage, q)
    }

    fn forward_parts<'w>(
        &self,
        states: &Matrix,
        trunk_ws: &'w mut Workspace,
        value_ws: &'w mut Workspace,
        advantage_ws: &'w mut Workspace,
        q: &'w mut Matrix,
    ) -> &'w Matrix {
        match self {
            QNetwork::Standard(net) => net.forward_into(states, trunk_ws),
            QNetwork::Dueling {
                trunk,
                value,
                advantage,
            } => {
                let t = trunk.forward_into(states, trunk_ws);
                let v = value.forward_into(t, value_ws);
                let a = advantage.forward_into(t, advantage_ws);
                combine_dueling_into(v, a, q);
                &*q
            }
        }
    }

    /// Inference on a single state.
    pub fn q_values(&self, state: &[f32]) -> Vec<f32> {
        self.forward(&Matrix::row_vector(state)).row(0).to_vec()
    }

    /// Single-state inference through a caller-owned workspace; the action
    /// hot path. Returns the Q-value row, valid until the workspace's next
    /// use.
    pub fn q_values_into<'w>(&self, state: &[f32], ws: &'w mut QNetWorkspace) -> &'w [f32] {
        ws.input.set_row_vector(state);
        let QNetWorkspace {
            input,
            trunk,
            value,
            advantage,
            q,
        } = ws;
        self.forward_parts(&*input, trunk, value, advantage, q)
            .row(0)
    }

    /// Training step regressing `Q(s, selected)` toward `targets`.
    ///
    /// Returns `(loss, td_errors)`.
    #[allow(clippy::too_many_arguments)]
    pub fn train_selected(
        &mut self,
        states: &Matrix,
        selected: &[usize],
        targets: &[f32],
        weights: Option<&[f32]>,
        loss: Loss,
        optimizer: &mut Optimizer,
        max_grad_norm: Option<f32>,
    ) -> (f32, Vec<f32>) {
        match self {
            QNetwork::Standard(net) => net.train_selected(
                states,
                selected,
                targets,
                weights,
                loss,
                optimizer,
                max_grad_norm,
            ),
            QNetwork::Dueling {
                trunk,
                value,
                advantage,
            } => {
                // Forward with caches.
                let t = trunk.forward_train(states);
                let v = value.forward_train(&t);
                let a = advantage.forward_train(&t);
                let q = combine_dueling(&v, &a);

                let td: Vec<f32> = selected
                    .iter()
                    .zip(targets.iter())
                    .enumerate()
                    .map(|(r, (&c, &tgt))| q.get(r, c) - tgt)
                    .collect();
                let (l, grad_q) = loss.evaluate_selected(&q, selected, targets, weights);

                // Q_{r,c} = V_r + A_{r,c} - mean_k A_{r,k}
                // dL/dV_r = Σ_c dL/dQ_{r,c}
                // dL/dA_{r,c} = dL/dQ_{r,c} - (1/K) Σ_k dL/dQ_{r,k}
                let k = grad_q.cols() as f32;
                let mut grad_v = Matrix::zeros(grad_q.rows(), 1);
                let mut grad_a = grad_q.clone();
                for r in 0..grad_q.rows() {
                    let row_sum: f32 = grad_q.row(r).iter().sum();
                    grad_v.set(r, 0, row_sum);
                    for c in 0..grad_q.cols() {
                        grad_a.set(r, c, grad_q.get(r, c) - row_sum / k);
                    }
                }
                let g_t_from_v = value.backward(&grad_v);
                let g_t_from_a = advantage.backward(&grad_a);
                let grad_t = g_t_from_v.add(&g_t_from_a);
                trunk.backward(&grad_t);

                // Apply all three sub-networks under one optimizer using
                // disjoint slot ranges (layer indices offset per subnet).
                optimizer.begin_step();
                apply_subnet(trunk, optimizer, 0, max_grad_norm);
                apply_subnet(value, optimizer, 100, max_grad_norm);
                apply_subnet(advantage, optimizer, 200, max_grad_norm);
                (l, td)
            }
        }
    }

    /// Hard parameter copy (target-network sync).
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn copy_parameters_from(&mut self, other: &QNetwork) {
        match (self, other) {
            (QNetwork::Standard(a), QNetwork::Standard(b)) => a.copy_parameters_from(b),
            (
                QNetwork::Dueling {
                    trunk: t1,
                    value: v1,
                    advantage: a1,
                },
                QNetwork::Dueling {
                    trunk: t2,
                    value: v2,
                    advantage: a2,
                },
            ) => {
                t1.copy_parameters_from(t2);
                v1.copy_parameters_from(v2);
                a1.copy_parameters_from(a2);
            }
            _ => panic!("cannot copy parameters between different Q-network variants"),
        }
    }

    /// Polyak soft update toward `other`.
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn soft_update_from(&mut self, other: &QNetwork, tau: f32) {
        match (self, other) {
            (QNetwork::Standard(a), QNetwork::Standard(b)) => a.soft_update_from(b, tau),
            (
                QNetwork::Dueling {
                    trunk: t1,
                    value: v1,
                    advantage: a1,
                },
                QNetwork::Dueling {
                    trunk: t2,
                    value: v2,
                    advantage: a2,
                },
            ) => {
                t1.soft_update_from(t2, tau);
                v1.soft_update_from(v2, tau);
                a1.soft_update_from(a2, tau);
            }
            _ => panic!("cannot soft-update between different Q-network variants"),
        }
    }

    /// `true` if any parameter is NaN/inf.
    pub fn has_non_finite_params(&self) -> bool {
        match self {
            QNetwork::Standard(net) => net.has_non_finite_params(),
            QNetwork::Dueling {
                trunk,
                value,
                advantage,
            } => {
                trunk.has_non_finite_params()
                    || value.has_non_finite_params()
                    || advantage.has_non_finite_params()
            }
        }
    }
}

/// `Q = V + A - mean(A)` with mean subtracted per row (identifiability).
fn combine_dueling(v: &Matrix, a: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    combine_dueling_into(v, a, &mut out);
    out
}

/// [`combine_dueling`] into a reusable buffer. The per-row mean is computed
/// once (bit-identical to recomputing it per column, as the allocating form
/// historically did — the summation order is unchanged).
fn combine_dueling_into(v: &Matrix, a: &Matrix, out: &mut Matrix) {
    assert_eq!(v.rows(), a.rows(), "dueling heads batch mismatch");
    assert_eq!(v.cols(), 1, "value head must have one output");
    let k = a.cols() as f32;
    out.reset_for_overwrite(a.rows(), a.cols());
    for r in 0..a.rows() {
        let mean: f32 = a.row(r).iter().sum::<f32>() / k;
        let vr = v.get(r, 0);
        for (o, &av) in out.row_mut(r).iter_mut().zip(a.row(r).iter()) {
            *o = vr + av - mean;
        }
    }
}

fn apply_subnet(
    net: &mut Mlp,
    optimizer: &mut Optimizer,
    slot_base: usize,
    max_grad_norm: Option<f32>,
) {
    // Mirror Mlp::apply_gradients but with an externally begun step and a
    // slot offset so the three sub-networks don't collide.
    let mut grads = net.drain_gradients();
    if let Some(limit) = max_grad_norm {
        let mut refs: Vec<&mut Matrix> = Vec::with_capacity(grads.len() * 2);
        for (gw, gb) in grads.iter_mut() {
            refs.push(gw);
            refs.push(gb);
        }
        nn::optimizer::clip_global_norm(&mut refs, limit);
    }
    net.apply_external_gradients(&grads, optimizer, slot_base);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn standard_shapes() {
        let net = QNetwork::new(
            &QNetworkConfig::Standard { hidden: vec![8] },
            4,
            3,
            &mut rng(),
        );
        assert_eq!(net.state_dim(), 4);
        assert_eq!(net.action_count(), 3);
        assert_eq!(net.q_values(&[0.0; 4]).len(), 3);
    }

    #[test]
    fn dueling_shapes() {
        let net = QNetwork::new(
            &QNetworkConfig::Dueling {
                trunk: vec![16, 8],
                head: 8,
            },
            5,
            4,
            &mut rng(),
        );
        assert_eq!(net.state_dim(), 5);
        assert_eq!(net.action_count(), 4);
        assert!(net.param_count() > 0);
    }

    #[test]
    fn dueling_combine_is_mean_centered() {
        let v = Matrix::from_rows(&[&[2.0]]);
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let q = combine_dueling(&v, &a);
        // mean(A) = 2 → Q = 2 + [-1, 0, 1]
        assert_eq!(q, Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        // Mean of Q equals V.
        assert!((q.row(0).iter().sum::<f32>() / 3.0 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn standard_training_reduces_td_error() {
        let mut net = QNetwork::new(
            &QNetworkConfig::Standard { hidden: vec![16] },
            3,
            2,
            &mut rng(),
        );
        let mut opt = OptimizerConfig::adam(0.01).build();
        let states = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let selected = [0usize, 1usize];
        let targets = [1.0f32, -1.0f32];
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..200 {
            let (l, _) = net.train_selected(
                &states,
                &selected,
                &targets,
                None,
                Loss::Mse,
                &mut opt,
                None,
            );
            if i == 0 {
                first = l;
            }
            last = l;
        }
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn dueling_training_reduces_td_error() {
        let mut net = QNetwork::new(
            &QNetworkConfig::Dueling {
                trunk: vec![16],
                head: 8,
            },
            3,
            2,
            &mut rng(),
        );
        let mut opt = OptimizerConfig::adam(0.01).build();
        let states = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let selected = [0usize, 1usize];
        let targets = [1.0f32, -1.0f32];
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..300 {
            let (l, _) = net.train_selected(
                &states,
                &selected,
                &targets,
                None,
                Loss::Mse,
                &mut opt,
                None,
            );
            if i == 0 {
                first = l;
            }
            last = l;
        }
        assert!(last < first * 0.1, "dueling loss {first} -> {last}");
    }

    #[test]
    fn copy_parameters_aligns_outputs() {
        let config = QNetworkConfig::Dueling {
            trunk: vec![8],
            head: 4,
        };
        let a = QNetwork::new(&config, 3, 2, &mut rng());
        let mut b = QNetwork::new(&config, 3, 2, &mut StdRng::seed_from_u64(1));
        b.copy_parameters_from(&a);
        let s = [0.3, -0.2, 0.9];
        assert_eq!(a.q_values(&s), b.q_values(&s));
    }

    #[test]
    #[should_panic(expected = "different Q-network variants")]
    fn copy_between_variants_panics() {
        let a = QNetwork::new(
            &QNetworkConfig::Standard { hidden: vec![4] },
            2,
            2,
            &mut rng(),
        );
        let mut b = QNetwork::new(
            &QNetworkConfig::Dueling {
                trunk: vec![4],
                head: 2,
            },
            2,
            2,
            &mut rng(),
        );
        b.copy_parameters_from(&a);
    }
}
