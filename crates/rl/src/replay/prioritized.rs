//! Proportional prioritized experience replay (Schaul et al., 2016).

use super::sumtree::SumTree;
use super::Replay;
use crate::transition::Transition;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for prioritized replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerConfig {
    /// Priority exponent `α` — 0 is uniform, 1 is fully proportional.
    pub alpha: f32,
    /// Initial importance-sampling exponent `β`; annealed to 1.
    pub beta0: f32,
    /// Number of `sample` calls over which `β` anneals from `beta0` to 1.
    pub beta_anneal_steps: u64,
    /// Small constant added to TD error magnitudes so no priority is zero.
    pub priority_eps: f32,
}

impl Default for PerConfig {
    fn default() -> Self {
        Self {
            alpha: 0.6,
            beta0: 0.4,
            beta_anneal_steps: 100_000,
            priority_eps: 1e-3,
        }
    }
}

impl PerConfig {
    /// Validates the hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0,1]");
        assert!((0.0..=1.0).contains(&self.beta0), "beta0 must be in [0,1]");
        assert!(self.priority_eps > 0.0, "priority_eps must be positive");
    }
}

/// Priority-proportional replay buffer with IS-weight correction.
///
/// New transitions enter with the current maximum priority so everything is
/// replayed at least once; priorities are subsequently refreshed from TD
/// errors via [`Replay::update_priorities`].
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    storage: Vec<Option<Transition>>,
    tree: SumTree,
    config: PerConfig,
    capacity: usize,
    head: usize,
    len: usize,
    sample_calls: u64,
}

impl PrioritizedReplay {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the config is invalid.
    pub fn new(capacity: usize, config: PerConfig) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        config.validate();
        Self {
            storage: vec![None; capacity],
            tree: SumTree::new(capacity),
            config,
            capacity,
            head: 0,
            len: 0,
            sample_calls: 0,
        }
    }

    /// The configured hyperparameters.
    pub fn config(&self) -> PerConfig {
        self.config
    }

    /// Current annealed `β`.
    pub fn beta(&self) -> f32 {
        let steps = self.config.beta_anneal_steps.max(1) as f32;
        let progress = (self.sample_calls as f32 / steps).min(1.0);
        self.config.beta0 + (1.0 - self.config.beta0) * progress
    }

    fn priority_from_td(&self, td: f32) -> f32 {
        (td.abs() + self.config.priority_eps).powf(self.config.alpha)
    }
}

impl Replay for PrioritizedReplay {
    fn push(&mut self, transition: Transition) {
        // New samples get max priority so they are seen at least once.
        let p = self.tree.max_priority().max(self.priority_from_td(0.0));
        self.storage[self.head] = Some(transition);
        self.tree.set(self.head, p);
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn sample_into<R: Rng + ?Sized>(
        &mut self,
        batch: usize,
        rng: &mut R,
        indices: &mut Vec<u64>,
        weights: &mut Vec<f32>,
    ) {
        assert!(batch > 0, "batch size must be positive");
        assert!(self.len > 0, "cannot sample from an empty replay buffer");
        self.sample_calls += 1;
        let beta = self.beta();
        let total = self.tree.total();
        indices.clear();
        weights.clear();

        // Stratified sampling: one draw per equal-mass segment.
        let segment = total / batch as f64;
        let n = self.len as f32;
        let mut max_w = 0.0f32;
        for k in 0..batch {
            let lo = segment * k as f64;
            let v = lo + rng.gen::<f64>() * segment;
            let idx = self.tree.find_prefix(v);
            let p = self.tree.get(idx) as f64 / total;
            // w_i = (N * P(i))^-β, normalized later by max w.
            let w = ((n as f64 * p).max(1e-12) as f32).powf(-beta);
            indices.push(idx as u64);
            weights.push(w);
            max_w = max_w.max(w);
            debug_assert!(
                self.storage[idx].is_some(),
                "sum-tree sampled an empty slot — priority/storage desync"
            );
        }
        if max_w > 0.0 {
            for w in weights.iter_mut() {
                *w /= max_w;
            }
        }
    }

    fn get_ref(&self, id: u64) -> &Transition {
        self.storage[id as usize]
            .as_ref()
            .expect("sum-tree sampled an empty slot — priority/storage desync")
    }

    fn update_priorities(&mut self, indices: &[u64], td_errors: &[f32]) {
        assert_eq!(
            indices.len(),
            td_errors.len(),
            "indices/td_errors length mismatch"
        );
        for (&i, &td) in indices.iter().zip(td_errors.iter()) {
            let idx = i as usize;
            if idx < self.capacity && self.storage[idx].is_some() {
                let p = self.priority_from_td(td);
                self.tree.set(idx, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(v: f32) -> Transition {
        Transition::new(vec![v], 0, v, vec![v], false)
    }

    fn buf(capacity: usize) -> PrioritizedReplay {
        PrioritizedReplay::new(capacity, PerConfig::default())
    }

    #[test]
    fn push_and_len() {
        let mut b = buf(3);
        assert!(b.is_empty());
        b.push(t(1.0));
        b.push(t(2.0));
        assert_eq!(b.len(), 2);
        b.push(t(3.0));
        b.push(t(4.0)); // wraps
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn new_samples_get_max_priority() {
        let mut b = buf(4);
        b.push(t(0.0));
        b.update_priorities(&[0], &[10.0]); // big priority on slot 0
        let p0 = b.tree.get(0);
        b.push(t(1.0));
        // Newly pushed slot 1 should match the max (slot 0's) priority.
        assert!((b.tree.get(1) - p0).abs() < 1e-5);
    }

    #[test]
    fn high_priority_items_sampled_more() {
        let mut b = buf(2);
        b.push(t(0.0)); // slot 0
        b.push(t(1.0)); // slot 1
        b.update_priorities(&[0, 1], &[0.0, 10.0]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut count1 = 0;
        let draws = 2000;
        for _ in 0..draws {
            let s = b.sample(1, &mut rng);
            if s.transitions[0].reward == 1.0 {
                count1 += 1;
            }
        }
        // Priority ratio ≈ (10+eps)^0.6 : (0+eps)^0.6 — heavily favors slot 1.
        assert!(count1 as f64 / draws as f64 > 0.9, "count1 = {count1}");
    }

    #[test]
    fn weights_penalize_frequent_samples() {
        let mut b = buf(2);
        b.push(t(0.0));
        b.push(t(1.0));
        b.update_priorities(&[0, 1], &[0.1, 10.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let s = b.sample(32, &mut rng);
        // The high-priority item must carry a smaller IS weight.
        let mut w_high: Option<f32> = None;
        let mut w_low: Option<f32> = None;
        for (tr, &w) in s.transitions.iter().zip(s.weights.iter()) {
            if tr.reward == 1.0 {
                w_high = Some(w);
            } else {
                w_low = Some(w);
            }
        }
        if let (Some(h), Some(l)) = (w_high, w_low) {
            assert!(
                h < l,
                "high-priority weight {h} should be < low-priority weight {l}"
            );
        }
        // All weights normalized to (0, 1].
        assert!(s.weights.iter().all(|&w| w > 0.0 && w <= 1.0 + 1e-6));
    }

    #[test]
    fn beta_anneals_to_one() {
        let mut b = PrioritizedReplay::new(
            2,
            PerConfig {
                beta_anneal_steps: 10,
                ..PerConfig::default()
            },
        );
        b.push(t(0.0));
        let mut rng = StdRng::seed_from_u64(0);
        assert!((b.beta() - 0.4).abs() < 1e-6);
        for _ in 0..10 {
            let _ = b.sample(1, &mut rng);
        }
        assert!((b.beta() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn update_priorities_ignores_stale_indices() {
        let mut b = buf(2);
        b.push(t(0.0));
        // Index 1 not yet occupied; must not panic.
        b.update_priorities(&[1, 99], &[1.0, 1.0]);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let mut b = PrioritizedReplay::new(
            2,
            PerConfig {
                alpha: 0.0,
                ..PerConfig::default()
            },
        );
        b.push(t(0.0));
        b.push(t(1.0));
        b.update_priorities(&[0, 1], &[0.0, 100.0]);
        // With α=0 both priorities are (|td|+eps)^0 = 1.
        assert!((b.tree.get(0) - b.tree.get(1)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn invalid_alpha_panics() {
        let _ = PrioritizedReplay::new(
            2,
            PerConfig {
                alpha: 2.0,
                ..PerConfig::default()
            },
        );
    }
}
