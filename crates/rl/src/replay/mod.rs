//! Experience replay buffers.
//!
//! Two variants, matching the DQN lineage:
//!
//! * [`UniformReplay`] — the original DQN ring buffer with uniform sampling.
//! * [`PrioritizedReplay`] — proportional prioritized experience replay
//!   (Schaul et al. 2016) backed by a [`sumtree::SumTree`], with
//!   importance-sampling weight correction.

pub mod prioritized;
pub mod sumtree;
pub mod uniform;

pub use prioritized::{PerConfig, PrioritizedReplay};
pub use uniform::UniformReplay;

use crate::transition::Transition;
use rand::Rng;

/// Common interface over replay buffers for code that is generic in the
/// replay strategy (the DQN agent).
pub trait Replay {
    /// Inserts a transition, evicting the oldest when full.
    fn push(&mut self, transition: Transition);

    /// Number of stored transitions.
    fn len(&self) -> usize;

    /// Whether the buffer is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum capacity.
    fn capacity(&self) -> usize;

    /// Samples `batch` transition ids into caller-owned buffers (cleared
    /// first), with their importance-sampling weights (all `1.0` for
    /// uniform replay). The allocation-free core of [`Replay::sample`]:
    /// callers read the sampled transitions in place via
    /// [`Replay::get_ref`] instead of cloning them out.
    ///
    /// Consumes the RNG identically to [`Replay::sample`], so both paths
    /// draw the same batch from the same generator state.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `batch == 0`.
    fn sample_into<R: Rng + ?Sized>(
        &mut self,
        batch: usize,
        rng: &mut R,
        indices: &mut Vec<u64>,
        weights: &mut Vec<f32>,
    );

    /// Borrow of the transition behind a sampled id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to an occupied slot.
    fn get_ref(&self, id: u64) -> &Transition;

    /// Samples `batch` transitions. Returns indices (buffer-internal ids),
    /// cloned transitions, and importance-sampling weights (all `1.0` for
    /// uniform replay).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `batch == 0`.
    fn sample<R: Rng + ?Sized>(&mut self, batch: usize, rng: &mut R) -> SampleBatch {
        let mut indices = Vec::with_capacity(batch);
        let mut weights = Vec::with_capacity(batch);
        self.sample_into(batch, rng, &mut indices, &mut weights);
        let transitions = indices.iter().map(|&i| self.get_ref(i).clone()).collect();
        SampleBatch {
            indices,
            transitions,
            weights,
        }
    }

    /// Reports new TD-error magnitudes for previously sampled indices
    /// (no-op for uniform replay).
    fn update_priorities(&mut self, indices: &[u64], td_errors: &[f32]);
}

/// A sampled minibatch.
#[derive(Debug, Clone)]
pub struct SampleBatch {
    /// Buffer-internal identifiers for priority updates.
    pub indices: Vec<u64>,
    /// The sampled transitions (cloned out of the buffer).
    pub transitions: Vec<Transition>,
    /// Importance-sampling weights, normalized to max 1.
    pub weights: Vec<f32>,
}
