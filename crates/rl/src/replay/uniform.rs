//! Uniform-sampling ring-buffer replay (the classic DQN buffer).

use super::Replay;
use crate::transition::Transition;
use rand::Rng;

/// Fixed-capacity ring buffer with uniform random sampling.
///
/// # Examples
///
/// ```
/// use rl::replay::{Replay, UniformReplay};
/// use rl::transition::Transition;
/// use rand::SeedableRng;
///
/// let mut buf = UniformReplay::new(2);
/// for i in 0..3 {
///     buf.push(Transition::new(vec![i as f32], 0, 0.0, vec![0.0], false));
/// }
/// assert_eq!(buf.len(), 2); // oldest evicted
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let batch = buf.sample(2, &mut rng);
/// assert_eq!(batch.transitions.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UniformReplay {
    storage: Vec<Transition>,
    capacity: usize,
    /// Next write position.
    head: usize,
    /// Total number of pushes ever (for diagnostics).
    pushed: u64,
}

impl UniformReplay {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            storage: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Total number of transitions ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Immutable access to a stored transition by ring index.
    pub fn get(&self, index: usize) -> Option<&Transition> {
        self.storage.get(index)
    }
}

impl Replay for UniformReplay {
    fn push(&mut self, transition: Transition) {
        if self.storage.len() < self.capacity {
            self.storage.push(transition);
        } else {
            self.storage[self.head] = transition;
        }
        self.head = (self.head + 1) % self.capacity;
        self.pushed += 1;
    }

    fn len(&self) -> usize {
        self.storage.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn sample_into<R: Rng + ?Sized>(
        &mut self,
        batch: usize,
        rng: &mut R,
        indices: &mut Vec<u64>,
        weights: &mut Vec<f32>,
    ) {
        assert!(batch > 0, "batch size must be positive");
        assert!(
            !self.storage.is_empty(),
            "cannot sample from an empty replay buffer"
        );
        indices.clear();
        for _ in 0..batch {
            indices.push(rng.gen_range(0..self.storage.len()) as u64);
        }
        weights.clear();
        weights.resize(batch, 1.0);
    }

    fn get_ref(&self, id: u64) -> &Transition {
        &self.storage[id as usize]
    }

    fn update_priorities(&mut self, _indices: &[u64], _td_errors: &[f32]) {
        // Uniform replay has no priorities.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(v: f32) -> Transition {
        Transition::new(vec![v], 0, v, vec![v], false)
    }

    #[test]
    fn fills_up_to_capacity() {
        let mut buf = UniformReplay::new(3);
        assert!(buf.is_empty());
        for i in 0..3 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.capacity(), 3);
    }

    #[test]
    fn evicts_oldest_first() {
        let mut buf = UniformReplay::new(2);
        buf.push(t(0.0));
        buf.push(t(1.0));
        buf.push(t(2.0)); // evicts 0.0
        let stored: Vec<f32> = (0..2).map(|i| buf.get(i).unwrap().reward).collect();
        assert!(stored.contains(&1.0));
        assert!(stored.contains(&2.0));
        assert!(!stored.contains(&0.0));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut buf = UniformReplay::new(5);
        for i in 0..100 {
            buf.push(t(i as f32));
            assert!(buf.len() <= 5);
        }
        assert_eq!(buf.total_pushed(), 100);
    }

    #[test]
    fn sample_returns_unit_weights() {
        let mut buf = UniformReplay::new(4);
        for i in 0..4 {
            buf.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let batch = buf.sample(8, &mut rng);
        assert_eq!(batch.transitions.len(), 8);
        assert!(batch.weights.iter().all(|&w| w == 1.0));
    }

    #[test]
    fn sample_covers_buffer_eventually() {
        let mut buf = UniformReplay::new(4);
        for i in 0..4 {
            buf.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..50 {
            for tr in buf.sample(4, &mut rng).transitions {
                seen[tr.reward as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty replay")]
    fn sampling_empty_panics() {
        let mut buf = UniformReplay::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = UniformReplay::new(0);
    }
}
