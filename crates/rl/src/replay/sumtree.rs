//! Binary sum-tree for O(log n) proportional sampling.
//!
//! Leaves hold priorities; internal nodes hold subtree sums. Sampling draws
//! `u ∈ [0, total)` and walks down, giving each leaf probability
//! `p_i / Σp`.

/// A fixed-capacity sum-tree over `f32` priorities.
#[derive(Debug, Clone)]
pub struct SumTree {
    /// Complete binary tree in array form; `nodes[0]` is the root.
    nodes: Vec<f64>,
    /// Number of leaves (= capacity, rounded up to a power of two).
    leaves: usize,
    capacity: usize,
}

impl SumTree {
    /// Creates a tree with `capacity` leaf slots, all priority `0`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sum-tree capacity must be positive");
        let leaves = capacity.next_power_of_two();
        Self {
            nodes: vec![0.0; 2 * leaves],
            leaves,
            capacity,
        }
    }

    /// Number of leaf slots usable by callers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sum of all priorities.
    pub fn total(&self) -> f64 {
        self.nodes[1]
    }

    /// Priority at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn get(&self, index: usize) -> f32 {
        assert!(index < self.capacity, "sum-tree index {index} out of range");
        self.nodes[self.leaves + index] as f32
    }

    /// Sets the priority at `index`, updating ancestor sums.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity` or `priority` is negative/non-finite.
    pub fn set(&mut self, index: usize, priority: f32) {
        assert!(index < self.capacity, "sum-tree index {index} out of range");
        assert!(
            priority.is_finite() && priority >= 0.0,
            "priority must be finite and non-negative, got {priority}"
        );
        let mut node = self.leaves + index;
        let delta = priority as f64 - self.nodes[node];
        while node >= 1 {
            self.nodes[node] += delta;
            node /= 2;
        }
    }

    /// Finds the leaf index such that the prefix sum of priorities first
    /// exceeds `value`, i.e. proportional sampling for `value ∈ [0, total)`.
    ///
    /// Values outside the range are clamped to the last non-empty leaf side.
    ///
    /// # Panics
    ///
    /// Panics if the tree is entirely zero (nothing to sample).
    pub fn find_prefix(&self, value: f64) -> usize {
        assert!(
            self.total() > 0.0,
            "cannot sample from an all-zero sum-tree"
        );
        let mut v = value.clamp(0.0, self.total() - f64::EPSILON);
        let mut node = 1usize;
        while node < self.leaves {
            let left = 2 * node;
            if v < self.nodes[left] {
                node = left;
            } else {
                v -= self.nodes[left];
                node = left + 1;
            }
        }
        (node - self.leaves).min(self.capacity - 1)
    }

    /// Maximum leaf priority (0 for an empty tree).
    pub fn max_priority(&self) -> f32 {
        let mut max = 0.0f64;
        for i in 0..self.capacity {
            max = max.max(self.nodes[self.leaves + i]);
        }
        max as f32
    }

    /// Minimum non-zero leaf priority, or `None` if all zero.
    pub fn min_nonzero_priority(&self) -> Option<f32> {
        let mut min: Option<f64> = None;
        for i in 0..self.capacity {
            let p = self.nodes[self.leaves + i];
            if p > 0.0 {
                min = Some(match min {
                    Some(m) => m.min(p),
                    None => p,
                });
            }
        }
        min.map(|m| m as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_tracks_sets() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        assert!((t.total() - 6.0).abs() < 1e-9);
        t.set(1, 0.5); // overwrite
        assert!((t.total() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn find_prefix_walks_proportionally() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        t.set(3, 4.0);
        // Prefix boundaries: [0,1) -> 0, [1,3) -> 1, [3,6) -> 2, [6,10) -> 3.
        assert_eq!(t.find_prefix(0.5), 0);
        assert_eq!(t.find_prefix(1.0), 1);
        assert_eq!(t.find_prefix(2.99), 1);
        assert_eq!(t.find_prefix(3.0), 2);
        assert_eq!(t.find_prefix(9.99), 3);
    }

    #[test]
    fn find_prefix_clamps_out_of_range() {
        let mut t = SumTree::new(2);
        t.set(0, 1.0);
        // Only leaf 0 carries mass; both extremes must land on it.
        assert_eq!(t.find_prefix(-5.0), 0);
        assert_eq!(t.find_prefix(100.0), 0);
    }

    #[test]
    fn non_power_of_two_capacity() {
        let mut t = SumTree::new(5);
        for i in 0..5 {
            t.set(i, 1.0);
        }
        assert!((t.total() - 5.0).abs() < 1e-9);
        assert_eq!(t.find_prefix(4.5), 4);
    }

    #[test]
    fn max_and_min_priorities() {
        let mut t = SumTree::new(4);
        assert_eq!(t.max_priority(), 0.0);
        assert_eq!(t.min_nonzero_priority(), None);
        t.set(1, 5.0);
        t.set(2, 0.25);
        assert_eq!(t.max_priority(), 5.0);
        assert_eq!(t.min_nonzero_priority(), Some(0.25));
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn sampling_zero_tree_panics() {
        let t = SumTree::new(2);
        let _ = t.find_prefix(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_priority_panics() {
        let mut t = SumTree::new(2);
        t.set(0, -1.0);
    }

    #[test]
    fn sampling_distribution_is_roughly_proportional() {
        let mut t = SumTree::new(3);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 7.0);
        use rand::Rng as _;
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut counts = [0usize; 3];
        let n = 20_000;
        for _ in 0..n {
            let v = rng.gen_range(0.0..t.total());
            counts[t.find_prefix(v)] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freq[0] - 0.1).abs() < 0.02, "freq {freq:?}");
        assert!((freq[1] - 0.2).abs() < 0.02, "freq {freq:?}");
        assert!((freq[2] - 0.7).abs() < 0.02, "freq {freq:?}");
    }
}
