//! Environment abstraction for discrete-action reinforcement learning.

use rand::RngCore;

/// Outcome of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Observation after the transition.
    pub next_state: Vec<f32>,
    /// Scalar reward for the transition.
    pub reward: f32,
    /// Whether the episode terminated with this step.
    pub done: bool,
}

impl StepOutcome {
    /// Convenience constructor.
    pub fn new(next_state: Vec<f32>, reward: f32, done: bool) -> Self {
        Self {
            next_state,
            reward,
            done,
        }
    }
}

/// A discrete-action environment.
///
/// States are dense `f32` feature vectors of fixed dimension; actions are
/// `0..action_count()`. Environments may additionally advertise a per-state
/// *action mask* — essential for VNF placement, where saturated edge nodes
/// are invalid targets and must never be selected or bootstrapped through.
pub trait Environment {
    /// Dimension of the observation vector.
    fn state_dim(&self) -> usize;

    /// Number of discrete actions.
    fn action_count(&self) -> usize;

    /// Resets the environment and returns the initial observation.
    fn reset(&mut self, rng: &mut dyn RngCore) -> Vec<f32>;

    /// Applies `action` and returns the transition outcome.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= action_count()` or if the
    /// action is masked out — callers are expected to respect
    /// [`Environment::action_mask`].
    fn step(&mut self, action: usize, rng: &mut dyn RngCore) -> StepOutcome;

    /// Mask of currently valid actions (`true` = allowed).
    ///
    /// Default: all actions valid. Invariant: at least one entry must be
    /// `true` in any non-terminal state.
    fn action_mask(&self) -> Vec<bool> {
        vec![true; self.action_count()]
    }

    /// Optional upper bound on episode length used by trainers; `None`
    /// means the environment terminates on its own.
    fn max_episode_steps(&self) -> Option<usize> {
        None
    }
}

/// Environments with a small discrete state space, enabling tabular methods.
///
/// Used by the validation suite: tabular Q-learning provides a trusted
/// reference return that the DQN must match on toy problems.
pub trait DiscreteStateEnvironment: Environment {
    /// Number of distinct states.
    fn state_count(&self) -> usize;

    /// Identifier of the current state in `0..state_count()`.
    fn state_id(&self) -> usize;
}

/// Picks the valid action with the highest value from `values`,
/// respecting `mask` (entries with `mask[i] == false` are skipped).
///
/// Returns `None` if every action is masked out.
///
/// # Panics
///
/// Panics if `values` and `mask` lengths differ.
pub fn masked_argmax(values: &[f32], mask: &[bool]) -> Option<usize> {
    assert_eq!(values.len(), mask.len(), "values/mask length mismatch");
    let mut best: Option<(usize, f32)> = None;
    for (i, (&v, &ok)) in values.iter().zip(mask.iter()).enumerate() {
        if !ok {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Maximum value among unmasked entries, or `None` if all masked.
///
/// # Panics
///
/// Panics if `values` and `mask` lengths differ.
pub fn masked_max(values: &[f32], mask: &[bool]) -> Option<f32> {
    masked_argmax(values, mask).map(|i| values[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_argmax_skips_invalid() {
        let values = [5.0, 9.0, 7.0];
        let mask = [true, false, true];
        assert_eq!(masked_argmax(&values, &mask), Some(2));
    }

    #[test]
    fn masked_argmax_all_masked_is_none() {
        assert_eq!(masked_argmax(&[1.0, 2.0], &[false, false]), None);
    }

    #[test]
    fn masked_argmax_prefers_first_on_tie() {
        assert_eq!(masked_argmax(&[3.0, 3.0], &[true, true]), Some(0));
    }

    #[test]
    fn masked_max_value() {
        assert_eq!(
            masked_max(&[1.0, 10.0, 5.0], &[true, false, true]),
            Some(5.0)
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = masked_argmax(&[1.0], &[true, false]);
    }
}
