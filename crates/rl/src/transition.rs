//! Experience transitions stored by replay buffers.

use serde::{Deserialize, Serialize};

/// One `(s, a, r, s', done)` experience tuple, plus the action mask that
/// applies in `s'` so that bootstrapped targets never flow through invalid
/// actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Observation before the action.
    pub state: Vec<f32>,
    /// Action taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Observation after the action.
    pub next_state: Vec<f32>,
    /// Whether the episode ended with this transition.
    pub done: bool,
    /// Valid-action mask in `next_state`; empty means "all valid".
    pub next_mask: Vec<bool>,
}

impl Transition {
    /// Creates a transition with an all-valid next-state mask.
    pub fn new(
        state: Vec<f32>,
        action: usize,
        reward: f32,
        next_state: Vec<f32>,
        done: bool,
    ) -> Self {
        Self {
            state,
            action,
            reward,
            next_state,
            done,
            next_mask: Vec::new(),
        }
    }

    /// Creates a transition carrying an explicit next-state action mask.
    pub fn with_mask(
        state: Vec<f32>,
        action: usize,
        reward: f32,
        next_state: Vec<f32>,
        done: bool,
        next_mask: Vec<bool>,
    ) -> Self {
        Self {
            state,
            action,
            reward,
            next_state,
            done,
            next_mask,
        }
    }

    /// The next-state mask as a slice, or `None` when all actions are valid.
    pub fn next_mask(&self) -> Option<&[bool]> {
        if self.next_mask.is_empty() {
            None
        } else {
            Some(&self.next_mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask_means_all_valid() {
        let t = Transition::new(vec![0.0], 1, 0.5, vec![1.0], false);
        assert!(t.next_mask().is_none());
    }

    #[test]
    fn explicit_mask_round_trips() {
        let t = Transition::with_mask(vec![0.0], 0, 1.0, vec![1.0], true, vec![true, false]);
        assert_eq!(t.next_mask(), Some(&[true, false][..]));
    }
}
