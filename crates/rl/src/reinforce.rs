//! REINFORCE (Monte-Carlo policy gradient, Williams 1992) with a
//! moving-average baseline and masked softmax policies.
//!
//! The extension manager: where DQN learns action values, REINFORCE learns
//! the placement distribution directly. Included for the algorithm
//! comparison experiment and as the natural "future work" extension of a
//! DQN-based paper.

use crate::env::masked_argmax;
use nn::prelude::*;
use nn::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Large negative logit standing in for −∞ on masked actions.
const MASKED_LOGIT: f32 = -1e9;

/// REINFORCE hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReinforceConfig {
    /// Hidden layer widths of the policy network.
    pub hidden: Vec<usize>,
    /// Discount factor γ for within-episode returns.
    pub gamma: f32,
    /// Optimizer.
    pub optimizer: OptimizerConfig,
    /// Global gradient-norm clip.
    pub max_grad_norm: Option<f32>,
    /// Exponential-moving-average coefficient of the return baseline in
    /// `[0, 1)`; `0` disables the baseline.
    pub baseline_ema: f32,
    /// Entropy-bonus coefficient: keeps the softmax from collapsing onto a
    /// single action before the return signal is informative. `0` disables.
    pub entropy_coef: f32,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128, 128],
            gamma: 0.95,
            optimizer: OptimizerConfig::adam(3e-4),
            max_grad_norm: Some(10.0),
            baseline_ema: 0.99,
            entropy_coef: 0.01,
        }
    }
}

impl ReinforceConfig {
    /// Validates hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.gamma), "gamma must be in [0,1]");
        assert!(
            (0.0..1.0).contains(&self.baseline_ema),
            "baseline_ema must be in [0,1)"
        );
        assert!(
            self.entropy_coef >= 0.0,
            "entropy_coef must be non-negative"
        );
    }
}

/// One step of the in-flight episode.
#[derive(Debug, Clone)]
struct EpisodeStep {
    state: Vec<f32>,
    mask: Vec<bool>,
    action: usize,
    reward: f32,
}

/// Reusable hot-path buffers: the inference workspace, the per-decision
/// probability vector, and the episode-update tensors.
#[derive(Clone, Default)]
struct PgScratch {
    ws: Workspace,
    probs: Vec<f32>,
    returns: Vec<f32>,
    states: Matrix,
    grad: Matrix,
}

/// A REINFORCE agent over vectorized states and masked discrete actions.
#[derive(Clone)]
pub struct ReinforceAgent {
    config: ReinforceConfig,
    net: Mlp,
    optimizer: Optimizer,
    episode: Vec<EpisodeStep>,
    /// EMA of episode returns (the variance-reduction baseline).
    baseline: f32,
    baseline_initialized: bool,
    episodes_trained: u64,
    /// Reusable hot-path buffers (no behavioral state).
    scratch: PgScratch,
}

impl std::fmt::Debug for ReinforceAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReinforceAgent")
            .field("state_dim", &self.net.input_dim())
            .field("action_count", &self.net.output_dim())
            .field("episodes_trained", &self.episodes_trained)
            .finish()
    }
}

impl ReinforceAgent {
    /// Builds an agent for `state_dim` observations and `action_count`
    /// actions.
    ///
    /// # Panics
    ///
    /// Panics on invalid config or zero dimensions.
    pub fn new<R: Rng + ?Sized>(
        config: ReinforceConfig,
        state_dim: usize,
        action_count: usize,
        rng: &mut R,
    ) -> Self {
        config.validate();
        let net_config = MlpConfig::new(state_dim, &config.hidden, action_count);
        let net = Mlp::new(&net_config, rng);
        let optimizer = config.optimizer.build();
        Self {
            config,
            net,
            optimizer,
            episode: Vec::new(),
            baseline: 0.0,
            baseline_initialized: false,
            episodes_trained: 0,
            scratch: PgScratch::default(),
        }
    }

    /// Episodes completed with a gradient update.
    pub fn episodes_trained(&self) -> u64 {
        self.episodes_trained
    }

    /// Masked action probabilities for a state.
    ///
    /// Takes `&mut self` to route inference through the agent-owned
    /// workspace; the result is a pure function of the network.
    ///
    /// # Panics
    ///
    /// Panics if every action is masked or lengths mismatch.
    pub fn action_probabilities(&mut self, state: &[f32], mask: &[bool]) -> Vec<f32> {
        self.probabilities_scratch(state, mask);
        self.scratch.probs.clone()
    }

    /// Fills `self.scratch.probs` with the masked policy for `state`
    /// without allocating.
    fn probabilities_scratch(&mut self, state: &[f32], mask: &[bool]) {
        let PgScratch { ws, probs, .. } = &mut self.scratch;
        let logits = self.net.forward_one_into(state, ws);
        masked_softmax_into(logits, mask, probs);
    }

    /// Samples an action from the current policy.
    ///
    /// # Panics
    ///
    /// Panics if every action is masked.
    pub fn act<R: Rng + ?Sized>(&mut self, state: &[f32], mask: &[bool], rng: &mut R) -> usize {
        self.probabilities_scratch(state, mask);
        let probs = &self.scratch.probs;
        let mut u: f32 = rng.gen();
        for (i, &p) in probs.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        // Numerical fallback: the most probable valid action.
        masked_argmax(probs, mask).expect("act called with fully-masked action set")
    }

    /// The policy mode (most probable action) for evaluation.
    ///
    /// # Panics
    ///
    /// Panics if every action is masked.
    pub fn act_greedy(&mut self, state: &[f32], mask: &[bool]) -> usize {
        self.probabilities_scratch(state, mask);
        masked_argmax(&self.scratch.probs, mask)
            .expect("act_greedy called with fully-masked action set")
    }

    /// Greedy (mode) actions for a whole batch of decisions: `states`
    /// holds one encoded state per row, `masks` is the row-major
    /// valid-action mask (`masks[r * action_count + c]`), and `out`
    /// receives one action per row (cleared first).
    ///
    /// One batched forward produces every row's logits, then each row goes
    /// through the exact masked softmax + argmax that
    /// [`ReinforceAgent::act_greedy`] applies, so the selected actions are
    /// bit-identical to the per-state path (rows are independent under the
    /// kernels) — pinned by the batch-parity test suite.
    ///
    /// # Panics
    ///
    /// Panics if `masks.len() != states.rows() * action_count` or any row
    /// is fully masked.
    pub fn act_greedy_batch(&mut self, states: &Matrix, masks: &[bool], out: &mut Vec<usize>) {
        let actions = self.net.output_dim();
        assert_eq!(
            masks.len(),
            states.rows() * actions,
            "masks length {} != rows*actions {}",
            masks.len(),
            states.rows() * actions
        );
        let PgScratch { ws, probs, .. } = &mut self.scratch;
        let logits = self.net.forward_into(states, ws);
        out.clear();
        out.reserve(logits.rows());
        for r in 0..logits.rows() {
            let mask = &masks[r * actions..(r + 1) * actions];
            masked_softmax_into(logits.row(r), mask, probs);
            out.push(
                masked_argmax(probs, mask)
                    .expect("act_greedy_batch called with a fully-masked action set row"),
            );
        }
    }

    /// Records one step of the in-flight episode.
    pub fn record_step(&mut self, state: Vec<f32>, mask: Vec<bool>, action: usize, reward: f32) {
        self.episode.push(EpisodeStep {
            state,
            mask,
            action,
            reward,
        });
    }

    /// Ends the episode: computes discounted returns, subtracts the
    /// baseline, and applies one policy-gradient update. Returns the
    /// undiscounted episode return, or `None` for an empty episode.
    pub fn end_episode(&mut self) -> Option<f32> {
        if self.episode.is_empty() {
            return None;
        }
        let steps = std::mem::take(&mut self.episode);
        let n = steps.len();

        // Discounted return-to-go per step (into the reusable buffer).
        let returns = &mut self.scratch.returns;
        returns.clear();
        returns.resize(n, 0.0);
        let mut acc = 0.0f32;
        for i in (0..n).rev() {
            acc = steps[i].reward + self.config.gamma * acc;
            returns[i] = acc;
        }
        let episode_return: f32 = steps.iter().map(|s| s.reward).sum();

        // Baseline update (EMA of the episode's mean return-to-go).
        let mean_return = returns.iter().sum::<f32>() / n as f32;
        if self.baseline_initialized {
            let ema = self.config.baseline_ema;
            self.baseline = ema * self.baseline + (1.0 - ema) * mean_return;
        } else if self.config.baseline_ema > 0.0 {
            self.baseline = mean_return;
            self.baseline_initialized = true;
        }

        // Batched forward over the episode, manual ∇ log π gradient:
        // dL/dlogits_i = A · (π_i − 1{i = a}) / n for the chosen action a.
        // Everything runs in reusable buffers: the episode states gather
        // into one long-lived matrix, logits live in the network's training
        // scratch, and the gradient/probability buffers are agent-owned.
        let state_dim = self.net.input_dim();
        {
            let PgScratch {
                returns,
                states,
                grad,
                probs,
                ..
            } = &mut self.scratch;
            states.begin_rows(n, state_dim);
            for s in steps.iter() {
                states.push_row(&s.state);
            }
            let logits = self.net.forward_train_scratch(&*states);
            grad.reset_for_overwrite(n, logits.cols());
            for (r, step) in steps.iter().enumerate() {
                let advantage = returns[r]
                    - if self.baseline_initialized {
                        self.baseline
                    } else {
                        0.0
                    };
                masked_softmax_into(logits.row(r), &step.mask, probs);
                // Entropy of the masked policy at this state (for the bonus).
                let entropy: f32 = probs
                    .iter()
                    .filter(|&&p| p > 0.0)
                    .map(|&p| -p * p.ln())
                    .sum();
                for (c, &p) in probs.iter().enumerate() {
                    let indicator = if c == step.action { 1.0 } else { 0.0 };
                    // Policy-gradient term plus entropy-bonus term
                    // (dH/dlogit_c = p_c·(−ln p_c − H); we *ascend* entropy).
                    let pg = advantage * (p - indicator);
                    let ent = if p > 0.0 {
                        -self.config.entropy_coef * p * (-p.ln() - entropy)
                    } else {
                        0.0
                    };
                    grad.set(r, c, (pg + ent) / n as f32);
                }
            }
        }
        self.net.backward_scratch(&self.scratch.grad);
        self.net
            .apply_gradients(&mut self.optimizer, self.config.max_grad_norm);
        self.episodes_trained += 1;
        Some(episode_return)
    }

    /// Discards the in-flight episode without learning (evaluation mode).
    pub fn abandon_episode(&mut self) {
        self.episode.clear();
    }
}

/// Softmax over `logits` with masked entries forced to probability zero.
///
/// # Panics
///
/// Panics if lengths differ or every action is masked.
pub fn masked_softmax(logits: &[f32], mask: &[bool]) -> Vec<f32> {
    let mut out = Vec::new();
    masked_softmax_into(logits, mask, &mut out);
    out
}

/// [`masked_softmax`] into a caller-owned buffer (cleared first) — the
/// allocation-free decision-loop form. Identical arithmetic in identical
/// order, so results match [`masked_softmax`] bit for bit.
///
/// # Panics
///
/// Panics if lengths differ or every action is masked.
pub fn masked_softmax_into(logits: &[f32], mask: &[bool], out: &mut Vec<f32>) {
    assert_eq!(logits.len(), mask.len(), "logits/mask length mismatch");
    assert!(
        mask.iter().any(|&m| m),
        "masked_softmax with fully-masked action set"
    );
    out.clear();
    out.extend(
        logits
            .iter()
            .zip(mask.iter())
            .map(|(&l, &ok)| if ok { l } else { MASKED_LOGIT }),
    );
    let max = out.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for v in out.iter_mut() {
        *v = (*v - max).exp();
    }
    let sum: f32 = out.iter().sum();
    for v in out.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use crate::toy::{BanditEnv, ChainEnv};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masked_softmax_zeroes_invalid() {
        let p = masked_softmax(&[1.0, 2.0, 3.0], &[true, false, true]);
        assert!(p[1] < 1e-6);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p[2] > p[0]);
    }

    #[test]
    fn masked_softmax_uniform_for_equal_logits() {
        let p = masked_softmax(&[0.5, 0.5], &[true, true]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "fully-masked")]
    fn fully_masked_softmax_panics() {
        let _ = masked_softmax(&[1.0], &[false]);
    }

    fn run_episodes(
        agent: &mut ReinforceAgent,
        env: &mut impl Environment,
        episodes: usize,
        rng: &mut StdRng,
    ) {
        let cap = env.max_episode_steps().unwrap_or(100);
        for _ in 0..episodes {
            let mut state = env.reset(rng);
            for _ in 0..cap {
                let mask = env.action_mask();
                let action = agent.act(&state, &mask, rng);
                let outcome = env.step(action, rng);
                agent.record_step(state, mask, action, outcome.reward);
                state = outcome.next_state;
                if outcome.done {
                    break;
                }
            }
            agent.end_episode();
        }
    }

    fn greedy_return(
        agent: &mut ReinforceAgent,
        env: &mut impl Environment,
        episodes: usize,
        rng: &mut StdRng,
    ) -> f32 {
        let cap = env.max_episode_steps().unwrap_or(100);
        let mut total = 0.0;
        for _ in 0..episodes {
            let mut state = env.reset(rng);
            for _ in 0..cap {
                let action = agent.act_greedy(&state, &env.action_mask());
                let outcome = env.step(action, rng);
                total += outcome.reward;
                state = outcome.next_state;
                if outcome.done {
                    break;
                }
            }
        }
        total / episodes as f32
    }

    #[test]
    fn solves_contextual_bandit() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut env = BanditEnv::new(3, 3);
        let config = ReinforceConfig {
            hidden: vec![32],
            optimizer: OptimizerConfig::adam(5e-3),
            ..Default::default()
        };
        let mut agent = ReinforceAgent::new(config, env.state_dim(), env.action_count(), &mut rng);
        run_episodes(&mut agent, &mut env, 1_500, &mut rng);
        let mean = greedy_return(&mut agent, &mut env, 200, &mut rng);
        assert!(mean > 0.95, "bandit mean reward {mean}");
    }

    #[test]
    fn solves_chain() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut env = ChainEnv::new(5, 0.01);
        let config = ReinforceConfig {
            hidden: vec![32],
            optimizer: OptimizerConfig::adam(5e-3),
            ..Default::default()
        };
        let mut agent = ReinforceAgent::new(config, env.state_dim(), env.action_count(), &mut rng);
        run_episodes(&mut agent, &mut env, 600, &mut rng);
        let mean = greedy_return(&mut agent, &mut env, 20, &mut rng);
        // Optimal: 4 steps right → 1 − 0.04 = 0.96.
        assert!(mean > 0.85, "chain mean return {mean}");
    }

    #[test]
    fn empty_episode_is_noop() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = ReinforceAgent::new(ReinforceConfig::default(), 2, 2, &mut rng);
        assert_eq!(agent.end_episode(), None);
        assert_eq!(agent.episodes_trained(), 0);
    }

    #[test]
    fn act_respects_mask() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = ReinforceAgent::new(ReinforceConfig::default(), 2, 3, &mut rng);
        for _ in 0..50 {
            let a = agent.act(&[0.1, 0.2], &[false, true, false], &mut rng);
            assert_eq!(a, 1);
        }
    }

    #[test]
    fn batch_greedy_matches_sequential_bitwise() {
        use nn::tensor::Matrix;
        let mut rng = StdRng::seed_from_u64(21);
        let config = ReinforceConfig {
            hidden: vec![16],
            ..ReinforceConfig::default()
        };
        let mut agent = ReinforceAgent::new(config, 3, 4, &mut rng);
        let rows = 5;
        let mut states = Matrix::default();
        states.begin_rows(rows, 3);
        let mut masks = Vec::new();
        for r in 0..rows {
            states.push_row(&[0.2 * r as f32, 1.0 - r as f32 * 0.1, -0.4]);
            for c in 0..4 {
                masks.push(c == 3 || (r + c) % 2 == 0);
            }
        }
        let mut batch_actions = Vec::new();
        agent.act_greedy_batch(&states, &masks, &mut batch_actions);
        for r in 0..rows {
            let mask: Vec<bool> = masks[r * 4..(r + 1) * 4].to_vec();
            assert_eq!(batch_actions[r], agent.act_greedy(states.row(r), &mask));
        }
    }

    #[test]
    #[should_panic(expected = "fully-masked")]
    fn batch_greedy_fully_masked_row_panics() {
        use nn::tensor::Matrix;
        let mut rng = StdRng::seed_from_u64(22);
        let mut agent = ReinforceAgent::new(ReinforceConfig::default(), 2, 2, &mut rng);
        let states = Matrix::from_rows(&[&[0.0, 0.0]]);
        let mut out = Vec::new();
        agent.act_greedy_batch(&states, &[false, false], &mut out);
    }

    #[test]
    fn abandon_discards_without_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut agent = ReinforceAgent::new(ReinforceConfig::default(), 2, 2, &mut rng);
        agent.record_step(vec![0.0, 0.0], vec![true, true], 0, 1.0);
        agent.abandon_episode();
        assert_eq!(agent.end_episode(), None);
    }
}
