//! Tabular Q-learning — the trusted reference learner for validating deep
//! agents on toy environments with small discrete state spaces.

use crate::env::{masked_argmax, DiscreteStateEnvironment};
use crate::schedule::EpsilonSchedule;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for tabular Q-learning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QTableConfig {
    /// Learning rate α.
    pub alpha: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Optimistic initial Q value (encourages early exploration).
    pub initial_q: f32,
}

impl Default for QTableConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            gamma: 0.99,
            epsilon: EpsilonSchedule::Linear {
                start: 1.0,
                end: 0.05,
                steps: 5_000,
            },
            initial_q: 0.0,
        }
    }
}

/// A tabular Q-learning agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QTableAgent {
    q: Vec<Vec<f32>>,
    config: QTableConfig,
    steps: u64,
}

impl QTableAgent {
    /// Creates a table of `state_count x action_count` entries.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero, `alpha ∉ (0,1]` or `gamma ∉ [0,1]`.
    pub fn new(state_count: usize, action_count: usize, config: QTableConfig) -> Self {
        assert!(
            state_count > 0 && action_count > 0,
            "table dimensions must be positive"
        );
        assert!(
            config.alpha > 0.0 && config.alpha <= 1.0,
            "alpha must be in (0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.gamma),
            "gamma must be in [0,1]"
        );
        config.epsilon.validate();
        Self {
            q: vec![vec![config.initial_q; action_count]; state_count],
            config,
            steps: 0,
        }
    }

    /// Number of states in the table.
    pub fn state_count(&self) -> usize {
        self.q.len()
    }

    /// Q-values for a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn q_values(&self, state: usize) -> &[f32] {
        &self.q[state]
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f32 {
        self.config.epsilon.value(self.steps)
    }

    /// ε-greedy action for `state` under `mask`.
    ///
    /// # Panics
    ///
    /// Panics if every action is masked or `state` is out of range.
    pub fn act<R: Rng + ?Sized>(&self, state: usize, mask: &[bool], rng: &mut R) -> usize {
        if rng.gen::<f32>() < self.epsilon() {
            let valid: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &ok)| ok.then_some(i))
                .collect();
            assert!(!valid.is_empty(), "act called with fully-masked action set");
            valid[rng.gen_range(0..valid.len())]
        } else {
            self.act_greedy(state, mask)
        }
    }

    /// Greedy action for `state` under `mask`.
    ///
    /// # Panics
    ///
    /// Panics if every action is masked or `state` is out of range.
    pub fn act_greedy(&self, state: usize, mask: &[bool]) -> usize {
        masked_argmax(&self.q[state], mask).expect("act_greedy called with fully-masked action set")
    }

    /// Q-learning update for one transition. `next_mask` restricts the
    /// bootstrap maximization; pass `None` for all-valid.
    ///
    /// Returns the TD error.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f32,
        next_state: usize,
        done: bool,
        next_mask: Option<&[bool]>,
    ) -> f32 {
        self.steps += 1;
        let future = if done {
            0.0
        } else {
            let row = &self.q[next_state];
            match next_mask {
                Some(mask) => masked_argmax(row, mask).map_or(0.0, |a| row[a]),
                None => row.iter().copied().fold(f32::NEG_INFINITY, f32::max),
            }
        };
        let target = reward + self.config.gamma * future;
        let td = target - self.q[state][action];
        self.q[state][action] += self.config.alpha * td;
        td
    }

    /// Runs `episodes` training episodes on `env`; returns per-episode
    /// undiscounted returns.
    pub fn train<E: DiscreteStateEnvironment, R: Rng>(
        &mut self,
        env: &mut E,
        episodes: usize,
        rng: &mut R,
    ) -> Vec<f32> {
        let cap = env.max_episode_steps().unwrap_or(10_000);
        let mut returns = Vec::with_capacity(episodes);
        for _ in 0..episodes {
            let _obs = env.reset(rng);
            let mut state = env.state_id();
            let mut ep_return = 0.0;
            for _ in 0..cap {
                let mask = env.action_mask();
                let action = self.act(state, &mask, rng);
                let outcome = env.step(action, rng);
                let next_state = env.state_id();
                let next_mask = env.action_mask();
                self.update(
                    state,
                    action,
                    outcome.reward,
                    next_state,
                    outcome.done,
                    Some(&next_mask),
                );
                ep_return += outcome.reward;
                state = next_state;
                if outcome.done {
                    break;
                }
            }
            returns.push(ep_return);
        }
        returns
    }

    /// Greedy-policy evaluation over `episodes`; returns mean return.
    pub fn evaluate<E: DiscreteStateEnvironment, R: Rng>(
        &self,
        env: &mut E,
        episodes: usize,
        rng: &mut R,
    ) -> f32 {
        let cap = env.max_episode_steps().unwrap_or(10_000);
        let mut total = 0.0;
        for _ in 0..episodes {
            let _ = env.reset(rng);
            let mut ep = 0.0;
            for _ in 0..cap {
                let action = self.act_greedy(env.state_id(), &env.action_mask());
                let outcome = env.step(action, rng);
                ep += outcome.reward;
                if outcome.done {
                    break;
                }
            }
            total += ep;
        }
        total / episodes.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::chain::ChainEnv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn update_moves_toward_target() {
        let mut agent = QTableAgent::new(
            2,
            2,
            QTableConfig {
                alpha: 0.5,
                ..Default::default()
            },
        );
        let td = agent.update(0, 1, 1.0, 1, true, None);
        assert!((td - 1.0).abs() < 1e-6);
        assert!((agent.q_values(0)[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bootstrap_respects_mask() {
        let mut agent = QTableAgent::new(
            2,
            2,
            QTableConfig {
                alpha: 1.0,
                gamma: 1.0,
                ..Default::default()
            },
        );
        // Seed next-state values: Q(1,0)=10 (masked), Q(1,1)=1.
        agent.update(1, 0, 10.0, 1, true, None);
        agent.update(1, 1, 1.0, 1, true, None);
        agent.update(0, 0, 0.0, 1, false, Some(&[false, true]));
        assert!(
            (agent.q_values(0)[0] - 1.0).abs() < 1e-6,
            "bootstrapped through masked action"
        );
    }

    #[test]
    fn solves_chain_env() {
        let mut env = ChainEnv::new(5, 0.0);
        let mut agent = QTableAgent::new(
            env.state_count_public(),
            2,
            QTableConfig {
                alpha: 0.2,
                gamma: 0.95,
                epsilon: EpsilonSchedule::Linear {
                    start: 1.0,
                    end: 0.01,
                    steps: 2_000,
                },
                initial_q: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(11);
        agent.train(&mut env, 300, &mut rng);
        let mean = agent.evaluate(&mut env, 20, &mut rng);
        // Optimal: walk right 4 steps, reward 1.0 at the end.
        assert!(mean > 0.9, "mean greedy return {mean}");
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn invalid_alpha_panics() {
        let _ = QTableAgent::new(
            1,
            1,
            QTableConfig {
                alpha: 0.0,
                ..Default::default()
            },
        );
    }
}
