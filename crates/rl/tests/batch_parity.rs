//! Batched vs sequential decision parity: `act_greedy_batch` (one forward
//! pass for N gathered states, mask-aware per-row argmax) must return
//! bit-identical actions — and Q-rows — to N per-state `act_greedy` calls,
//! across random network shapes, random masks, and warm-buffer
//! interleavings that reshape the shared inference workspace between
//! batched and single-state use. The engine's per-slot batched decision
//! loop is built on exactly this guarantee.

use nn::tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::dqn::{DqnAgent, DqnConfig};
use rl::env::{masked_argmax, masked_max};
use rl::qnet::QNetworkConfig;
use rl::reinforce::{ReinforceAgent, ReinforceConfig};
use rl::schedule::EpsilonSchedule;

/// Random batch of states plus row-major masks (last action always valid,
/// mirroring the engine's always-valid reject action).
fn random_batch(
    rng: &mut StdRng,
    rows: usize,
    state_dim: usize,
    actions: usize,
) -> (Matrix, Vec<bool>) {
    let mut states = Matrix::default();
    states.begin_rows(rows, state_dim);
    let mut row = vec![0.0f32; state_dim];
    let mut masks = Vec::with_capacity(rows * actions);
    for _ in 0..rows {
        for v in row.iter_mut() {
            // One-hot-heavy, like encoder states: half the entries zero.
            *v = if rng.gen::<f32>() < 0.5 {
                0.0
            } else {
                rng.gen::<f32>() * 2.0 - 1.0
            };
        }
        states.push_row(&row);
        for a in 0..actions {
            masks.push(a + 1 == actions || rng.gen::<f32>() < 0.6);
        }
    }
    (states, masks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dqn_batch_selection_is_bit_identical(
        seed in 0u64..1_000,
        state_dim in 2usize..8,
        actions in 2usize..7,
        rows in 1usize..12,
        dueling in 0u8..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let network = if dueling == 1 {
            QNetworkConfig::Dueling { trunk: vec![8], head: 4 }
        } else {
            QNetworkConfig::Standard { hidden: vec![8, 6] }
        };
        let config = DqnConfig {
            network,
            epsilon: EpsilonSchedule::Constant(0.0),
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(config, state_dim, actions, &mut rng);
        let (states, masks) = random_batch(&mut rng, rows, state_dim, actions);

        // Warm-buffer interleaving: single-state calls reshape the shared
        // workspace before and between batched calls.
        let probe_mask = vec![true; actions];
        let _ = agent.act_greedy(states.row(0), &probe_mask);

        let mut batch_actions = Vec::new();
        agent.act_greedy_batch(&states, &masks, &mut batch_actions);
        prop_assert_eq!(batch_actions.len(), rows);

        for r in 0..rows {
            let mask = &masks[r * actions..(r + 1) * actions];
            let q_single = agent.q_values(states.row(r));
            let single = agent.act_greedy(states.row(r), mask);
            prop_assert_eq!(batch_actions[r], single, "row {} action diverged", r);
            // Q-rows of the batched forward must match the single-state
            // forward bit for bit (rows are independent under the kernels).
            let q_batch = agent.q_values_batch_into(&states).row(r).to_vec();
            prop_assert_eq!(&q_batch, &q_single, "row {} Q diverged", r);
        }

        // Second batched call after the single-state interleaving: the
        // reshaped workspace must not perturb selection.
        let mut second = Vec::new();
        agent.act_greedy_batch(&states, &masks, &mut second);
        prop_assert_eq!(batch_actions, second);
    }

    #[test]
    fn reinforce_batch_selection_is_bit_identical(
        seed in 0u64..1_000,
        state_dim in 2usize..8,
        actions in 2usize..7,
        rows in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(77));
        let config = ReinforceConfig { hidden: vec![8], ..ReinforceConfig::default() };
        let mut agent = ReinforceAgent::new(config, state_dim, actions, &mut rng);
        let (states, masks) = random_batch(&mut rng, rows, state_dim, actions);

        let probe_mask = vec![true; actions];
        let _ = agent.act_greedy(states.row(0), &probe_mask);

        let mut batch_actions = Vec::new();
        agent.act_greedy_batch(&states, &masks, &mut batch_actions);
        for r in 0..rows {
            let mask = &masks[r * actions..(r + 1) * actions];
            prop_assert_eq!(
                batch_actions[r],
                agent.act_greedy(states.row(r), mask),
                "row {} action diverged", r
            );
        }
    }

    #[test]
    fn nn_row_reductions_match_env_masked_argmax(
        seed in 0u64..1_000,
        rows in 1usize..10,
        cols in 1usize..9,
    ) {
        // The nn helpers the batch path selects through must agree with
        // rl's per-row masked_argmax/masked_max on every input, ties and
        // fully-masked rows included.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(3));
        let values = Matrix::from_fn(rows, cols, |_, _| {
            // Coarse quantization provokes ties.
            (rng.gen::<f32>() * 4.0).floor()
        });
        let masks: Vec<bool> = (0..rows * cols).map(|_| rng.gen::<f32>() < 0.5).collect();
        let mut arg = Vec::new();
        values.masked_argmax_rows_into(&masks, &mut arg);
        let mut max = Vec::new();
        values.masked_max_rows_into(&masks, &mut max);
        for r in 0..rows {
            let mask = &masks[r * cols..(r + 1) * cols];
            prop_assert_eq!(arg[r], masked_argmax(values.row(r), mask), "row {}", r);
            prop_assert_eq!(max[r], masked_max(values.row(r), mask), "row {}", r);
        }
    }
}
