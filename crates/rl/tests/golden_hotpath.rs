//! Golden-equality suite for the agent-level scratch paths: the
//! workspace-routed `act_greedy` / `q_values_into` and the batched learn
//! step must be bit-identical to the allocate-per-call forms, under heavy
//! interleaving (warm, resized scratch buffers are the point).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::dqn::{DqnAgent, DqnConfig};
use rl::env::masked_argmax;
use rl::qnet::{QNetWorkspace, QNetwork, QNetworkConfig};
use rl::schedule::EpsilonSchedule;
use rl::transition::Transition;

fn random_state(dim: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..dim)
        .map(|_| {
            if rng.gen::<f32>() < 0.4 {
                0.0
            } else {
                rng.gen_range(-1.0..1.0)
            }
        })
        .collect()
}

#[test]
fn act_greedy_matches_allocating_q_values_under_interleaving() {
    for network in [
        QNetworkConfig::Standard {
            hidden: vec![32, 16],
        },
        QNetworkConfig::Dueling {
            trunk: vec![16],
            head: 8,
        },
    ] {
        let mut rng = StdRng::seed_from_u64(2024);
        let config = DqnConfig {
            network,
            replay_capacity: 256,
            batch_size: 8,
            learn_start: 8,
            epsilon: EpsilonSchedule::Constant(0.0),
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(config, 9, 4, &mut rng);
        let mask = vec![true, false, true, true];
        for i in 0..60 {
            let s = random_state(9, &mut rng);
            // Allocating diagnostic path (row_vector + fresh matrices).
            let q_alloc = agent.q_values(&s);
            // Workspace path, with learn steps interleaved so the scratch
            // matrices keep getting resized between 1-row and batched use.
            let choice = agent.act_greedy(&s, &mask);
            assert_eq!(
                Some(choice),
                masked_argmax(&q_alloc, &mask),
                "workspace argmax diverged from allocating path at step {i}"
            );
            let t = Transition::new(s.clone(), choice, 0.5, s, i % 5 == 0);
            agent.observe(t, &mut rng);
        }
        assert!(
            agent.learn_steps() > 0,
            "interleaving must include learning"
        );
    }
}

#[test]
fn batched_forward_into_matches_allocating_forward() {
    let mut rng = StdRng::seed_from_u64(77);
    let net = QNetwork::new(
        &QNetworkConfig::Dueling {
            trunk: vec![12, 8],
            head: 6,
        },
        7,
        5,
        &mut rng,
    );
    let mut ws = QNetWorkspace::new();
    for &batch in &[1usize, 16, 3, 16, 1] {
        let states = nn::tensor::Matrix::from_fn(batch, 7, |_, _| rng.gen_range(-1.0..1.0));
        let expected = net.forward(&states);
        assert_eq!(*net.forward_into(&states, &mut ws), expected);
        // Single-row path against the matching batched row.
        let row = net.q_values_into(states.row(0), &mut ws).to_vec();
        assert_eq!(row, net.q_values(states.row(0)));
    }
}

/// One full train step through `learn()` is deterministic and independent
/// of scratch warm-up: a freshly cloned agent (cold buffers) and an agent
/// that has already run learn steps (warm, previously resized buffers)
/// must produce bit-identical Q-values when stepped with the same RNG.
#[test]
fn learn_step_is_bit_identical_between_cold_and_warm_scratch() {
    let mut rng = StdRng::seed_from_u64(5150);
    let config = DqnConfig {
        network: QNetworkConfig::Standard { hidden: vec![24] },
        replay_capacity: 128,
        batch_size: 16,
        learn_start: 16,
        epsilon: EpsilonSchedule::Constant(0.3),
        ..DqnConfig::default()
    };
    let mut warm = DqnAgent::new(config, 6, 3, &mut rng);
    for i in 0..40 {
        let s = random_state(6, &mut rng);
        let t = Transition::new(s.clone(), i % 3, -0.25 * (i % 4) as f32, s, i % 7 == 0);
        warm.observe(t, &mut rng);
    }
    // Clone carries parameters, replay, and optimizer state; its scratch is
    // whatever the clone produces — the learn result must not depend on it.
    let mut cold = warm.clone();
    let mut rng_a = StdRng::seed_from_u64(31337);
    let mut rng_b = rng_a.clone();
    let stats_warm = warm.learn(&mut rng_a);
    let stats_cold = cold.learn(&mut rng_b);
    assert_eq!(stats_warm.loss.to_bits(), stats_cold.loss.to_bits());
    assert_eq!(
        stats_warm.mean_abs_td.to_bits(),
        stats_cold.mean_abs_td.to_bits()
    );
    let probe = random_state(6, &mut StdRng::seed_from_u64(9));
    assert_eq!(warm.q_values(&probe), cold.q_values(&probe));
}
