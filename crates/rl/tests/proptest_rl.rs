//! Property tests for the RL toolkit: replay-buffer capacity/recency,
//! sum-tree consistency, schedule bounds and masked-argmax correctness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::prelude::*;
use rl::replay::sumtree::SumTree;

fn t(v: f32) -> Transition {
    Transition::new(vec![v], 0, v, vec![v], false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_replay_never_exceeds_capacity(
        capacity in 1usize..64,
        pushes in 0usize..300,
    ) {
        let mut buf = UniformReplay::new(capacity);
        for i in 0..pushes {
            buf.push(t(i as f32));
            prop_assert!(buf.len() <= capacity);
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
    }

    #[test]
    fn uniform_replay_keeps_most_recent(capacity in 1usize..32, extra in 1usize..50) {
        let mut buf = UniformReplay::new(capacity);
        let total = capacity + extra;
        for i in 0..total {
            buf.push(t(i as f32));
        }
        // Everything still stored must be from the most recent `capacity`.
        let mut rng = StdRng::seed_from_u64(0);
        let sample = buf.sample(64.min(buf.len() * 4), &mut rng);
        for tr in sample.transitions {
            prop_assert!(tr.reward as usize >= total - capacity);
        }
    }

    #[test]
    fn prioritized_replay_capacity_and_weights(
        capacity in 1usize..48,
        pushes in 1usize..200,
        batch in 1usize..16,
    ) {
        let mut buf = PrioritizedReplay::new(capacity, PerConfig::default());
        for i in 0..pushes {
            buf.push(t(i as f32));
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        let mut rng = StdRng::seed_from_u64(1);
        let sample = buf.sample(batch, &mut rng);
        prop_assert_eq!(sample.transitions.len(), batch);
        for &w in &sample.weights {
            prop_assert!(w > 0.0 && w <= 1.0 + 1e-5, "IS weight {w} out of (0,1]");
        }
    }

    #[test]
    fn sum_tree_total_equals_leaf_sum(
        priorities in proptest::collection::vec(0.0f32..100.0, 1..64)
    ) {
        let mut tree = SumTree::new(priorities.len());
        for (i, &p) in priorities.iter().enumerate() {
            tree.set(i, p);
        }
        let manual: f64 = priorities.iter().map(|&p| p as f64).sum();
        prop_assert!((tree.total() - manual).abs() < 1e-3);
        // Overwrites keep the invariant.
        let mut tree2 = tree.clone();
        for (i, &p) in priorities.iter().enumerate() {
            tree2.set(i, p * 0.5);
        }
        prop_assert!((tree2.total() - manual * 0.5).abs() < 1e-3);
    }

    #[test]
    fn sum_tree_prefix_lands_on_positive_leaf(
        priorities in proptest::collection::vec(0.0f32..10.0, 2..32),
        frac in 0.0f64..1.0,
    ) {
        prop_assume!(priorities.iter().any(|&p| p > 0.0));
        let mut tree = SumTree::new(priorities.len());
        for (i, &p) in priorities.iter().enumerate() {
            tree.set(i, p);
        }
        let idx = tree.find_prefix(frac * tree.total());
        prop_assert!(idx < priorities.len());
        prop_assert!(priorities[idx] > 0.0, "sampled a zero-priority leaf");
    }

    #[test]
    fn epsilon_schedules_always_in_unit_interval(
        start in 0.0f32..=1.0,
        end in 0.0f32..=1.0,
        steps in 1u64..100_000,
        probe in 0u64..1_000_000,
    ) {
        let schedules = [
            EpsilonSchedule::Constant(start),
            EpsilonSchedule::Linear { start, end, steps },
            EpsilonSchedule::Exponential { start, end, tau: steps as f64 },
        ];
        for s in schedules {
            let v = s.value(probe);
            prop_assert!((0.0..=1.0).contains(&v), "{s:?} -> {v}");
        }
    }

    #[test]
    fn masked_argmax_always_respects_mask(
        values in proptest::collection::vec(-100.0f32..100.0, 1..20),
        mask_seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(mask_seed);
        use rand::Rng as _;
        let mask: Vec<bool> = values.iter().map(|_| rng.gen_bool(0.7)).collect();
        match masked_argmax(&values, &mask) {
            Some(i) => {
                prop_assert!(mask[i]);
                for (j, (&v, &ok)) in values.iter().zip(mask.iter()).enumerate() {
                    if ok {
                        prop_assert!(values[i] >= v || i <= j);
                    }
                }
            }
            None => prop_assert!(mask.iter().all(|&m| !m)),
        }
    }

    #[test]
    fn qtable_update_converges_to_constant_reward(
        reward in -5.0f32..5.0,
        alpha_pct in 1u32..100,
    ) {
        let alpha = alpha_pct as f32 / 100.0;
        let mut agent = QTableAgent::new(1, 1, QTableConfig { alpha, ..Default::default() });
        for _ in 0..2_000 {
            agent.update(0, 0, reward, 0, true, None);
        }
        let q = agent.q_values(0)[0];
        prop_assert!((q - reward).abs() < 0.05, "Q={q} target={reward}");
    }
}
