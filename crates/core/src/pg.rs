//! Policy-gradient VNF manager — the REINFORCE-based alternative to the
//! DQN manager (the extension experiment).

use crate::action::PlacementAction;
use crate::config::Scenario;
use crate::drl::DrlPolicy;
use crate::metrics::RunSummary;
use crate::policy::{DecisionContext, DecisionFeedback, PlacementPolicy};
use crate::reward::RewardConfig;
use crate::sim::Simulation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::reinforce::{ReinforceAgent, ReinforceConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the policy-gradient manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PgManagerConfig {
    /// REINFORCE hyperparameters.
    pub reinforce: ReinforceConfig,
    /// Row label used in result tables.
    pub label: String,
}

impl Default for PgManagerConfig {
    fn default() -> Self {
        Self {
            reinforce: ReinforceConfig::default(),
            label: "drl-pg".into(),
        }
    }
}

/// REINFORCE placement policy: samples placements from a masked softmax
/// policy while training, acts on the mode during evaluation.
#[derive(Clone)]
pub struct PgPolicy {
    agent: ReinforceAgent,
    label: String,
    training: bool,
    /// Whether the engine may route greedy evaluation decisions through
    /// the batched-inference path (on by default).
    batched_inference: bool,
    episode_returns: Vec<f32>,
}

impl std::fmt::Debug for PgPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PgPolicy")
            .field("label", &self.label)
            .field("training", &self.training)
            .field("episodes", &self.episode_returns.len())
            .finish()
    }
}

impl PgPolicy {
    /// Builds the policy for the given observation/action sizes.
    pub fn new(
        config: PgManagerConfig,
        state_dim: usize,
        action_count: usize,
        rng: &mut StdRng,
    ) -> Self {
        let agent = ReinforceAgent::new(config.reinforce, state_dim, action_count, rng);
        Self {
            agent,
            label: config.label,
            training: true,
            batched_inference: true,
            episode_returns: Vec::new(),
        }
    }

    /// Read access to the wrapped agent.
    pub fn agent(&self) -> &ReinforceAgent {
        &self.agent
    }

    /// Enables/disables the batched greedy-inference path (enabled by
    /// default; selection is bit-identical either way).
    pub fn set_batched_inference(&mut self, enabled: bool) {
        self.batched_inference = enabled;
    }

    /// Drains accumulated per-episode returns.
    pub fn take_episode_returns(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.episode_returns)
    }
}

impl PlacementPolicy for PgPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, ctx: &DecisionContext, rng: &mut StdRng) -> PlacementAction {
        let index = if self.training {
            self.agent.act(&ctx.encoded_state, &ctx.mask, rng)
        } else {
            self.agent.act_greedy(&ctx.encoded_state, &ctx.mask)
        };
        if index + 1 == ctx.mask.len() {
            PlacementAction::Reject
        } else {
            PlacementAction::Place(edgenet::node::NodeId(index))
        }
    }

    fn observe(&mut self, feedback: DecisionFeedback<'_>, _rng: &mut StdRng) {
        if self.training {
            // The feedback borrows engine scratch; clone what the episode
            // record stores (evaluation mode copies nothing).
            self.agent.record_step(
                feedback.state.to_vec(),
                feedback.mask.to_vec(),
                feedback.action_index,
                feedback.reward,
            );
            if feedback.done {
                if let Some(r) = self.agent.end_episode() {
                    self.episode_returns.push(r);
                }
            }
        } else if feedback.done {
            let _ = feedback; // evaluation: nothing to learn
        }
    }

    fn supports_greedy_batch(&self) -> bool {
        !self.training && self.batched_inference
    }

    fn greedy_batch(&mut self, states: &nn::tensor::Matrix, masks: &[bool], out: &mut Vec<usize>) {
        self.agent.act_greedy_batch(states, masks, out);
    }

    fn set_training(&mut self, training: bool) {
        if self.training && !training {
            self.agent.abandon_episode();
        }
        self.training = training;
    }

    fn is_learning(&self) -> bool {
        self.training
    }
}

/// Trains a policy-gradient manager, mirroring [`crate::runner::train_drl`]
/// (validation-based checkpoint selection included).
pub fn train_pg(
    scenario: &Scenario,
    reward: RewardConfig,
    config: PgManagerConfig,
    passes: usize,
) -> (PgPolicy, Vec<f32>, Vec<RunSummary>) {
    assert!(passes > 0, "need at least one training pass");
    let probe = Simulation::new(scenario, reward);
    let state_dim = probe.encoder.dim();
    let action_count = probe.action_space.len();
    drop(probe);

    let mut rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0x1357_9BDF));
    let mut policy = PgPolicy::new(config, state_dim, action_count, &mut rng);
    policy.set_training(true);

    let mut best: Option<(f64, PgPolicy)> = None;
    let mut returns = Vec::new();
    let mut summaries = Vec::with_capacity(passes);
    for pass in 0..passes {
        let mut sim = Simulation::new(scenario, reward);
        let summary = sim.run(&mut policy, pass as u64);
        returns.extend(policy.take_episode_returns());
        summaries.push(summary);

        policy.set_training(false);
        let mut val_sim = Simulation::new(scenario, reward);
        let val = val_sim.run(&mut policy, 0xA11CE);
        policy.set_training(true);
        let objective =
            val.combined_objective(reward.alpha_latency as f64, reward.beta_cost as f64);
        if best.as_ref().is_none_or(|(b, _)| objective < *b) {
            best = Some((objective, policy.clone()));
        }
    }
    let mut policy = best.map(|(_, p)| p).unwrap_or(policy);
    policy.set_training(false);
    (policy, returns, summaries)
}

/// Convenience: both DRL managers trained on the same scenario, for the
/// algorithm-comparison experiment.
pub fn train_both(
    scenario: &Scenario,
    reward: RewardConfig,
    dqn: crate::drl::DrlManagerConfig,
    pg: PgManagerConfig,
    passes: usize,
) -> (DrlPolicy, PgPolicy) {
    let trained_dqn = crate::runner::train_drl(scenario, reward, dqn, passes);
    let (trained_pg, _, _) = train_pg(scenario, reward, pg, passes);
    (trained_dqn.policy, trained_pg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate_policy;

    fn fast_pg() -> PgManagerConfig {
        PgManagerConfig {
            reinforce: ReinforceConfig {
                hidden: vec![32],
                optimizer: nn::prelude::OptimizerConfig::adam(2e-3),
                ..ReinforceConfig::default()
            },
            label: "pg-test".into(),
        }
    }

    #[test]
    fn pg_trains_and_evaluates() {
        let mut scenario = Scenario::small_test();
        scenario.horizon_slots = 40;
        let reward = RewardConfig::default();
        let (mut policy, returns, summaries) = train_pg(&scenario, reward, fast_pg(), 2);
        assert_eq!(summaries.len(), 2);
        assert!(!returns.is_empty());
        assert!(policy.agent().episodes_trained() > 0);
        let result = evaluate_policy(&scenario, reward, &mut policy, 50);
        assert!(result.summary.total_arrivals > 0);
    }

    #[test]
    fn pg_beats_random_on_small_scenario() {
        let mut scenario = Scenario::small_test();
        scenario.horizon_slots = 50;
        let reward = RewardConfig::default();
        let (mut policy, _, _) = train_pg(&scenario, reward, fast_pg(), 3);
        let pg = evaluate_policy(&scenario, reward, &mut policy, 77);
        let mut random = crate::baselines::RandomPolicy;
        let rand_result = evaluate_policy(&scenario, reward, &mut random, 77);
        assert!(
            pg.summary.combined_objective(1.0, 1.0)
                < rand_result.summary.combined_objective(1.0, 1.0),
            "pg {:.2} vs random {:.2}",
            pg.summary.combined_objective(1.0, 1.0),
            rand_result.summary.combined_objective(1.0, 1.0)
        );
    }

    #[test]
    fn eval_mode_does_not_learn() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = PgPolicy::new(fast_pg(), 8, 3, &mut rng);
        policy.set_training(false);
        assert!(!policy.is_learning());
        let state = vec![0.0; 8];
        let mask = vec![true; 3];
        policy.observe(
            DecisionFeedback {
                state: &state,
                mask: &mask,
                action_index: 0,
                reward: 1.0,
                next_state: &state,
                next_mask: &mask,
                done: true,
            },
            &mut rng,
        );
        assert_eq!(policy.agent().episodes_trained(), 0);
    }
}
