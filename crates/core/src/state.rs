//! State encoding: the fixed-length feature vector the DQN observes.
//!
//! Layout (N = node count, C = chain-type count):
//!
//! | range | feature |
//! |-------|---------|
//! | `0..N` | per-node CPU utilization |
//! | `N..2N` | per-node memory utilization |
//! | `2N..3N` | per-node reusable-instance indicator for the *next* VNF (0/0.5/1: none / instance exists / instance with headroom) |
//! | `3N..4N` | one-hot source node of the pending request |
//! | `4N..5N` | one-hot "current" node (location of the previously placed VNF) |
//! | `5N..6N` | per-node normalized marginal latency of placing the next VNF there (1.0 if infeasible) |
//! | `6N..7N` | per-node normalized marginal monetary cost (1.0 if infeasible) |
//! | `7N..7N+C` | one-hot chain type |
//! | `+0` | chain position fraction (`pos / len`) |
//! | `+1` | remaining-VNF fraction (`(len-pos) / max_len`) |
//! | `+2` | remaining latency budget fraction |
//! | `+3` | slot-phase sine |
//! | `+4` | slot-phase cosine |
//! | `+5` | live-node fraction (network health) |
//! | `+6` | capacity-loss fraction (network health) |

use crate::policy::CandidateInfo;
use edgenet::capacity::CapacityLedger;
use edgenet::node::NodeId;
use edgenet::view::NetworkHealth;
use serde::{Deserialize, Serialize};
use sfc::chain::{ChainCatalog, ChainSpec};
use sfc::instance::InstancePool;
use sfc::vnf::VnfCatalog;

/// Normalization scale for the marginal-latency features (ms). Latencies
/// at or above this encode as `1.0`.
const MARGINAL_LATENCY_SCALE_MS: f64 = 200.0;

/// Normalization scale for the marginal-cost features (USD).
const MARGINAL_COST_SCALE_USD: f64 = 0.2;

/// Configuration of the state encoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateEncoderConfig {
    /// Number of nodes in the topology (including cloud).
    pub node_count: usize,
    /// Number of chain types in the catalog.
    pub chain_count: usize,
    /// Longest chain length (for the remaining-VNF normalization).
    pub max_chain_len: usize,
    /// Slots per diurnal period for the phase features (0 disables phase).
    pub phase_period_slots: u64,
}

/// Encodes simulation state into the DQN's observation vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateEncoder {
    config: StateEncoderConfig,
}

impl StateEncoder {
    /// Creates an encoder.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(config: StateEncoderConfig) -> Self {
        assert!(config.node_count > 0, "node count must be positive");
        assert!(config.chain_count > 0, "chain count must be positive");
        assert!(
            config.max_chain_len > 0,
            "max chain length must be positive"
        );
        Self { config }
    }

    /// Builds the encoder for a concrete catalog pair.
    pub fn for_catalogs(node_count: usize, chains: &ChainCatalog, phase_period_slots: u64) -> Self {
        Self::new(StateEncoderConfig {
            node_count,
            chain_count: chains.chain_count(),
            max_chain_len: chains.max_chain_len(),
            phase_period_slots,
        })
    }

    /// Dimension of the encoded vector.
    pub fn dim(&self) -> usize {
        7 * self.config.node_count + self.config.chain_count + 7
    }

    /// The encoder's configuration.
    pub fn config(&self) -> StateEncoderConfig {
        self.config
    }

    /// Encodes one decision point.
    ///
    /// * `chain`/`position` — pending request's chain and the index of the
    ///   VNF being placed next.
    /// * `at_node` — where the previous VNF landed (or the request source
    ///   for position 0).
    /// * `consumed_latency_ms` — latency already accumulated by earlier
    ///   hops of this chain.
    /// * `health` — aggregate network degradation (live-node and
    ///   capacity-loss fractions) so policies can condition on failures.
    /// * `candidates` — per-node placement candidates (marginal latency /
    ///   cost features); must have exactly `node_count` entries.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range for the configured sizes.
    #[allow(clippy::too_many_arguments)]
    pub fn encode(
        &self,
        ledger: &CapacityLedger,
        pool: &InstancePool,
        vnfs: &VnfCatalog,
        chain: &ChainSpec,
        position: usize,
        source: NodeId,
        at_node: NodeId,
        consumed_latency_ms: f64,
        max_instance_utilization: f64,
        slot: u64,
        health: NetworkHealth,
        candidates: &[CandidateInfo],
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.encode_into(
            ledger,
            pool,
            vnfs,
            chain,
            position,
            source,
            at_node,
            consumed_latency_ms,
            max_instance_utilization,
            slot,
            health,
            candidates,
            &mut out,
        );
        out
    }

    /// [`StateEncoder::encode`] into a caller-owned buffer: the vector is
    /// cleared and zero-filled to [`StateEncoder::dim`], so a warm buffer
    /// makes every encoding allocation-free. Identical writes in identical
    /// order — the result matches [`StateEncoder::encode`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range for the configured sizes.
    #[allow(clippy::too_many_arguments)]
    pub fn encode_into(
        &self,
        ledger: &CapacityLedger,
        pool: &InstancePool,
        vnfs: &VnfCatalog,
        chain: &ChainSpec,
        position: usize,
        source: NodeId,
        at_node: NodeId,
        consumed_latency_ms: f64,
        max_instance_utilization: f64,
        slot: u64,
        health: NetworkHealth,
        candidates: &[CandidateInfo],
        out: &mut Vec<f32>,
    ) {
        let n = self.config.node_count;
        assert!(
            source.0 < n && at_node.0 < n,
            "node out of range for encoder"
        );
        assert!(
            chain.id.0 < self.config.chain_count,
            "chain out of range for encoder"
        );
        assert!(
            position < chain.len(),
            "position {position} out of range for chain of {}",
            chain.len()
        );
        assert_eq!(candidates.len(), n, "candidate list must cover every node");

        let v = out;
        v.clear();
        v.resize(self.dim(), 0.0);
        // Per-node utilizations.
        for i in 0..n {
            let cap = ledger
                .capacity_of(NodeId(i))
                .expect("ledger covers topology");
            let used = ledger.used_of(NodeId(i)).expect("ledger covers topology");
            let cpu_u = if cap.cpu > 0.0 {
                (used.cpu / cap.cpu).min(1.0)
            } else {
                0.0
            };
            let mem_u = if cap.mem > 0.0 {
                (used.mem / cap.mem).min(1.0)
            } else {
                0.0
            };
            v[i] = cpu_u as f32;
            v[n + i] = mem_u as f32;
        }
        // Reusable-instance indicator for the next VNF type.
        let next_type = chain.vnfs[position];
        let mu = vnfs.get(next_type).service_rate_rps;
        for i in 0..n {
            let insts = pool.instances_of(next_type, NodeId(i));
            if insts.is_empty() {
                continue;
            }
            let has_headroom = insts.iter().any(|inst| {
                sfc::delay::admits_load(
                    mu,
                    inst.lambda_rps,
                    chain.arrival_rate_rps,
                    max_instance_utilization,
                )
            });
            v[2 * n + i] = if has_headroom { 1.0 } else { 0.5 };
        }
        // One-hots.
        v[3 * n + source.0] = 1.0;
        v[4 * n + at_node.0] = 1.0;
        // Candidate marginal features: what each node would cost right now.
        for (i, c) in candidates.iter().enumerate() {
            let (lat, cost) = if c.feasible {
                (
                    (c.marginal_latency_ms / MARGINAL_LATENCY_SCALE_MS).clamp(0.0, 1.0),
                    (c.marginal_cost_usd / MARGINAL_COST_SCALE_USD).clamp(0.0, 1.0),
                )
            } else {
                (1.0, 1.0)
            };
            v[5 * n + i] = lat as f32;
            v[6 * n + i] = cost as f32;
        }
        v[7 * n + chain.id.0] = 1.0;
        // Scalars.
        let base = 7 * n + self.config.chain_count;
        v[base] = position as f32 / chain.len() as f32;
        v[base + 1] = (chain.len() - position) as f32 / self.config.max_chain_len as f32;
        let remaining_budget = ((chain.latency_budget_ms - consumed_latency_ms)
            / chain.latency_budget_ms)
            .clamp(-1.0, 1.0);
        v[base + 2] = remaining_budget as f32;
        if self.config.phase_period_slots > 0 {
            let angle = 2.0 * std::f64::consts::PI * (slot % self.config.phase_period_slots) as f64
                / self.config.phase_period_slots as f64;
            v[base + 3] = angle.sin() as f32;
            v[base + 4] = angle.cos() as f32;
        }
        // Network health: 1.0 / 0.0 on a fully healthy network, so the
        // features are inert for static scenarios.
        v[base + 5] = health.live_node_fraction.clamp(0.0, 1.0) as f32;
        v[base + 6] = health.capacity_loss_fraction.clamp(0.0, 1.0) as f32;
    }

    /// A zero vector of the right dimension (terminal next-state filler).
    pub fn zero_state(&self) -> Vec<f32> {
        vec![0.0; self.dim()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenet::node::Resources;
    use sfc::chain::ChainId;

    struct Fixture {
        encoder: StateEncoder,
        ledger: CapacityLedger,
        pool: InstancePool,
        vnfs: VnfCatalog,
        chains: ChainCatalog,
    }

    fn fixture() -> Fixture {
        let vnfs = VnfCatalog::standard();
        let chains = ChainCatalog::standard(&vnfs);
        let encoder = StateEncoder::for_catalogs(4, &chains, 100);
        let ledger = CapacityLedger::from_capacities(vec![Resources::new(16.0, 32.0); 4]);
        Fixture {
            encoder,
            ledger,
            pool: InstancePool::new(),
            vnfs,
            chains,
        }
    }

    fn candidates(n: usize) -> Vec<CandidateInfo> {
        (0..n)
            .map(|i| CandidateInfo {
                node: NodeId(i),
                feasible: true,
                reuse_available: false,
                marginal_latency_ms: 20.0 * (i + 1) as f64,
                marginal_cost_usd: 0.02 * (i + 1) as f64,
                utilization: 0.0,
                is_cloud: false,
            })
            .collect()
    }

    #[test]
    fn dimension_formula() {
        let f = fixture();
        // 7*4 + 4 chains + 7 scalars = 39.
        assert_eq!(f.encoder.dim(), 39);
        assert_eq!(f.encoder.zero_state().len(), 39);
    }

    #[test]
    fn encodes_utilization_and_one_hots() {
        let mut f = fixture();
        f.ledger
            .allocate(NodeId(1), &Resources::new(8.0, 0.0))
            .unwrap();
        let chain = f.chains.get(ChainId(0)).clone();
        let v = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(2),
            NodeId(2),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        assert!((v[1] - 0.5).abs() < 1e-6, "cpu util of node 1");
        assert_eq!(v[0], 0.0);
        // Source one-hot at 3n+2, at-node one-hot at 4n+2, chain one-hot at 7n+0.
        assert_eq!(v[3 * 4 + 2], 1.0);
        assert_eq!(v[4 * 4 + 2], 1.0);
        assert_eq!(v[7 * 4], 1.0);
    }

    #[test]
    fn marginal_features_are_normalized_and_ordered() {
        let f = fixture();
        let chain = f.chains.get(ChainId(0)).clone();
        let v = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        // Latencies 20/40/60/80 ms over a 200 ms scale.
        for i in 0..4 {
            let expected = 20.0 * (i + 1) as f32 / 200.0;
            assert!(
                (v[5 * 4 + i] - expected).abs() < 1e-6,
                "latency feature {i}"
            );
        }
        // Costs 0.02·(i+1) over a 0.2 scale.
        assert!((v[6 * 4] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn infeasible_candidates_encode_as_one() {
        let f = fixture();
        let chain = f.chains.get(ChainId(0)).clone();
        let mut cands = candidates(4);
        cands[2].feasible = false;
        let v = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &cands,
        );
        assert_eq!(v[5 * 4 + 2], 1.0);
        assert_eq!(v[6 * 4 + 2], 1.0);
    }

    #[test]
    fn reuse_indicator_reflects_headroom() {
        let mut f = fixture();
        let chain = f.chains.get(ChainId(1)).clone(); // nat, firewall
        let nat = chain.vnfs[0];
        let id = f.pool.spawn(nat, NodeId(0), 0);
        let v = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        assert_eq!(v[2 * 4], 1.0, "fresh instance has headroom");
        // Saturate the instance.
        let mu = f.vnfs.get(nat).service_rate_rps;
        f.pool.add_flow(id, mu).unwrap();
        let v = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        assert_eq!(
            v[2 * 4],
            0.5,
            "saturated instance exists but lacks headroom"
        );
        // Other nodes have none.
        assert_eq!(v[2 * 4 + 1], 0.0);
    }

    #[test]
    fn budget_fraction_decreases_with_consumption() {
        let f = fixture();
        let chain = f.chains.get(ChainId(1)).clone();
        let base = 7 * 4 + 4;
        let fresh = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        let spent = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            1,
            NodeId(0),
            NodeId(0),
            chain.latency_budget_ms * 0.5,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        assert!((fresh[base + 2] - 1.0).abs() < 1e-6);
        assert!((spent[base + 2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn over_budget_clamps_to_minus_one() {
        let f = fixture();
        let chain = f.chains.get(ChainId(1)).clone();
        let base = 7 * 4 + 4;
        let v = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            1,
            NodeId(0),
            NodeId(0),
            chain.latency_budget_ms * 99.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        assert_eq!(v[base + 2], -1.0);
    }

    #[test]
    fn phase_features_rotate() {
        let f = fixture();
        let chain = f.chains.get(ChainId(0)).clone();
        let base = 7 * 4 + 4;
        let at0 = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        let at25 = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            25,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        assert!((at0[base + 3] - 0.0).abs() < 1e-6);
        assert!((at0[base + 4] - 1.0).abs() < 1e-6);
        assert!((at25[base + 3] - 1.0).abs() < 1e-6, "quarter period sine");
    }

    #[test]
    fn health_features_reflect_degradation() {
        let f = fixture();
        let chain = f.chains.get(ChainId(0)).clone();
        let base = 7 * 4 + 4;
        let degraded = NetworkHealth {
            live_node_fraction: 0.75,
            capacity_loss_fraction: 0.4,
        };
        let v = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            degraded,
            &candidates(4),
        );
        assert!((v[base + 5] - 0.75).abs() < 1e-6);
        assert!((v[base + 6] - 0.4).abs() < 1e-6);
        // Healthy networks encode as the inert (1, 0) pair.
        let healthy = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        assert_eq!(healthy[base + 5], 1.0);
        assert_eq!(healthy[base + 6], 0.0);
    }

    #[test]
    fn all_features_bounded() {
        let mut f = fixture();
        f.ledger
            .allocate(NodeId(0), &Resources::new(16.0, 32.0))
            .unwrap();
        let chain = f.chains.get(ChainId(3)).clone();
        let v = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            4,
            NodeId(3),
            NodeId(1),
            10.0,
            0.9,
            77,
            NetworkHealth::healthy(),
            &candidates(4),
        );
        for (i, &x) in v.iter().enumerate() {
            assert!((-1.0..=1.0).contains(&x), "feature {i} = {x} out of [-1,1]");
        }
    }

    #[test]
    #[should_panic(expected = "position")]
    fn bad_position_panics() {
        let f = fixture();
        let chain = f.chains.get(ChainId(1)).clone(); // length 2
        let _ = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            2,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(4),
        );
    }

    #[test]
    #[should_panic(expected = "candidate list")]
    fn wrong_candidate_count_panics() {
        let f = fixture();
        let chain = f.chains.get(ChainId(0)).clone();
        let _ = f.encoder.encode(
            &f.ledger,
            &f.pool,
            &f.vnfs,
            &chain,
            0,
            NodeId(0),
            NodeId(0),
            0.0,
            0.9,
            0,
            NetworkHealth::healthy(),
            &candidates(2),
        );
    }
}
