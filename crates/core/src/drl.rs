//! The DRL-based VNF manager — the paper's headline policy.
//!
//! Wraps a [`rl::dqn::DqnAgent`] behind the [`PlacementPolicy`] interface:
//! the simulation engine supplies encoded states and action masks, the
//! agent picks nodes ε-greedily while training and greedily during
//! evaluation, and every decision's shaped reward flows back into the
//! replay buffer.

use crate::action::PlacementAction;
use crate::policy::{DecisionContext, DecisionFeedback, PlacementPolicy};
use rand::rngs::StdRng;
use rl::dqn::{DqnAgent, DqnConfig};
use rl::transition::Transition;
use serde::{Deserialize, Serialize};

/// Configuration of the DRL manager (a thin wrapper over [`DqnConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrlManagerConfig {
    /// The underlying DQN hyperparameters.
    pub dqn: DqnConfig,
    /// Row label used in result tables.
    pub label: String,
}

impl Default for DrlManagerConfig {
    fn default() -> Self {
        Self {
            dqn: DqnConfig::default(),
            label: "drl-dqn".into(),
        }
    }
}

/// The DRL placement policy.
#[derive(Clone)]
pub struct DrlPolicy {
    agent: DqnAgent,
    label: String,
    training: bool,
    /// Whether the engine may route greedy evaluation decisions through
    /// the batched-inference path (on by default; the scalability figure's
    /// sequential reference column switches it off).
    batched_inference: bool,
    /// Return of the episode currently being accumulated.
    current_episode_return: f32,
    /// Completed placement-episode returns (drained by the harness for
    /// convergence curves).
    episode_returns: Vec<f32>,
}

impl std::fmt::Debug for DrlPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrlPolicy")
            .field("label", &self.label)
            .field("training", &self.training)
            .field("episodes", &self.episode_returns.len())
            .finish()
    }
}

impl DrlPolicy {
    /// Builds the policy for a `state_dim`-dimensional observation and
    /// `action_count` actions (nodes + reject).
    pub fn new(
        config: DrlManagerConfig,
        state_dim: usize,
        action_count: usize,
        rng: &mut StdRng,
    ) -> Self {
        let agent = DqnAgent::new(config.dqn, state_dim, action_count, rng);
        Self {
            agent,
            label: config.label,
            training: true,
            batched_inference: true,
            current_episode_return: 0.0,
            episode_returns: Vec::new(),
        }
    }

    /// Read access to the wrapped agent (diagnostics).
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// Enables/disables the batched greedy-inference path (enabled by
    /// default). Selection is bit-identical either way; disabling it
    /// forces the per-decision forward passes — the sequential reference
    /// the determinism tests and the scalability figure compare against.
    pub fn set_batched_inference(&mut self, enabled: bool) {
        self.batched_inference = enabled;
    }

    /// Drains accumulated per-episode returns (for convergence plots).
    pub fn take_episode_returns(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.episode_returns)
    }

    /// Number of completed placement episodes so far.
    pub fn completed_episodes(&self) -> usize {
        self.episode_returns.len()
    }
}

impl PlacementPolicy for DrlPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, ctx: &DecisionContext, rng: &mut StdRng) -> PlacementAction {
        let index = if self.training {
            self.agent.act(&ctx.encoded_state, &ctx.mask, rng)
        } else {
            self.agent.act_greedy(&ctx.encoded_state, &ctx.mask)
        };
        // Engine's ActionSpace layout: 0..n are nodes, n is reject.
        if index + 1 == ctx.mask.len() {
            PlacementAction::Reject
        } else {
            PlacementAction::Place(edgenet::node::NodeId(index))
        }
    }

    fn observe(&mut self, feedback: DecisionFeedback<'_>, rng: &mut StdRng) {
        self.current_episode_return += feedback.reward;
        if feedback.done {
            self.episode_returns.push(self.current_episode_return);
            self.current_episode_return = 0.0;
        }
        if self.training {
            // The feedback borrows engine scratch; clone exactly what the
            // replay buffer stores (evaluation mode copies nothing).
            let transition = Transition::with_mask(
                feedback.state.to_vec(),
                feedback.action_index,
                feedback.reward,
                feedback.next_state.to_vec(),
                feedback.done,
                feedback.next_mask.to_vec(),
            );
            self.agent.observe(transition, rng);
        }
    }

    fn supports_greedy_batch(&self) -> bool {
        !self.training && self.batched_inference
    }

    fn greedy_batch(&mut self, states: &nn::tensor::Matrix, masks: &[bool], out: &mut Vec<usize>) {
        self.agent.act_greedy_batch(states, masks, out);
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn is_learning(&self) -> bool {
        self.training
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rl::schedule::EpsilonSchedule;

    fn policy(action_count: usize) -> (DrlPolicy, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let config = DrlManagerConfig {
            dqn: DqnConfig {
                network: rl::qnet::QNetworkConfig::Standard { hidden: vec![8] },
                replay_capacity: 64,
                batch_size: 4,
                learn_start: 4,
                epsilon: EpsilonSchedule::Constant(0.0),
                ..DqnConfig::default()
            },
            label: "test-drl".into(),
        };
        let p = DrlPolicy::new(config, 4, action_count, &mut rng);
        (p, rng)
    }

    fn send_feedback(p: &mut DrlPolicy, rng: &mut StdRng, reward: f32, done: bool, actions: usize) {
        let state = vec![0.0; 4];
        let mask = vec![true; actions];
        p.observe(
            DecisionFeedback {
                state: &state,
                mask: &mask,
                action_index: 0,
                reward,
                next_state: &state,
                next_mask: &mask,
                done,
            },
            rng,
        );
    }

    #[test]
    fn episode_returns_accumulate_until_done() {
        let (mut p, mut rng) = policy(3);
        send_feedback(&mut p, &mut rng, -1.0, false, 3);
        send_feedback(&mut p, &mut rng, -0.5, false, 3);
        send_feedback(&mut p, &mut rng, 2.0, true, 3);
        send_feedback(&mut p, &mut rng, 1.0, true, 3);
        let returns = p.take_episode_returns();
        assert_eq!(returns.len(), 2);
        assert!((returns[0] - 0.5).abs() < 1e-6);
        assert!((returns[1] - 1.0).abs() < 1e-6);
        assert!(p.take_episode_returns().is_empty(), "drained");
    }

    #[test]
    fn eval_mode_stops_learning() {
        let (mut p, mut rng) = policy(3);
        p.set_training(false);
        assert!(!p.is_learning());
        for _ in 0..20 {
            send_feedback(&mut p, &mut rng, 0.0, true, 3);
        }
        assert_eq!(
            p.agent().replay_len(),
            0,
            "eval feedback must not enter replay"
        );
    }

    #[test]
    fn training_mode_fills_replay() {
        let (mut p, mut rng) = policy(3);
        for _ in 0..10 {
            send_feedback(&mut p, &mut rng, 0.0, true, 3);
        }
        assert_eq!(p.agent().replay_len(), 10);
    }
}
