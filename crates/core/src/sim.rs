//! The simulation engine: arrivals → placement decisions → flow
//! lifecycle → cost accounting, driven by a discrete-event timeline.
//!
//! One *placement episode* = all decisions for one request (one per VNF in
//! its chain, or a reject). The engine builds the decision context, asks
//! the policy, applies the action (instance reuse or spawn + capacity
//! allocation), shapes the reward, and delivers feedback — so DRL and
//! heuristic policies are driven through exactly the same code path.
//!
//! Two engines drive the lifecycle:
//!
//! * the **event engine** ([`Simulation::run_trace`], the default):
//!   departures, network events, retire checks, arrivals and policy
//!   decisions pop from a deterministic [`crate::timeline::EventQueue`];
//!   completed slots are billed lazily, so a mostly-idle trace costs
//!   ~O(events), not O(slots) of work. In *slot-compatibility* mode every
//!   event lands on a slot boundary and the run is bit-identical to the
//!   slot loop (pinned by `tests/event_slot_equivalence.rs`); the sparse
//!   entry point [`Simulation::run_events`] additionally resolves
//!   sub-slot lifetimes (`Request::duration_ms`) pro rata instead of
//!   rounding them up to whole slots.
//! * the **slot loop** ([`Simulation::advance_slot`] /
//!   [`Simulation::run_trace_slotted`]): the paper's original fixed-slot
//!   sweep, kept as the equivalence oracle and for step-by-step tests.

use crate::action::{ActionSpace, PlacementAction};
use crate::config::Scenario;
use crate::metrics::{MetricsCollector, RunSummary, SlotRecord};
use crate::policy::{CandidateInfo, DecisionContext, DecisionFeedback, PlacementPolicy};
use crate::reward::{RewardConfig, INFEASIBLE_LATENCY_MS};
use crate::state::StateEncoder;
use crate::telemetry::TelemetrySink;
use crate::timeline::{EventQueue, SimEvent, SimEventKind, SimTime};
use edgenet::capacity::CapacityLedger;
use edgenet::node::NodeId;
use edgenet::routing::RoutingTable;
use edgenet::topology::Topology;
use edgenet::view::{NetworkEvent, NetworkView};
use nn::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc::chain::{ChainCatalog, ChainSpec};
use sfc::delay::{admits_load, mm1_sojourn_ms};
use sfc::instance::{InstanceId, InstancePool};
use sfc::placement::{assignment_latency, ChainAssignment};
use sfc::request::{Request, RequestId};
use sfc::vnf::VnfCatalog;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use workload::metro::TimedRequest;
use workload::trace::{generate_trace, Trace};

/// Outcome of one request's placement episode.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementOutcome {
    /// The whole chain was placed.
    Accepted {
        /// End-to-end latency at admission (ms).
        latency_ms: f64,
        /// Whether the latency exceeded the chain's SLA budget.
        sla_violated: bool,
    },
    /// The request was rejected (by choice or by infeasibility).
    Rejected,
}

/// Which engine [`Simulation::drive`] uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RunEngine {
    /// The discrete-event engine (the default): departures, network
    /// events, retire checks, arrivals and policy decisions pop from a
    /// deterministic timeline; idle stretches are ~free.
    #[default]
    Event,
    /// The paper's original fixed-slot sweep, kept as the equivalence
    /// oracle. Only supports slot-compatible billing with `Generated` or
    /// `Trace` input and no telemetry.
    SlottedOracle,
}

/// How completed slots are billed by [`Simulation::drive`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BillingMode {
    /// Accounting matches the slot loop bit for bit (the default):
    /// lifetimes round up to whole slots, each active flow bills full
    /// slots. Requesting this after any sparse run on the same
    /// simulation is an error (the two accountings cannot mix).
    #[default]
    SlotCompat,
    /// Sparse accounting: sub-slot lifetimes ([`Request::duration_ms`])
    /// are billed pro rata. Permanently leaves slot compatibility —
    /// later `SlotCompat` runs on this simulation panic.
    Sparse,
}

/// How run metrics are retained by [`Simulation::drive`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MetricsMode {
    /// Keep whatever mode the collector is in (full per-slot records and
    /// per-admission latencies unless a previous run enabled streaming).
    #[default]
    Full,
    /// Fold observations into O(1)-memory streaming aggregates as they
    /// arrive (`RunSummary` percentiles come from a log-spaced
    /// histogram, ≈2% relative error). Once enabled the collector stays
    /// streaming; enabling it on a collector already holding full-mode
    /// data panics.
    Streaming,
}

/// How a slot's (or a same-timestamp group's) arrivals are decided by
/// [`Simulation::drive`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DecisionSemantics {
    /// The paper's sequential loop (the default): each decision sees
    /// every earlier placement of the same group. Batched inference is
    /// speculative here — rows are validated bitwise against the
    /// sequential state and die at the group's first acceptance.
    #[default]
    Sequential,
    /// Snapshot-commit: all of a group's decisions are planned against
    /// the FROZEN group-start world — chain positions advance as
    /// wavefronts, each answered by one fused `greedy_batch` forward —
    /// and then applied jointly in arrival order. Capacity conflicts
    /// (a later arrival planned onto capacity an earlier one consumed)
    /// fall back to rejection deterministically. Decision trajectories
    /// (and thus summaries) legitimately differ from `Sequential`; a
    /// given run stays bit-identical across engines, reruns and thread
    /// counts.
    SlotSnapshot,
}

/// Options for [`Simulation::drive`] — the one knob set selecting
/// engine, billing, metrics retention, seeding, horizon and telemetry.
///
/// ```
/// # use mano::prelude::*;
/// let mut sim = Simulation::new(&Scenario::small_test(), RewardConfig::default());
/// let mut policy = FirstFitPolicy;
/// let summary = sim.drive(RunInput::Generated, &mut policy, RunOptions::new());
/// assert_eq!(summary.slots, sim.scenario().horizon_slots);
/// ```
#[derive(Debug, Default)]
pub struct RunOptions<'t> {
    /// Which engine drives the run.
    pub engine: RunEngine,
    /// Slot-compatible vs sparse billing.
    pub billing: BillingMode,
    /// Full vs streaming metrics retention.
    pub metrics: MetricsMode,
    /// Sequential vs slot-snapshot decision semantics.
    pub semantics: DecisionSemantics,
    /// Decorrelates repeated runs (training passes) of one scenario.
    pub seed_offset: u64,
    /// Horizon in slots; defaults to the trace's own horizon for
    /// `Generated`/`Trace` input and the scenario's for the rest.
    pub horizon_slots: Option<u64>,
    /// Observer receiving per-flow lifecycle and per-slot snapshot
    /// hooks. Purely observational: the `RunSummary` is bit-identical
    /// with or without a sink. Event engine only.
    pub telemetry: Option<&'t mut TelemetrySink>,
}

impl<'t> RunOptions<'t> {
    /// The defaults: event engine, slot-compatible billing, full
    /// metrics, seed offset 0, input-derived horizon, no telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the slotted-oracle engine ([`RunEngine::SlottedOracle`]).
    pub fn slotted(mut self) -> Self {
        self.engine = RunEngine::SlottedOracle;
        self
    }

    /// Selects sparse billing ([`BillingMode::Sparse`]).
    pub fn sparse(mut self) -> Self {
        self.billing = BillingMode::Sparse;
        self
    }

    /// Selects streaming metrics retention ([`MetricsMode::Streaming`]).
    pub fn with_streaming_metrics(mut self) -> Self {
        self.metrics = MetricsMode::Streaming;
        self
    }

    /// Sets the decision semantics for the run.
    pub fn with_semantics(mut self, semantics: DecisionSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Selects snapshot-commit decisions
    /// ([`DecisionSemantics::SlotSnapshot`]).
    pub fn snapshot(self) -> Self {
        self.with_semantics(DecisionSemantics::SlotSnapshot)
    }

    /// Sets the seed offset decorrelating repeated runs.
    pub fn with_seed_offset(mut self, seed_offset: u64) -> Self {
        self.seed_offset = seed_offset;
        self
    }

    /// Overrides the horizon (in slots).
    pub fn with_horizon(mut self, horizon_slots: u64) -> Self {
        self.horizon_slots = Some(horizon_slots);
        self
    }

    /// Attaches a telemetry sink for the run.
    pub fn with_telemetry(mut self, sink: &'t mut TelemetrySink) -> Self {
        self.telemetry = Some(sink);
        self
    }
}

/// The workload input of one [`Simulation::drive`] call.
pub enum RunInput<'a> {
    /// Generate the scenario's own trace (what [`Simulation::run`] does).
    Generated,
    /// A pre-generated slot-resolution trace.
    Trace(&'a Trace),
    /// An explicit ms-resolution arrival schedule (need not be sorted).
    Events(&'a [TimedArrival]),
    /// A lazily generated ms-resolution arrival stream, pulled as
    /// simulation time advances — the whole trace is never materialized.
    /// Must yield arrivals in non-decreasing time order (checked).
    Stream(&'a mut dyn Iterator<Item = TimedArrival>),
}

impl std::fmt::Debug for RunInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunInput::Generated => write!(f, "Generated"),
            RunInput::Trace(t) => write!(f, "Trace({} requests)", t.requests.len()),
            RunInput::Events(e) => write!(f, "Events({})", e.len()),
            RunInput::Stream(_) => write!(f, "Stream(..)"),
        }
    }
}

/// A flow currently being served.
#[derive(Debug, Clone)]
struct ActiveFlow {
    request: Request,
    instances: Vec<InstanceId>,
    /// Per-instance arrival-rate contribution to release on departure.
    arrival_rate_rps: f64,
    /// End-to-end latency cached at admission (or at the last network
    /// event / re-placement). Avoids re-running `assignment_latency` for
    /// every active flow every slot; the approximation ignores queueing
    /// drift from flows joining/leaving shared instances between events.
    latency_ms: f64,
    /// Activation instant (ms): admission or re-placement time. The
    /// sparse engine bills the activation slot pro rata from here.
    activated_ms: u64,
    /// Scheduled departure instant (ms). The event engine uses it to
    /// ignore stale departure events left behind by a re-placement.
    departure_ms: u64,
}

/// Which engine owns lifecycle bookkeeping (where departures and retire
/// checks are registered). A simulation starts in slot mode and flips to
/// event mode on its first event-driven run; the two cannot interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineMode {
    Slot,
    Event,
}

/// Per-slot counters the event engine accumulates between billing
/// boundaries (the slot loop derives them inside `advance_slot`).
#[derive(Debug, Default, Clone, Copy)]
struct SlotCounters {
    arrivals: u32,
    accepted: u32,
    rejected: u32,
    sla_violations: u32,
    flows_disrupted: u32,
    flows_replaced: u32,
}

/// End-of-slot world snapshot, reused verbatim across billing boundaries
/// while no event has touched the world — what makes idle slots O(1).
/// Reuse is bit-safe: every field is a pure function of world state, and
/// unchanged state recomputes to identical bits anyway.
#[derive(Debug, Clone, Copy)]
struct CostCache {
    compute: f64,
    energy: f64,
    traffic: f64,
    mean_latency: f64,
    mean_utilization: f64,
    active_flows: u32,
    live_instances: u32,
    nodes_down: u32,
}

/// One slot's pending position-0 decisions, assembled for a single
/// batched forward pass: every arrival's encoded state as one row of a
/// long-lived matrix, the row-major action masks, and the policy's
/// selected action per row.
///
/// The batch is *speculative*: it is encoded against the world as it
/// stands when the slot's arrivals begin. Placing request `i` mutates the
/// world (capacity, instances), so request `i+1`'s actual decision state
/// may differ from its batch row. The engine therefore validates each row
/// bitwise against the sequential path's freshly-encoded state before
/// using the precomputed action, and falls back to a per-decision forward
/// on any mismatch — which is what keeps the batched run bit-identical to
/// the sequential one by construction (rows are independent under the
/// kernels, pinned by the batch-parity tests).
#[derive(Default)]
struct ArrivalBatch {
    /// Whether the batch holds this slot's arrivals (false = fall back).
    valid: bool,
    /// Encoded position-0 states, one arrival per row.
    states: Matrix,
    /// Row-major action masks (`action_space.len()` entries per row).
    masks: Vec<bool>,
    /// Policy-selected greedy action per row.
    actions: Vec<usize>,
    /// Batched-forward wall time amortized per row (decision-time metric).
    per_row_ns: u64,
    /// Row-staging buffers, reused across rows and slots.
    candidates: Vec<CandidateInfo>,
    mask_row: Vec<bool>,
    state_row: Vec<f32>,
}

/// One planned decision of a slot-snapshot group: the action the policy
/// chose against the frozen group-start world, the frozen step reward,
/// and the row of [`GroupPlans::states`] holding the frozen observation
/// (training feedback replays it during the apply phase).
#[derive(Debug, Clone, Copy)]
struct PlannedStep {
    /// Row into [`GroupPlans::states`] / [`GroupPlans::masks`].
    row: usize,
    /// Encoded action index (node or reject).
    action_index: usize,
    /// Step reward from the frozen candidates' marginals (the reject
    /// reward for a planned rejection; completion/conflict adjustments
    /// land at apply time).
    reward: f32,
}

/// One arrival's plan under [`DecisionSemantics::SlotSnapshot`].
#[derive(Debug, Default, Clone)]
struct ArrivalPlan {
    /// One planned decision per chain position reached (the last one is
    /// the reject decision when `rejected`).
    steps: Vec<PlannedStep>,
    /// The policy chose reject at the final planned position.
    rejected: bool,
}

/// A slot-snapshot group's jointly planned decisions: every arrival of
/// the group is decided against ONE frozen group-start world, chain
/// positions batched into wavefronts (one fused `greedy_batch` forward
/// per position when the policy batches — no speculation, nothing to
/// invalidate). The apply phase then replays the plans against the
/// mutating world in arrival order.
#[derive(Default)]
struct GroupPlans {
    /// Whether the plans cover the currently pending arrival group.
    valid: bool,
    /// Frozen observations, one row per planned decision.
    states: Matrix,
    /// Row-major masks parallel to `states` (`action_space.len()` each).
    masks: Vec<bool>,
    /// Per-arrival plans, indexed like the arrival group.
    plans: Vec<ArrivalPlan>,
    /// Wave staging: the wave's candidate marginal latencies/costs,
    /// row-major per live arrival (`node_count` entries each).
    cand_lat: Vec<f64>,
    cand_cost: Vec<f64>,
    /// Wave staging: arrival indices still planning, and the next wave's.
    live: Vec<usize>,
    next_live: Vec<usize>,
    /// Wave staging: per-arrival episode cursor (current node, latency
    /// consumed so far under the frozen marginals).
    at_nodes: Vec<NodeId>,
    consumed: Vec<f64>,
}

/// Engine-owned hot-path buffers, reused across every placement decision.
///
/// One decision used to allocate a candidate vector, an action mask, an
/// encoded state, and (for terminal feedback) a fresh all-true mask plus a
/// fresh zero state. All of those now live here: the recycled
/// [`DecisionContext`] carries the working buffers, `prev_state`/`prev_mask`
/// hold the previous decision's observation while its feedback is
/// delivered, and the terminal mask/state are computed once. Policies
/// receive borrowed views ([`DecisionFeedback`]) and clone only what they
/// store.
struct SimScratch {
    /// Recycled decision context (its vectors keep their allocations
    /// between episodes; the request/chain fields are refreshed per
    /// episode).
    ctx: Option<DecisionContext>,
    /// Previous decision's encoded state, swapped out before refilling.
    prev_state: Vec<f32>,
    /// Previous decision's action mask, swapped out before refilling.
    prev_mask: Vec<bool>,
    /// Cached all-true mask (terminal next-state filler).
    all_true: Vec<bool>,
    /// Cached zero state (terminal next-state filler).
    zero_state: Vec<f32>,
    /// The slot's speculative batched-inference state.
    batch: ArrivalBatch,
    /// The group's snapshot plans ([`DecisionSemantics::SlotSnapshot`]).
    plans: GroupPlans,
}

/// The simulation: all mutable world state plus immutable catalogs.
pub struct Simulation {
    /// The network: topology + routes + capacity behind one versioned,
    /// event-driven API.
    pub network: NetworkView,
    /// Live VNF instances.
    pub pool: InstancePool,
    /// VNF type catalog.
    pub vnfs: VnfCatalog,
    /// Chain catalog.
    pub chains: ChainCatalog,
    /// The action space (nodes + reject).
    pub action_space: ActionSpace,
    /// Observation encoder.
    pub encoder: StateEncoder,
    /// Reward shaping.
    pub reward_config: RewardConfig,
    scenario: Scenario,
    active: BTreeMap<u64, ActiveFlow>,
    departures: BTreeMap<u64, Vec<RequestId>>,
    /// Slot-keyed network events, consumed as slots advance.
    event_timeline: BTreeMap<u64, Vec<NetworkEvent>>,
    slot: u64,
    deployment_cost_this_slot: f64,
    metrics: MetricsCollector,
    scratch: SimScratch,
    /// Decisions served from the slot's batched forward (validated hits)
    /// or from a snapshot wave's fused forward.
    batched_decisions: u64,
    /// How arrival groups are decided ([`RunOptions::semantics`]).
    semantics: DecisionSemantics,
    /// Duration of one slot on the ms-resolution timeline.
    slot_ms: u64,
    /// Which engine drives lifecycle bookkeeping.
    mode: EngineMode,
    /// The discrete-event queue (event mode).
    queue: EventQueue,
    /// Rank of the event currently being handled (retire-check timing).
    current_rank: u8,
    /// The staged same-timestamp arrival group (event mode).
    pending_arrivals: Vec<Request>,
    /// Counters accumulated since the last billed slot (event mode).
    counters: SlotCounters,
    /// End-of-slot snapshot; `None` after any world mutation.
    cost_cache: Option<CostCache>,
    /// Traffic accrued by sub-slot departures inside the current slot.
    partial_traffic: f64,
    /// Slot-compatibility accounting: billing matches the slot loop bit
    /// for bit. [`Simulation::run_events`] clears it for sparse runs.
    slot_compat: bool,
    /// Slots with a RetireCheck already scheduled (dedupe).
    retire_checks: BTreeSet<u64>,
    /// Latest flow-activation instant (monotone). Sparse billing uses it
    /// to tell which slots' windows can still clip a flow's share.
    latest_activation_ms: u64,
    /// The observer attached for the duration of one [`Simulation::drive`]
    /// call (swapped in from the caller's sink and back out afterwards).
    /// Read-only with respect to the world: hooks never affect the run.
    telemetry: Option<TelemetrySink>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("slot", &self.slot)
            .field("active_flows", &self.active.len())
            .field("live_instances", &self.pool.len())
            .finish()
    }
}

impl Simulation {
    /// Builds a simulation for `scenario` with the given reward shaping and
    /// the standard VNF/chain catalogs.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid.
    pub fn new(scenario: &Scenario, reward_config: RewardConfig) -> Self {
        let vnfs = VnfCatalog::standard();
        let chains = ChainCatalog::standard(&vnfs);
        Self::with_catalogs(scenario, reward_config, vnfs, chains)
    }

    /// Builds a simulation with custom catalogs (e.g. the chain-length
    /// sweep's synthetic chains).
    ///
    /// # Panics
    ///
    /// Panics if the scenario is invalid or the workload's chain mix does
    /// not cover the chain catalog.
    pub fn with_catalogs(
        scenario: &Scenario,
        reward_config: RewardConfig,
        vnfs: VnfCatalog,
        chains: ChainCatalog,
    ) -> Self {
        scenario.validate();
        reward_config.validate();
        assert!(
            scenario.workload.chain_mix.len() <= chains.chain_count(),
            "workload chain mix references {} chains but the catalog has {}",
            scenario.workload.chain_mix.len(),
            chains.chain_count()
        );
        let mut topo_rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0x9E37_79B9));
        let topology = scenario
            .topology
            .build(&scenario.topology_builder, &mut topo_rng);
        let event_timeline =
            scenario
                .events
                .materialize(&topology, scenario.horizon_slots, scenario.seed);
        let network = NetworkView::new(topology);
        let action_space = ActionSpace::new(network.topology().node_count());
        let encoder = StateEncoder::for_catalogs(
            network.topology().node_count(),
            &chains,
            // Phase features keyed to the diurnal period when present.
            match scenario.workload.pattern {
                workload::pattern::LoadPattern::Diurnal { period, .. } => period,
                _ => 0,
            },
        );
        let scratch = SimScratch {
            ctx: None,
            prev_state: Vec::new(),
            prev_mask: Vec::new(),
            all_true: vec![true; action_space.len()],
            zero_state: encoder.zero_state(),
            batch: ArrivalBatch::default(),
            plans: GroupPlans::default(),
        };
        Self {
            network,
            pool: InstancePool::new(),
            vnfs,
            chains,
            action_space,
            encoder,
            reward_config,
            scenario: scenario.clone(),
            active: BTreeMap::new(),
            departures: BTreeMap::new(),
            event_timeline,
            slot: 0,
            deployment_cost_this_slot: 0.0,
            metrics: MetricsCollector::new(),
            scratch,
            batched_decisions: 0,
            semantics: DecisionSemantics::Sequential,
            slot_ms: ((scenario.slot_seconds * 1000.0).round() as u64).max(1),
            mode: EngineMode::Slot,
            queue: EventQueue::new(),
            current_rank: 0,
            pending_arrivals: Vec::new(),
            counters: SlotCounters::default(),
            cost_cache: None,
            partial_traffic: 0.0,
            slot_compat: true,
            retire_checks: BTreeSet::new(),
            latest_activation_ms: 0,
            telemetry: None,
        }
    }

    /// The scenario this simulation was built from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The network topology (shorthand for `network.topology()`).
    pub fn topology(&self) -> &Topology {
        self.network.topology()
    }

    /// Current routes over the live network (shorthand for
    /// `network.routes()`).
    pub fn routes(&self) -> &RoutingTable {
        self.network.routes()
    }

    /// Per-node resource accounting (shorthand for `network.ledger()`).
    pub fn ledger(&self) -> &CapacityLedger {
        self.network.ledger()
    }

    /// Current slot index.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The current instant on the ms timeline: the event clock in event
    /// mode, the current slot's start in slot mode.
    fn now_ms(&self) -> u64 {
        match self.mode {
            EngineMode::Slot => self.slot.saturating_mul(self.slot_ms),
            EngineMode::Event => self.queue.now().ms(),
        }
    }

    /// Number of currently active flows.
    pub fn active_flow_count(&self) -> usize {
        self.active.len()
    }

    /// Decisions served by the slot-level batched forward so far (each one
    /// replaced a per-decision network call after its speculative row
    /// validated bitwise against the sequential state).
    pub fn batched_decisions(&self) -> u64 {
        self.batched_decisions
    }

    /// Sets the decision semantics for subsequent arrival groups.
    /// [`Simulation::drive`] sets this from [`RunOptions::semantics`];
    /// the setter exists for callers driving `advance_slot` directly.
    pub fn set_decision_semantics(&mut self, semantics: DecisionSemantics) {
        self.semantics = semantics;
    }

    /// Candidate details for placing `chain[position]` when the traffic is
    /// currently at `at_node`.
    pub fn candidates(
        &self,
        chain: &ChainSpec,
        position: usize,
        at_node: NodeId,
    ) -> Vec<CandidateInfo> {
        let mut out = Vec::new();
        self.candidates_into(chain, position, at_node, &mut out);
        out
    }

    /// [`Simulation::candidates`] into a caller-owned vector (cleared
    /// first) — the allocation-free decision-loop form.
    pub fn candidates_into(
        &self,
        chain: &ChainSpec,
        position: usize,
        at_node: NodeId,
        out: &mut Vec<CandidateInfo>,
    ) {
        let vnf = self.vnfs.get(chain.vnfs[position]);
        let slot_s = self.scenario.slot_seconds;
        let topology = self.network.topology();
        let routes = self.network.routes();
        out.clear();
        out.extend((0..topology.node_count()).map(|i| {
            let node_id = NodeId(i);
            let node = topology.node(node_id);
            // A dead node can neither host nor be routed to; a dead
            // *source* leaves every candidate infeasible (the request
            // can only be rejected until the site recovers).
            let alive = self.network.node_alive(node_id) && self.network.node_alive(at_node);
            let reachable = alive && (at_node == node_id || routes.reachable(at_node, node_id));
            // Reuse: any instance of the type with queueing headroom.
            let reusable = self
                .pool
                .instances_of(vnf.id, node_id)
                .into_iter()
                .filter(|inst| {
                    admits_load(
                        vnf.service_rate_rps,
                        inst.lambda_rps,
                        chain.arrival_rate_rps,
                        self.scenario.max_instance_utilization,
                    )
                })
                .min_by(|a, b| a.lambda_rps.partial_cmp(&b.lambda_rps).unwrap());
            let can_spawn = self
                .network
                .ledger()
                .fits(node_id, &vnf.demand)
                .unwrap_or(false);
            let feasible = reachable && (reusable.is_some() || can_spawn);

            // Marginal latency: hop + fixed processing + queueing at the
            // post-admission arrival rate.
            let hop = if at_node == node_id {
                0.0
            } else {
                routes.latency_ms(at_node, node_id)
            };
            let lambda_after = reusable
                .map(|inst| inst.lambda_rps + chain.arrival_rate_rps)
                .unwrap_or(chain.arrival_rate_rps);
            let marginal_latency =
                hop + vnf.base_processing_ms + mm1_sojourn_ms(vnf.service_rate_rps, lambda_after);

            // Marginal cost: deployment + compute over the mean flow
            // lifetime (only when a new instance is needed) + hop
            // traffic over the lifetime.
            let mean_duration_s = self.scenario.workload.mean_duration_slots * slot_s;
            let mut cost = 0.0;
            if reusable.is_none() {
                cost += self.scenario.prices.deployment_cost;
                cost +=
                    self.scenario
                        .prices
                        .compute_cost_usd(node, vnf.demand.cpu, mean_duration_s);
            }
            let gb_lifetime = chain.traffic_gb * self.scenario.workload.mean_duration_slots;
            cost += self.scenario.prices.traffic_cost_usd(
                topology.node(at_node),
                node,
                if at_node == node_id { 0.0 } else { gb_lifetime },
            );

            CandidateInfo {
                node: node_id,
                feasible,
                reuse_available: reusable.is_some(),
                marginal_latency_ms: marginal_latency,
                marginal_cost_usd: cost,
                utilization: self.network.ledger().utilization_of(node_id).unwrap_or(1.0),
                is_cloud: node.is_cloud(),
            }
        }));
    }

    /// Builds the full decision context for one placement decision.
    pub fn decision_context(
        &self,
        request: &Request,
        chain: &ChainSpec,
        position: usize,
        at_node: NodeId,
        consumed_latency_ms: f64,
    ) -> DecisionContext {
        let mut ctx = DecisionContext {
            encoded_state: Vec::new(),
            mask: Vec::new(),
            request: request.clone(),
            chain: chain.clone(),
            position,
            at_node,
            consumed_latency_ms,
            candidates: Vec::new(),
            slot: self.slot,
        };
        self.fill_context(&mut ctx, chain, position, at_node, consumed_latency_ms);
        ctx
    }

    /// Refills a decision context's per-decision fields in place: the
    /// candidate list, the action mask, and the encoded state all land in
    /// the context's reusable buffers (identical values to a freshly built
    /// [`Simulation::decision_context`]). The episode-scoped fields
    /// (`request`, `chain`) are the caller's responsibility.
    fn fill_context(
        &self,
        ctx: &mut DecisionContext,
        chain: &ChainSpec,
        position: usize,
        at_node: NodeId,
        consumed_latency_ms: f64,
    ) {
        self.candidates_into(chain, position, at_node, &mut ctx.candidates);
        ctx.mask.clear();
        ctx.mask.extend(ctx.candidates.iter().map(|c| c.feasible));
        ctx.mask.push(true); // reject always valid
        self.encoder.encode_into(
            self.network.ledger(),
            &self.pool,
            &self.vnfs,
            chain,
            position,
            ctx.request.source,
            at_node,
            consumed_latency_ms,
            self.scenario.max_instance_utilization,
            self.slot,
            self.network.health(),
            &ctx.candidates,
            &mut ctx.encoded_state,
        );
        ctx.position = position;
        ctx.at_node = at_node;
        ctx.consumed_latency_ms = consumed_latency_ms;
        ctx.slot = self.slot;
    }

    /// Takes the recycled decision context (or builds a fresh one) and
    /// re-targets it at `request`/`chain`. `clone_from` reuses the chain
    /// buffers held from the previous episode.
    fn take_ctx(&mut self, request: &Request, chain: &ChainSpec) -> DecisionContext {
        match self.scratch.ctx.take() {
            Some(mut ctx) => {
                ctx.request = request.clone();
                ctx.chain.clone_from(chain);
                ctx
            }
            None => DecisionContext {
                encoded_state: Vec::new(),
                mask: Vec::new(),
                request: request.clone(),
                chain: chain.clone(),
                position: 0,
                at_node: request.source,
                consumed_latency_ms: 0.0,
                candidates: Vec::new(),
                slot: self.slot,
            },
        }
    }

    /// Commits one VNF placement at `node`: reuses an instance with
    /// headroom or spawns a new one. Returns
    /// `(instance, newly_spawned, deployment_cost_incurred)`.
    fn commit_step(
        &mut self,
        chain: &ChainSpec,
        position: usize,
        node: NodeId,
    ) -> (InstanceId, bool, f64) {
        let vnf = self.vnfs.get(chain.vnfs[position]).clone();
        let reusable = self
            .pool
            .instances_of(vnf.id, node)
            .into_iter()
            .filter(|inst| {
                admits_load(
                    vnf.service_rate_rps,
                    inst.lambda_rps,
                    chain.arrival_rate_rps,
                    self.scenario.max_instance_utilization,
                )
            })
            .min_by(|a, b| a.lambda_rps.partial_cmp(&b.lambda_rps).unwrap())
            .map(|inst| inst.id);
        match reusable {
            Some(id) => {
                self.pool
                    .add_flow(id, chain.arrival_rate_rps)
                    .expect("instance exists");
                (id, false, 0.0)
            }
            None => {
                self.network
                    .ledger_mut()
                    .allocate(node, &vnf.demand)
                    .expect("engine only commits feasible placements");
                let id = self.pool.spawn(vnf.id, node, self.slot);
                self.pool
                    .add_flow(id, chain.arrival_rate_rps)
                    .expect("just spawned");
                (id, true, self.scenario.prices.deployment_cost)
            }
        }
    }

    /// Rolls back partially placed steps of an abandoned episode.
    fn rollback(&mut self, chain: &ChainSpec, placed: &[(InstanceId, bool)]) {
        for &(id, spawned) in placed.iter().rev() {
            let (node, vnf_type) = {
                let inst = self.pool.get(id).expect("placed instance exists");
                (inst.node, inst.vnf_type)
            };
            self.pool
                .remove_flow(id, chain.arrival_rate_rps)
                .expect("flow was added");
            if spawned {
                self.pool.retire(id).expect("spawned instance is now idle");
                let demand = self.vnfs.get(vnf_type).demand;
                self.network
                    .ledger_mut()
                    .release(node, &demand)
                    .expect("node exists");
            } else {
                // A reused instance may have just gone idle again.
                self.note_possible_idle(id);
            }
        }
    }

    /// Assembles the slot's arrival batch — every arrival's position-0
    /// decision context encoded against the current world, one row each —
    /// and asks the policy for all greedy actions through ONE batched
    /// forward pass. Leaves the batch invalid (sequential fallback) when
    /// the policy cannot batch or a single arrival leaves nothing to
    /// amortize.
    fn prepare_arrival_batch(&mut self, arrivals: &[Request], policy: &mut dyn PlacementPolicy) {
        let mut batch = std::mem::take(&mut self.scratch.batch);
        batch.valid = false;
        if arrivals.len() >= 2 && policy.supports_greedy_batch() {
            batch.states.begin_rows(arrivals.len(), self.encoder.dim());
            batch.masks.clear();
            for request in arrivals {
                let chain = self.chains.get(request.chain);
                self.candidates_into(chain, 0, request.source, &mut batch.candidates);
                batch.mask_row.clear();
                batch
                    .mask_row
                    .extend(batch.candidates.iter().map(|c| c.feasible));
                batch.mask_row.push(true); // reject always valid
                self.encoder.encode_into(
                    self.network.ledger(),
                    &self.pool,
                    &self.vnfs,
                    chain,
                    0,
                    request.source,
                    request.source,
                    0.0,
                    self.scenario.max_instance_utilization,
                    self.slot,
                    self.network.health(),
                    &batch.candidates,
                    &mut batch.state_row,
                );
                batch.states.push_row(&batch.state_row);
                batch.masks.extend_from_slice(&batch.mask_row);
            }
            let started = Instant::now();
            policy.greedy_batch(&batch.states, &batch.masks, &mut batch.actions);
            batch.per_row_ns = started.elapsed().as_nanos() as u64 / arrivals.len() as u64;
            batch.valid = true;
        }
        self.scratch.batch = batch;
    }

    /// Runs one request's placement episode under `policy`.
    ///
    /// The decision loop is allocation-free at steady state: the decision
    /// context is recycled across episodes, its buffers are refilled in
    /// place per decision, and feedback borrows engine-owned buffers
    /// (policies clone only transitions they store).
    pub fn place_request(
        &mut self,
        request: &Request,
        policy: &mut dyn PlacementPolicy,
        rng: &mut StdRng,
    ) -> PlacementOutcome {
        self.place_request_hinted(request, policy, rng, None)
    }

    /// [`Simulation::place_request`] with an optional speculative hint:
    /// `hint = Some(row)` names this request's row in the slot's
    /// [`ArrivalBatch`]. The hint only short-circuits the *position-0*
    /// network call, and only after the row's encoded state and mask
    /// compare bit-equal to the freshly filled context — placements by
    /// earlier arrivals of the slot invalidate later rows, which then take
    /// the ordinary per-decision path. Action selection is therefore
    /// identical to the unhinted run in every case.
    fn place_request_hinted(
        &mut self,
        request: &Request,
        policy: &mut dyn PlacementPolicy,
        rng: &mut StdRng,
        hint: Option<usize>,
    ) -> PlacementOutcome {
        let chain = self.chains.get(request.chain).clone();
        let mut ctx = self.take_ctx(request, &chain);
        let mut placed: Vec<(InstanceId, bool)> = Vec::with_capacity(chain.len());
        let mut at_node = request.source;
        let mut consumed = 0.0f64;
        let mut deployment_cost = 0.0f64;
        // Feedback for the previous decision, waiting for its next-state.
        // The previous observation itself parks in `scratch.prev_*`.
        let mut pending: Option<(usize, f32)> = None;

        for position in 0..chain.len() {
            if pending.is_some() {
                // Keep the previous observation alive while the context
                // buffers are refilled for the new decision.
                std::mem::swap(&mut self.scratch.prev_state, &mut ctx.encoded_state);
                std::mem::swap(&mut self.scratch.prev_mask, &mut ctx.mask);
            }
            self.fill_context(&mut ctx, &chain, position, at_node, consumed);
            if let Some((action_index, reward)) = pending.take() {
                policy.observe(
                    DecisionFeedback {
                        state: &self.scratch.prev_state,
                        mask: &self.scratch.prev_mask,
                        action_index,
                        reward,
                        next_state: &ctx.encoded_state,
                        next_mask: &ctx.mask,
                        done: false,
                    },
                    rng,
                );
            }
            // Position-0 decisions may be served from the slot's batched
            // forward: if this request's speculative row still matches the
            // just-encoded context bit for bit, the batched selection IS
            // the sequential selection and the per-decision forward is
            // skipped. Any earlier placement this slot perturbs the
            // encoding and drops us back to `policy.decide`. The
            // speculation cost — this row's share of the batched forward
            // plus the bitwise validation — is charged to the decision
            // either way: a hit pays it *instead of* `decide`, a miss
            // pays it *on top*, so the decision-time metric reflects
            // wasted speculative work honestly.
            let (action_index, decision_ns) = {
                let mut speculation_ns = 0u64;
                let mut hit = None;
                if position == 0 && self.scratch.batch.valid {
                    if let Some(row) = hint {
                        let started = Instant::now();
                        let batch = &self.scratch.batch;
                        let stride = self.action_space.len();
                        let state_matches = ctx.encoded_state.len() == batch.states.cols()
                            && ctx
                                .encoded_state
                                .iter()
                                .zip(batch.states.row(row).iter())
                                .all(|(a, b)| a.to_bits() == b.to_bits());
                        let mask_matches =
                            ctx.mask[..] == batch.masks[row * stride..(row + 1) * stride];
                        if state_matches && mask_matches {
                            hit = Some(batch.actions[row]);
                        }
                        speculation_ns = batch.per_row_ns + started.elapsed().as_nanos() as u64;
                    }
                }
                match hit {
                    Some(served) => {
                        self.batched_decisions += 1;
                        (served, speculation_ns)
                    }
                    None => {
                        let started = Instant::now();
                        let action = policy.decide(&ctx, rng);
                        (
                            self.action_space.encode(action),
                            speculation_ns + started.elapsed().as_nanos() as u64,
                        )
                    }
                }
            };
            self.metrics.push_decision_time(decision_ns);
            assert!(
                ctx.mask[action_index],
                "policy {} chose masked action {action_index} at position {position}",
                policy.name()
            );
            let action = self.action_space.decode(action_index);

            match action {
                PlacementAction::Reject => {
                    self.rollback(&chain, &placed);
                    policy.observe(
                        DecisionFeedback {
                            state: &ctx.encoded_state,
                            mask: &ctx.mask,
                            action_index,
                            reward: self.reward_config.reject_reward(),
                            next_state: &self.scratch.zero_state,
                            next_mask: &self.scratch.all_true,
                            done: true,
                        },
                        rng,
                    );
                    self.scratch.ctx = Some(ctx);
                    let now = self.now_ms();
                    if let Some(sink) = self.telemetry.as_mut() {
                        sink.on_rejected(request.id, now);
                    }
                    return PlacementOutcome::Rejected;
                }
                PlacementAction::Place(node) => {
                    let info = &ctx.candidates[node.0];
                    let reward = self
                        .reward_config
                        .step_reward(info.marginal_latency_ms, info.marginal_cost_usd);
                    consumed += info.marginal_latency_ms;
                    let (instance, spawned, dep_cost) = self.commit_step(&chain, position, node);
                    deployment_cost += dep_cost;
                    placed.push((instance, spawned));
                    at_node = node;

                    if position + 1 == chain.len() {
                        let instances = placed.iter().map(|&(id, _)| id).collect();
                        let (latency_ms, sla_violated) =
                            self.admit_flow(request, &chain, instances, deployment_cost);
                        let terminal_reward =
                            reward + self.reward_config.completion_reward(sla_violated);
                        policy.observe(
                            DecisionFeedback {
                                state: &ctx.encoded_state,
                                mask: &ctx.mask,
                                action_index,
                                reward: terminal_reward,
                                next_state: &self.scratch.zero_state,
                                next_mask: &self.scratch.all_true,
                                done: true,
                            },
                            rng,
                        );
                        self.scratch.ctx = Some(ctx);
                        return PlacementOutcome::Accepted {
                            latency_ms,
                            sla_violated,
                        };
                    }
                    pending = Some((action_index, reward));
                }
            }
        }
        unreachable!("placement loop always returns from the final position");
    }

    /// Shared admission bookkeeping for a fully committed chain: measures
    /// the true end-to-end latency, activates the flow, schedules its
    /// departure, and records metrics/telemetry. Returns
    /// `(latency_ms, sla_violated)`.
    fn admit_flow(
        &mut self,
        request: &Request,
        chain: &ChainSpec,
        instances: Vec<InstanceId>,
        deployment_cost: f64,
    ) -> (f64, bool) {
        let assignment = ChainAssignment {
            request: request.id,
            instances,
        };
        let breakdown = assignment_latency(
            &assignment,
            chain,
            request.source,
            &self.pool,
            &self.vnfs,
            self.network.routes(),
        )
        .expect("committed assignment is valid");
        let latency_ms = breakdown.total_ms();
        let sla_violated = latency_ms > chain.latency_budget_ms;
        self.deployment_cost_this_slot += deployment_cost;
        // In slot mode flows activate on their arrival-slot boundary; in
        // event mode at the clock, which on a slot-boundary schedule is
        // the same instant.
        let activated_ms = match self.mode {
            EngineMode::Slot => request.arrival_slot * self.slot_ms,
            EngineMode::Event => self.queue.now().ms(),
        };
        let departure_ms = activated_ms
            + request
                .duration_ms
                .unwrap_or(request.duration_slots as u64 * self.slot_ms);
        self.active.insert(
            request.id.0,
            ActiveFlow {
                request: request.clone(),
                instances: assignment.instances,
                arrival_rate_rps: chain.arrival_rate_rps,
                latency_ms: if latency_ms.is_finite() {
                    latency_ms
                } else {
                    INFEASIBLE_LATENCY_MS
                },
                activated_ms,
                departure_ms,
            },
        );
        self.latest_activation_ms = self.latest_activation_ms.max(activated_ms);
        match self.mode {
            EngineMode::Slot => self
                .departures
                .entry(request.departure_slot())
                .or_default()
                .push(request.id),
            EngineMode::Event => self.queue.schedule_at(
                SimTime::from_ms(departure_ms),
                SimEvent::FlowDeparture {
                    request: request.id,
                },
            ),
        }
        self.metrics.push_admission_latency(latency_ms);
        if let Some(sink) = self.telemetry.as_mut() {
            sink.on_admitted(request.id, activated_ms, latency_ms);
        }
        (latency_ms, sla_violated)
    }

    /// Whether `chain[position]` can commit at `node` right now with
    /// traffic arriving from `at_node` — the snapshot apply-phase
    /// re-check, mirroring the feasibility rule of
    /// [`Simulation::candidates_into`] (reachability plus
    /// reuse-or-spawn headroom) against the *current* world.
    fn step_feasible(
        &self,
        chain: &ChainSpec,
        position: usize,
        at_node: NodeId,
        node: NodeId,
    ) -> bool {
        let vnf = self.vnfs.get(chain.vnfs[position]);
        let alive = self.network.node_alive(node) && self.network.node_alive(at_node);
        if !alive || (at_node != node && !self.network.routes().reachable(at_node, node)) {
            return false;
        }
        let reusable = self
            .pool
            .instances_of(vnf.id, node)
            .into_iter()
            .any(|inst| {
                admits_load(
                    vnf.service_rate_rps,
                    inst.lambda_rps,
                    chain.arrival_rate_rps,
                    self.scenario.max_instance_utilization,
                )
            });
        reusable
            || self
                .network
                .ledger()
                .fits(node, &vnf.demand)
                .unwrap_or(false)
    }

    /// Plans a slot-snapshot arrival group: every chain position of every
    /// arrival is decided against the FROZEN world as it stands at the
    /// group's start — nothing commits here. Positions advance as a
    /// wavefront: all live arrivals' position-`p` decisions are assembled
    /// into one batch and answered by a single fused `greedy_batch`
    /// forward (or per-decision `decide` calls in arrival order for
    /// policies that cannot batch). Whole batches survive by
    /// construction — no speculation, nothing invalidates a row.
    fn plan_group_snapshot(
        &mut self,
        arrivals: &[Request],
        policy: &mut dyn PlacementPolicy,
        rng: &mut StdRng,
    ) {
        let mut plans = std::mem::take(&mut self.scratch.plans);
        plans.valid = false;
        for plan in plans.plans.iter_mut() {
            plan.steps.clear();
            plan.rejected = false;
        }
        plans
            .plans
            .resize_with(arrivals.len(), ArrivalPlan::default);
        if arrivals.is_empty() {
            plans.valid = true;
            self.scratch.plans = plans;
            return;
        }

        let stride = self.action_space.len();
        let node_count = self.network.topology().node_count();
        let dim = self.encoder.dim();
        let total_rows: usize = arrivals
            .iter()
            .map(|r| self.chains.get(r.chain).len())
            .sum();
        plans.states.begin_rows(total_rows, dim);
        plans.masks.clear();
        plans.live.clear();
        plans.live.extend(0..arrivals.len());
        plans.at_nodes.clear();
        plans.at_nodes.extend(arrivals.iter().map(|r| r.source));
        plans.consumed.clear();
        plans.consumed.resize(arrivals.len(), 0.0);

        let use_batch = policy.supports_greedy_batch();
        let mut batch = std::mem::take(&mut self.scratch.batch);
        batch.valid = false;
        let mut position = 0usize;
        while !plans.live.is_empty() {
            batch.states.begin_rows(plans.live.len(), dim);
            batch.masks.clear();
            batch.actions.clear();
            plans.cand_lat.clear();
            plans.cand_cost.clear();
            if use_batch {
                // Assemble the whole wave, then ONE fused forward.
                for w in 0..plans.live.len() {
                    let i = plans.live[w];
                    let request = &arrivals[i];
                    let chain = self.chains.get(request.chain);
                    self.candidates_into(chain, position, plans.at_nodes[i], &mut batch.candidates);
                    batch.mask_row.clear();
                    batch
                        .mask_row
                        .extend(batch.candidates.iter().map(|c| c.feasible));
                    batch.mask_row.push(true); // reject always valid
                    self.encoder.encode_into(
                        self.network.ledger(),
                        &self.pool,
                        &self.vnfs,
                        chain,
                        position,
                        request.source,
                        plans.at_nodes[i],
                        plans.consumed[i],
                        self.scenario.max_instance_utilization,
                        self.slot,
                        self.network.health(),
                        &batch.candidates,
                        &mut batch.state_row,
                    );
                    batch.states.push_row(&batch.state_row);
                    batch.masks.extend_from_slice(&batch.mask_row);
                    plans
                        .cand_lat
                        .extend(batch.candidates.iter().map(|c| c.marginal_latency_ms));
                    plans
                        .cand_cost
                        .extend(batch.candidates.iter().map(|c| c.marginal_cost_usd));
                }
                let started = Instant::now();
                policy.greedy_batch(&batch.states, &batch.masks, &mut batch.actions);
                let per_row_ns = started.elapsed().as_nanos() as u64 / plans.live.len() as u64;
                for _ in 0..plans.live.len() {
                    self.metrics.push_decision_time(per_row_ns);
                }
                self.batched_decisions += plans.live.len() as u64;
            } else {
                // Unbatched policies see the same frozen contexts,
                // decided in arrival order.
                for w in 0..plans.live.len() {
                    let i = plans.live[w];
                    let request = arrivals[i].clone();
                    let chain = self.chains.get(request.chain).clone();
                    let mut ctx = self.take_ctx(&request, &chain);
                    self.fill_context(
                        &mut ctx,
                        &chain,
                        position,
                        plans.at_nodes[i],
                        plans.consumed[i],
                    );
                    let started = Instant::now();
                    let action = policy.decide(&ctx, rng);
                    self.metrics
                        .push_decision_time(started.elapsed().as_nanos() as u64);
                    batch.states.push_row(&ctx.encoded_state);
                    batch.masks.extend_from_slice(&ctx.mask);
                    batch.actions.push(self.action_space.encode(action));
                    plans
                        .cand_lat
                        .extend(ctx.candidates.iter().map(|c| c.marginal_latency_ms));
                    plans
                        .cand_cost
                        .extend(ctx.candidates.iter().map(|c| c.marginal_cost_usd));
                    self.scratch.ctx = Some(ctx);
                }
            }
            // Record the wave and advance the surviving episodes.
            plans.next_live.clear();
            for w in 0..plans.live.len() {
                let i = plans.live[w];
                let action_index = batch.actions[w];
                let row = plans.states.rows();
                plans.states.push_row(batch.states.row(w));
                plans
                    .masks
                    .extend_from_slice(&batch.masks[w * stride..(w + 1) * stride]);
                assert!(
                    plans.masks[row * stride + action_index],
                    "policy {} chose masked action {action_index} at position {position}",
                    policy.name()
                );
                match self.action_space.decode(action_index) {
                    PlacementAction::Reject => {
                        plans.plans[i].steps.push(PlannedStep {
                            row,
                            action_index,
                            reward: self.reward_config.reject_reward(),
                        });
                        plans.plans[i].rejected = true;
                    }
                    PlacementAction::Place(node) => {
                        let lat = plans.cand_lat[w * node_count + node.0];
                        let cost = plans.cand_cost[w * node_count + node.0];
                        plans.plans[i].steps.push(PlannedStep {
                            row,
                            action_index,
                            reward: self.reward_config.step_reward(lat, cost),
                        });
                        plans.consumed[i] += lat;
                        plans.at_nodes[i] = node;
                        if position + 1 < self.chains.get(arrivals[i].chain).len() {
                            plans.next_live.push(i);
                        }
                    }
                }
            }
            std::mem::swap(&mut plans.live, &mut plans.next_live);
            position += 1;
        }
        plans.valid = true;
        self.scratch.batch = batch;
        self.scratch.plans = plans;
    }

    /// Applies one arrival's snapshot plan against the now-mutating world
    /// (arrival order = apply order). Every planned placement is
    /// re-checked cheaply before committing: if a prior arrival of the
    /// group consumed the capacity (or the node can no longer host), the
    /// whole chain rolls back and the request is rejected — the
    /// deterministic conflict-resolution contract. For learning policies
    /// feedback replays the frozen observations (frozen policies skip
    /// the replay — they discard it); the terminal reward reflects the applied
    /// outcome (real end-to-end latency for an admission, the reject
    /// reward for a planned rejection or a conflict). Planned decisions
    /// past a conflict were never applied, so they get no feedback.
    fn apply_planned_request(
        &mut self,
        index: usize,
        request: &Request,
        policy: &mut dyn PlacementPolicy,
        rng: &mut StdRng,
    ) -> PlacementOutcome {
        let plans = std::mem::take(&mut self.scratch.plans);
        debug_assert!(plans.valid, "apply without a planned group");
        let plan = &plans.plans[index];
        let chain = self.chains.get(request.chain).clone();
        let stride = self.action_space.len();
        let mut placed: Vec<(InstanceId, bool)> = Vec::with_capacity(plan.steps.len());
        let mut deployment_cost = 0.0f64;
        let mut at_node = request.source;
        let mut conflict_at: Option<usize> = None;
        for (p, step) in plan.steps.iter().enumerate() {
            // A planned Reject is always the final step; nothing commits.
            if let PlacementAction::Place(node) = self.action_space.decode(step.action_index) {
                if self.step_feasible(&chain, p, at_node, node) {
                    let (instance, spawned, dep_cost) = self.commit_step(&chain, p, node);
                    deployment_cost += dep_cost;
                    placed.push((instance, spawned));
                    at_node = node;
                } else {
                    conflict_at = Some(p);
                    break;
                }
            }
        }

        let accepted = conflict_at.is_none() && !plan.rejected;
        // The step carrying the episode's terminal feedback.
        let last = conflict_at.unwrap_or(plan.steps.len() - 1);
        let (outcome, terminal_reward) = if accepted {
            let instances = placed.iter().map(|&(id, _)| id).collect();
            let (latency_ms, sla_violated) =
                self.admit_flow(request, &chain, instances, deployment_cost);
            (
                PlacementOutcome::Accepted {
                    latency_ms,
                    sla_violated,
                },
                plan.steps[last].reward + self.reward_config.completion_reward(sla_violated),
            )
        } else {
            self.rollback(&chain, &placed);
            let now = self.now_ms();
            if let Some(sink) = self.telemetry.as_mut() {
                sink.on_rejected(request.id, now);
            }
            let reward = if conflict_at.is_none() {
                plan.steps[last].reward // the policy's own rejection
            } else {
                self.reward_config.reject_reward() // conflict fallback
            };
            (PlacementOutcome::Rejected, reward)
        };

        // Feedback replay costs a slice-and-struct walk per step; frozen
        // policies (`!is_learning`) discard it, so skip the walk — this
        // is the serving layer's hot path, where every planned row passes
        // through here.
        let replay_steps = if policy.is_learning() { last + 1 } else { 0 };
        for p in 0..replay_steps {
            let step = &plan.steps[p];
            let state = plans.states.row(step.row);
            let mask = &plans.masks[step.row * stride..(step.row + 1) * stride];
            if p == last {
                policy.observe(
                    DecisionFeedback {
                        state,
                        mask,
                        action_index: step.action_index,
                        reward: terminal_reward,
                        next_state: &self.scratch.zero_state,
                        next_mask: &self.scratch.all_true,
                        done: true,
                    },
                    rng,
                );
            } else {
                let next = &plan.steps[p + 1];
                policy.observe(
                    DecisionFeedback {
                        state,
                        mask,
                        action_index: step.action_index,
                        reward: step.reward,
                        next_state: plans.states.row(next.row),
                        next_mask: &plans.masks[next.row * stride..(next.row + 1) * stride],
                        done: false,
                    },
                    rng,
                );
            }
        }
        self.scratch.plans = plans;
        outcome
    }

    /// Processes departures scheduled for the current slot.
    fn process_departures(&mut self) {
        let Some(ids) = self.departures.remove(&self.slot) else {
            return;
        };
        for id in ids {
            let Some(flow) = self.active.remove(&id.0) else {
                continue;
            };
            for inst_id in flow.instances {
                self.pool
                    .remove_flow(inst_id, flow.arrival_rate_rps)
                    .expect("active flow's instance exists");
            }
        }
    }

    /// Retires instances idle longer than the scenario grace period.
    /// Returns how many were retired.
    fn retire_idle_instances(&mut self) -> usize {
        let ids = self
            .pool
            .idle_instances(self.slot, self.scenario.idle_retire_slots);
        let retired = ids.len();
        for id in ids {
            let (node, vnf_type) = {
                let inst = self.pool.get(id).expect("listed instance exists");
                (inst.node, inst.vnf_type)
            };
            self.pool.retire(id).expect("idle instance retires");
            let demand = self.vnfs.get(vnf_type).demand;
            self.network
                .ledger_mut()
                .release(node, &demand)
                .expect("node exists");
        }
        retired
    }

    /// Applies the network events scheduled for the current slot. Node
    /// failures evict every instance on the dead node and tear the flows
    /// they served out of the active set; flows whose instances survived
    /// but whose route was severed (a partition) are stranded and torn
    /// out too. All disrupted flows are returned for re-placement.
    /// Surviving flows get their cached latencies refreshed against the
    /// changed routes.
    fn apply_due_events(&mut self) -> Vec<ActiveFlow> {
        let Some(events) = self.event_timeline.remove(&self.slot) else {
            return Vec::new();
        };
        self.apply_network_events(&events)
    }

    /// [`Simulation::apply_due_events`] body, shared with the event
    /// engine (which drains its own queue instead of the slot timeline).
    fn apply_network_events(&mut self, events: &[NetworkEvent]) -> Vec<ActiveFlow> {
        let mut downed: Vec<NodeId> = Vec::new();
        for event in events {
            self.network.apply(event);
            if let Some(node) = event.downed_node() {
                downed.push(node);
            }
        }
        // Evict every instance hosted on a dead node and return its
        // capacity (the ledger stays consistent for eventual recovery).
        let mut dead_instances: BTreeSet<InstanceId> = BTreeSet::new();
        for &node in &downed {
            for inst in self.pool.evict_node(node) {
                let demand = self.vnfs.get(inst.vnf_type).demand;
                self.network
                    .ledger_mut()
                    .release(node, &demand)
                    .expect("node exists");
                dead_instances.insert(inst.id);
            }
        }
        // Tear disrupted flows out of the active set, releasing their load
        // on surviving instances (which may then retire as idle).
        let mut disrupted = Vec::new();
        if !dead_instances.is_empty() {
            let hit: Vec<u64> = self
                .active
                .iter()
                .filter(|(_, f)| f.instances.iter().any(|i| dead_instances.contains(i)))
                .map(|(&id, _)| id)
                .collect();
            for id in hit {
                let flow = self.active.remove(&id).expect("listed flow exists");
                for inst_id in &flow.instances {
                    if !dead_instances.contains(inst_id) {
                        self.pool
                            .remove_flow(*inst_id, flow.arrival_rate_rps)
                            .expect("surviving instance exists");
                        self.note_possible_idle(*inst_id);
                    }
                }
                disrupted.push(flow);
            }
        }
        // Routes (and queueing on surviving instances) changed: refresh
        // the cached end-to-end latency of every surviving flow, and
        // strand the ones whose path no longer exists.
        for id in self.refresh_cached_latencies() {
            let flow = self.active.remove(&id).expect("listed flow exists");
            for inst_id in &flow.instances {
                self.pool
                    .remove_flow(*inst_id, flow.arrival_rate_rps)
                    .expect("stranded flow's instances survived");
                self.note_possible_idle(*inst_id);
            }
            disrupted.push(flow);
        }
        disrupted
    }

    /// Recomputes every active flow's cached latency against the current
    /// network (only called after events — the per-slot hot path reads the
    /// cache instead of re-evaluating assignments). Returns the ids of
    /// flows whose assignment is no longer routable at all (stranded by a
    /// partition); an overloaded-but-routable flow is *not* stranded, it
    /// just carries the [`INFEASIBLE_LATENCY_MS`] sentinel.
    fn refresh_cached_latencies(&mut self) -> Vec<u64> {
        let mut updates: Vec<(u64, f64)> = Vec::new();
        let mut stranded: Vec<u64> = Vec::new();
        for (&id, flow) in &self.active {
            let chain = self.chains.get(flow.request.chain);
            let assignment = ChainAssignment {
                request: flow.request.id,
                instances: flow.instances.clone(),
            };
            match assignment_latency(
                &assignment,
                chain,
                flow.request.source,
                &self.pool,
                &self.vnfs,
                self.network.routes(),
            ) {
                Ok(breakdown) => {
                    let t = breakdown.total_ms();
                    updates.push((
                        id,
                        if t.is_finite() {
                            t
                        } else {
                            INFEASIBLE_LATENCY_MS
                        },
                    ));
                }
                // The only reachable error here is `Unroutable`: the
                // instances exist and match the chain (they were
                // validated at admission), so an error means the network
                // no longer connects them.
                Err(_) => stranded.push(id),
            }
        }
        for (id, latency) in updates {
            self.active.get_mut(&id).expect("listed flow").latency_ms = latency;
        }
        stranded
    }

    /// Per-slot operational costs plus the mean active-flow latency, in a
    /// single pass over the active set (cost's traffic term and the
    /// latency average used to be two separate full scans).
    ///
    /// `window = Some((slot_start_ms, slot_ms))` prorates each flow's
    /// traffic by the fraction of the slot it was actually active for
    /// (sparse mode); `None` bills whole slots, exactly like the paper's
    /// slotted accounting.
    fn slot_costs_and_latency(&self, window: Option<(u64, u64)>) -> (f64, f64, f64, f64) {
        let slot_s = self.scenario.slot_seconds;
        let topology = self.network.topology();
        // Compute: every live instance bills its CPU share.
        let compute: f64 = self
            .pool
            .iter()
            .map(|inst| {
                let node = topology.node(inst.node);
                let cpu = self.vnfs.get(inst.vnf_type).demand.cpu;
                self.scenario.prices.compute_cost_usd(node, cpu, slot_s)
            })
            .sum();
        // Energy: live edge nodes bill their utilization-dependent power
        // (a failed node is powered off and draws nothing).
        let energy: f64 = topology
            .nodes()
            .iter()
            .filter(|n| !n.is_cloud() && self.network.node_alive(n.id))
            .map(|n| {
                let u = self.network.ledger().utilization_of(n.id).unwrap_or(0.0);
                self.scenario.energy.cost_usd(n, u.min(1.0), slot_s)
            })
            .sum();
        // One pass over active flows: traffic cost (chain's per-slot
        // volume along source → VNF₁ → … → VNFₙ) + cached latency sum.
        let mut traffic = 0.0;
        let mut latency_sum = 0.0;
        for flow in self.active.values() {
            latency_sum += flow.latency_ms;
            let chain = self.chains.get(flow.request.chain);
            let share = match window {
                None => 1.0,
                Some((slot_start_ms, slot_ms)) => {
                    let active_ms = (slot_start_ms + slot_ms)
                        .saturating_sub(flow.activated_ms.max(slot_start_ms));
                    (active_ms as f64 / slot_ms as f64).min(1.0)
                }
            };
            let mut at = flow.request.source;
            for &inst_id in &flow.instances {
                let node = self.pool.get(inst_id).expect("active instance").node;
                traffic += share
                    * self.scenario.prices.traffic_cost_usd(
                        topology.node(at),
                        topology.node(node),
                        chain.traffic_gb,
                    );
                at = node;
            }
        }
        let mean_latency = if self.active.is_empty() {
            0.0
        } else {
            latency_sum / self.active.len() as f64
        };
        (compute, energy, traffic, mean_latency)
    }

    /// Sends disrupted flows back through the policy for re-placement.
    /// Returns how many were successfully replaced.
    fn replace_disrupted(
        &mut self,
        disrupted: Vec<ActiveFlow>,
        policy: &mut dyn PlacementPolicy,
        rng: &mut StdRng,
    ) -> u32 {
        let mut flows_replaced = 0u32;
        for flow in disrupted {
            let remaining = flow.request.departure_slot().saturating_sub(self.slot);
            if remaining == 0 {
                continue; // departures already ran; defensive only
            }
            // Re-placement rides the exact same policy path as an
            // admission: same context, masks, rewards and feedback. The
            // retry is re-quantized to whole slots (`duration_ms` would
            // otherwise re-bill the lifetime already served).
            let retry = Request {
                arrival_slot: self.slot,
                duration_slots: remaining as u32,
                duration_ms: None,
                ..flow.request
            };
            let now = self.now_ms();
            if let Some(sink) = self.telemetry.as_mut() {
                sink.on_requested(now, &retry, true);
            }
            if let PlacementOutcome::Accepted { .. } = self.place_request(&retry, policy, rng) {
                flows_replaced += 1;
            }
        }
        flows_replaced
    }

    /// Advances one slot: departures, network events (failures evict
    /// instances and send disrupted flows back through the policy for
    /// re-placement), idle retirement, the slot's arrivals, then cost
    /// accounting. Returns the slot record.
    ///
    /// This is the paper's original slotted loop; it cannot be mixed with
    /// the event engine on the same simulation.
    ///
    /// # Panics
    ///
    /// Panics if the simulation already ran event-driven ([`Simulation::run_trace`]
    /// or [`Simulation::run_events`]).
    pub fn advance_slot(
        &mut self,
        arrivals: &[Request],
        policy: &mut dyn PlacementPolicy,
        rng: &mut StdRng,
    ) -> SlotRecord {
        assert!(
            self.mode == EngineMode::Slot,
            "advance_slot drives the slot loop; this simulation is already event-driven"
        );
        self.process_departures();
        self.deployment_cost_this_slot = 0.0;

        // Network events fire after departures (a flow that leaves this
        // slot cannot be disrupted) and before arrivals (new requests see
        // the degraded network).
        let disrupted = self.apply_due_events();
        let flows_disrupted = disrupted.len() as u32;
        let flows_replaced = self.replace_disrupted(disrupted, policy, rng);

        self.retire_idle_instances();

        // Sequential semantics: all of the slot's arrivals get their
        // position-0 decision states encoded into one batch and answered
        // by a single batched forward; each row is consumed only if it
        // survives bitwise validation inside the (otherwise unchanged)
        // sequential placement loop. Snapshot semantics instead plan
        // EVERY position of every arrival against the frozen slot-start
        // world, then apply jointly in arrival order.
        let snapshot = self.semantics == DecisionSemantics::SlotSnapshot;
        if snapshot {
            self.plan_group_snapshot(arrivals, policy, rng);
        } else {
            self.prepare_arrival_batch(arrivals, policy);
        }

        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut sla_violations = 0u32;
        for (row, request) in arrivals.iter().enumerate() {
            let outcome = if snapshot {
                self.apply_planned_request(row, request, policy, rng)
            } else {
                self.place_request_hinted(request, policy, rng, Some(row))
            };
            match outcome {
                PlacementOutcome::Accepted { sla_violated, .. } => {
                    accepted += 1;
                    if sla_violated {
                        sla_violations += 1;
                    }
                }
                PlacementOutcome::Rejected => rejected += 1,
            }
        }
        // Stale once the slot's arrivals ran.
        self.scratch.batch.valid = false;
        self.scratch.plans.valid = false;

        let (compute, energy, traffic, mean_latency) = self.slot_costs_and_latency(None);
        let record = SlotRecord {
            slot: self.slot,
            arrivals: arrivals.len() as u32,
            accepted,
            rejected,
            sla_violations,
            active_flows: self.active.len() as u32,
            live_instances: self.pool.len() as u32,
            mean_latency_ms: mean_latency,
            compute_cost: compute,
            energy_cost: energy,
            traffic_cost: traffic,
            deployment_cost: self.deployment_cost_this_slot,
            mean_utilization: self.network.ledger().mean_utilization(),
            flows_disrupted,
            flows_replaced,
            nodes_down: self.network.down_node_count() as u32,
        };
        self.metrics.push_slot(record.clone());
        self.slot += 1;
        record
    }

    /// Generates the trace [`Simulation::run`] would feed the engine.
    fn generate_run_trace(&self, seed_offset: u64) -> Trace {
        let mut trace_rng = StdRng::seed_from_u64(
            self.scenario
                .seed
                .wrapping_add(seed_offset)
                .wrapping_mul(0x2545_F491),
        );
        let sites = self.network.topology().edge_nodes();
        generate_trace(
            &self.scenario.workload,
            &sites,
            self.scenario.horizon_slots,
            &mut trace_rng,
        )
    }

    /// The decision RNG every run entry point derives from the scenario
    /// seed — identical across engines so their policy draws align.
    fn decision_rng(&self, seed_offset: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.scenario
                .seed
                .wrapping_add(seed_offset)
                .wrapping_mul(0x9E37_79B9)
                ^ 0xDEAD_BEEF,
        )
    }

    /// The unified run entry point: drives `input` through the engine,
    /// billing, metrics retention and observer selected by `opts`, and
    /// returns the run's [`RunSummary`].
    ///
    /// Every legacy entry point ([`Simulation::run`],
    /// [`Simulation::run_slotted`], [`Simulation::run_trace`],
    /// [`Simulation::run_trace_slotted`], [`Simulation::run_events`]) is
    /// a thin wrapper over this method, so all of them share its
    /// validation:
    ///
    /// # Panics
    ///
    /// * [`BillingMode::SlotCompat`] after any sparse run on the same
    ///   simulation — the two accountings cannot mix (previously a
    ///   doc-only warning on `run_events`).
    /// * [`RunEngine::SlottedOracle`] combined with sparse billing,
    ///   ms-resolution input ([`RunInput::Events`]/[`RunInput::Stream`])
    ///   or a telemetry sink.
    /// * [`MetricsMode::Streaming`] on a collector already holding
    ///   full-mode data from an earlier run.
    pub fn drive(
        &mut self,
        input: RunInput<'_>,
        policy: &mut dyn PlacementPolicy,
        mut opts: RunOptions<'_>,
    ) -> RunSummary {
        match opts.billing {
            BillingMode::SlotCompat => assert!(
                self.slot_compat,
                "BillingMode::SlotCompat requested, but this simulation already ran sparse \
                 (run_events / BillingMode::Sparse); the two accountings cannot mix on one \
                 simulation — build a fresh Simulation instead"
            ),
            BillingMode::Sparse => {}
        }
        if opts.engine == RunEngine::SlottedOracle {
            assert_eq!(
                opts.billing,
                BillingMode::SlotCompat,
                "the slotted oracle only bills whole slots"
            );
            assert!(
                matches!(input, RunInput::Generated | RunInput::Trace(_)),
                "the slotted oracle needs slot-resolution input (Generated or Trace), \
                 got {input:?}"
            );
            assert!(
                opts.telemetry.is_none(),
                "telemetry hooks are wired into the event engine; the slotted oracle does \
                 not support a TelemetrySink"
            );
        }
        if opts.metrics == MetricsMode::Streaming {
            self.metrics.enable_streaming();
        }
        self.semantics = opts.semantics;
        // Swap the caller's sink in for the run (and back out below) so
        // the hot path tests one `Option` field instead of threading a
        // reference through every engine frame.
        let mut caller_sink = opts.telemetry.take();
        if let Some(sink) = caller_sink.as_deref_mut() {
            self.telemetry = Some(std::mem::take(sink));
        }

        let sparse = opts.billing == BillingMode::Sparse;
        let summary = match input {
            RunInput::Generated => {
                let trace = self.generate_run_trace(opts.seed_offset);
                match opts.engine {
                    RunEngine::SlottedOracle => {
                        self.drive_slotted(&trace, policy, opts.seed_offset, opts.horizon_slots)
                    }
                    RunEngine::Event => self.drive_event(
                        RunInput::Trace(&trace),
                        policy,
                        opts.seed_offset,
                        opts.horizon_slots,
                        sparse,
                    ),
                }
            }
            input => match opts.engine {
                RunEngine::SlottedOracle => {
                    let RunInput::Trace(trace) = input else {
                        unreachable!("oracle input validated above");
                    };
                    self.drive_slotted(trace, policy, opts.seed_offset, opts.horizon_slots)
                }
                RunEngine::Event => {
                    self.drive_event(input, policy, opts.seed_offset, opts.horizon_slots, sparse)
                }
            },
        };
        if let Some(sink) = caller_sink {
            *sink = self.telemetry.take().expect("sink attached above");
        }
        summary
    }

    /// Runs the scenario's full horizon with a freshly generated trace.
    ///
    /// `seed_offset` decorrelates repeated runs (training passes) of the
    /// same scenario. Equivalent to [`Simulation::drive`] with
    /// [`RunInput::Generated`] and default options.
    pub fn run(&mut self, policy: &mut dyn PlacementPolicy, seed_offset: u64) -> RunSummary {
        self.drive(
            RunInput::Generated,
            policy,
            RunOptions::new().with_seed_offset(seed_offset),
        )
    }

    /// [`Simulation::run`] driven by the legacy slotted loop instead of
    /// the event engine — the equivalence suite's reference path.
    /// Equivalent to [`Simulation::drive`] with the slotted oracle.
    pub fn run_slotted(
        &mut self,
        policy: &mut dyn PlacementPolicy,
        seed_offset: u64,
    ) -> RunSummary {
        self.drive(
            RunInput::Generated,
            policy,
            RunOptions::new().slotted().with_seed_offset(seed_offset),
        )
    }

    /// Runs a pre-generated trace through the discrete-event engine in
    /// slot-compatibility mode: every lifecycle event lands on a slot
    /// boundary, so the output — `RunSummary` and the full `SlotRecord`
    /// stream — is bit-identical to [`Simulation::run_trace_slotted`],
    /// while idle stretches of the trace are skipped in O(1) per slot
    /// instead of paying a full per-slot sweep. Equivalent to
    /// [`Simulation::drive`] with [`RunInput::Trace`].
    pub fn run_trace(
        &mut self,
        trace: &Trace,
        policy: &mut dyn PlacementPolicy,
        seed_offset: u64,
    ) -> RunSummary {
        self.drive(
            RunInput::Trace(trace),
            policy,
            RunOptions::new().with_seed_offset(seed_offset),
        )
    }

    /// Runs a pre-generated trace through the paper's original slotted
    /// loop ([`Simulation::advance_slot`] per slot). Kept as the
    /// equivalence oracle for the event engine; see
    /// `tests/event_slot_equivalence.rs`. Equivalent to
    /// [`Simulation::drive`] with the slotted oracle and
    /// [`RunInput::Trace`].
    pub fn run_trace_slotted(
        &mut self,
        trace: &Trace,
        policy: &mut dyn PlacementPolicy,
        seed_offset: u64,
    ) -> RunSummary {
        self.drive(
            RunInput::Trace(trace),
            policy,
            RunOptions::new().slotted().with_seed_offset(seed_offset),
        )
    }

    /// Runs an explicit ms-resolution arrival schedule through the event
    /// engine for `horizon_slots` slots — the *sparse* entry point.
    /// Arrivals may land anywhere inside a slot and requests may carry
    /// sub-slot holding times ([`Request::duration_ms`]), which are billed
    /// pro rata instead of being rounded up to whole slots. Scheduled
    /// network events from the scenario still fire on their slot
    /// boundaries. Arrivals before the clock or at/after the horizon are
    /// dropped.
    ///
    /// Unlike [`Simulation::run_trace`] this permanently leaves
    /// slot-compatibility accounting: a later slot-compatible run on the
    /// same simulation panics (enforced by [`Simulation::drive`]).
    /// Equivalent to `drive` with [`RunInput::Events`] and sparse
    /// billing.
    pub fn run_events(
        &mut self,
        arrivals: &[TimedArrival],
        policy: &mut dyn PlacementPolicy,
        seed_offset: u64,
        horizon_slots: u64,
    ) -> RunSummary {
        self.drive(
            RunInput::Events(arrivals),
            policy,
            RunOptions::new()
                .sparse()
                .with_seed_offset(seed_offset)
                .with_horizon(horizon_slots),
        )
    }

    /// [`Simulation::drive`]'s slotted-oracle engine: the paper's
    /// original per-slot sweep over a pre-generated trace.
    fn drive_slotted(
        &mut self,
        trace: &Trace,
        policy: &mut dyn PlacementPolicy,
        seed_offset: u64,
        horizon_slots: Option<u64>,
    ) -> RunSummary {
        let mut rng = self.decision_rng(seed_offset);
        let start = self.slot;
        let horizon = horizon_slots.unwrap_or(trace.horizon_slots);
        let mut arrivals_by_slot: BTreeMap<u64, Vec<Request>> = BTreeMap::new();
        for r in &trace.requests {
            let mut shifted = r.clone();
            shifted.arrival_slot += start;
            arrivals_by_slot
                .entry(shifted.arrival_slot)
                .or_default()
                .push(shifted);
        }
        for s in start..start + horizon {
            let arrivals = arrivals_by_slot.remove(&s).unwrap_or_default();
            self.advance_slot(&arrivals, policy, &mut rng);
        }
        self.metrics.summarize()
    }

    /// [`Simulation::drive`]'s event engine: schedules (or, for stream
    /// input, lazily feeds) the arrivals and runs the event loop.
    fn drive_event(
        &mut self,
        input: RunInput<'_>,
        policy: &mut dyn PlacementPolicy,
        seed_offset: u64,
        horizon_slots: Option<u64>,
        sparse: bool,
    ) -> RunSummary {
        let mut rng = self.decision_rng(seed_offset);
        let start = self.slot;
        self.enter_event_mode();
        if sparse {
            self.slot_compat = false;
        }
        let mut feed: Option<ArrivalFeed<'_>> = None;
        let end_slot = match input {
            RunInput::Generated => unreachable!("drive materializes Generated into Trace"),
            RunInput::Trace(trace) => {
                let end_slot = start + horizon_slots.unwrap_or(trace.horizon_slots);
                for r in &trace.requests {
                    let slot = r.arrival_slot + start;
                    if slot >= end_slot {
                        continue; // the slot loop never reaches these either
                    }
                    let mut shifted = r.clone();
                    shifted.arrival_slot = slot;
                    self.queue.schedule_at(
                        SimTime::from_slot(slot, self.slot_ms),
                        SimEvent::FlowArrival(shifted),
                    );
                }
                end_slot
            }
            RunInput::Events(arrivals) => {
                let end_slot = start + horizon_slots.unwrap_or(self.scenario.horizon_slots);
                let end_ms = end_slot.saturating_mul(self.slot_ms);
                for arrival in arrivals {
                    if arrival.at.ms() >= end_ms || arrival.at < self.queue.now() {
                        continue;
                    }
                    let mut request = arrival.request.clone();
                    request.arrival_slot = arrival.at.slot(self.slot_ms);
                    self.queue
                        .schedule_at(arrival.at, SimEvent::FlowArrival(request));
                }
                end_slot
            }
            RunInput::Stream(stream) => {
                feed = Some(ArrivalFeed {
                    stream,
                    next: None,
                    last_ms: 0,
                });
                start + horizon_slots.unwrap_or(self.scenario.horizon_slots)
            }
        };
        self.schedule_window_network_events(start, end_slot);
        self.run_event_loop(end_slot, policy, &mut rng, feed);
        self.metrics.summarize()
    }

    /// Admits every stream arrival that is due — at or before the next
    /// queued event (all in-horizon arrivals when the queue is empty) —
    /// onto the queue. Runs before each event pop, which guarantees a
    /// timestamp's arrival group is complete before that group drains
    /// (the stream is time-ordered, so nothing at the group's instant
    /// can appear later). Sets `*feed` to `None` once exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the stream yields arrivals out of time order.
    fn feed_due_arrivals(&mut self, feed: &mut Option<ArrivalFeed<'_>>, end_ms: u64) {
        let Some(f) = feed.as_mut() else { return };
        loop {
            if f.next.is_none() {
                f.next = f.stream.next();
            }
            let Some(head) = f.next.as_ref() else {
                *feed = None; // exhausted
                return;
            };
            let at = head.at;
            assert!(
                at.ms() >= f.last_ms,
                "RunInput::Stream must be time-ordered: got an arrival at {}ms after one \
                 at {}ms",
                at.ms(),
                f.last_ms
            );
            if at.ms() >= end_ms {
                return; // ordered stream: the rest is beyond the horizon too
            }
            if let Some((t, _)) = self.queue.peek() {
                if at > t {
                    return; // not due yet
                }
            }
            let mut arrival = f.next.take().expect("head checked above");
            f.last_ms = arrival.at.ms();
            if arrival.at < self.queue.now() {
                continue; // before the clock — dropped, like run_events
            }
            arrival.request.arrival_slot = arrival.at.slot(self.slot_ms);
            self.queue
                .schedule_at(arrival.at, SimEvent::FlowArrival(arrival.request));
        }
    }

    /// Flips the simulation into event mode, migrating departures that
    /// direct [`Simulation::place_request`] calls (or an earlier slotted
    /// run) registered in the slot-keyed map onto the queue. Past-due
    /// keys are dropped — the slot loop would never reach them either.
    fn enter_event_mode(&mut self) {
        if self.mode == EngineMode::Event {
            return;
        }
        self.mode = EngineMode::Event;
        let departures = std::mem::take(&mut self.departures);
        for (slot, ids) in departures {
            if slot < self.slot {
                continue;
            }
            for id in ids {
                self.queue.schedule_at(
                    SimTime::from_slot(slot, self.slot_ms),
                    SimEvent::FlowDeparture { request: id },
                );
            }
        }
    }

    /// Moves the scenario's network events due in `[start, end_slot)`
    /// from the slot timeline onto the queue (later windows stay put for
    /// chained runs).
    fn schedule_window_network_events(&mut self, start: u64, end_slot: u64) {
        let due: Vec<u64> = self
            .event_timeline
            .range(start..end_slot)
            .map(|(&s, _)| s)
            .collect();
        for s in due {
            let events = self.event_timeline.remove(&s).expect("listed key exists");
            for event in events {
                self.queue.schedule_at(
                    SimTime::from_slot(s, self.slot_ms),
                    SimEvent::Network(event),
                );
            }
        }
    }

    /// First slot whose retire phase is still ahead of the clock: the
    /// current slot while handling a pre-retire-rank event exactly on the
    /// boundary, the next slot otherwise.
    fn earliest_retire_slot(&self) -> u64 {
        let now = self.queue.now().ms();
        if now == self.slot.saturating_mul(self.slot_ms)
            && self.current_rank < SimEventKind::RetireCheck.rank()
        {
            self.slot
        } else {
            self.slot + 1
        }
    }

    /// Event-mode bookkeeping after a flow releases instance `id`: if the
    /// instance is now idle, schedule a retire check for the first slot
    /// whose retire phase both hasn't passed and clears the creation-age
    /// grace period — exactly when the slot loop's per-slot sweep would
    /// retire it. No-op in slot mode (the sweep runs every slot there).
    fn note_possible_idle(&mut self, id: InstanceId) {
        if self.mode != EngineMode::Event {
            return;
        }
        let Some(inst) = self.pool.get(id) else {
            return;
        };
        if inst.flows > 0 {
            return;
        }
        let due = self.earliest_retire_slot().max(
            inst.created_slot
                .saturating_add(self.scenario.idle_retire_slots),
        );
        if self.retire_checks.insert(due) {
            self.queue
                .schedule_at(SimTime::from_slot(due, self.slot_ms), SimEvent::RetireCheck);
        }
    }

    /// Bills every slot whose end lies at or before `time_ms`, emitting
    /// one [`SlotRecord`] each. Between events the world cannot change,
    /// so after the first (possibly recomputed) snapshot the remaining
    /// slots reuse it verbatim — a long idle stretch costs O(1) per slot
    /// and no per-flow or per-instance scans.
    fn bill_slots_through(&mut self, time_ms: u64) {
        while (self.slot + 1).saturating_mul(self.slot_ms) <= time_ms {
            // A flow activated after this slot's start owes less than a
            // full share, so its snapshot is specific to THIS slot and
            // must not be cached for the next one. Activations clear the
            // cache, so a live cache implies no clipping.
            let clips = !self.slot_compat
                && self.latest_activation_ms > self.slot.saturating_mul(self.slot_ms);
            let snapshot = match self.cost_cache.filter(|_| !clips) {
                Some(c) => c,
                None => {
                    let window = if self.slot_compat {
                        None
                    } else {
                        Some((self.slot * self.slot_ms, self.slot_ms))
                    };
                    let (compute, energy, traffic, mean_latency) =
                        self.slot_costs_and_latency(window);
                    let c = CostCache {
                        compute,
                        energy,
                        traffic,
                        mean_latency,
                        mean_utilization: self.network.ledger().mean_utilization(),
                        active_flows: self.active.len() as u32,
                        live_instances: self.pool.len() as u32,
                        nodes_down: self.network.down_node_count() as u32,
                    };
                    if !clips {
                        self.cost_cache = Some(c);
                    }
                    c
                }
            };
            let mut traffic_cost = snapshot.traffic;
            if self.partial_traffic != 0.0 {
                // Added (and branch-gated) separately so slot-compat
                // billing reuses the snapshot's bits untouched.
                traffic_cost += self.partial_traffic;
                self.partial_traffic = 0.0;
            }
            let record = SlotRecord {
                slot: self.slot,
                arrivals: self.counters.arrivals,
                accepted: self.counters.accepted,
                rejected: self.counters.rejected,
                sla_violations: self.counters.sla_violations,
                active_flows: snapshot.active_flows,
                live_instances: snapshot.live_instances,
                mean_latency_ms: snapshot.mean_latency,
                compute_cost: snapshot.compute,
                energy_cost: snapshot.energy,
                traffic_cost,
                deployment_cost: self.deployment_cost_this_slot,
                mean_utilization: snapshot.mean_utilization,
                flows_disrupted: self.counters.flows_disrupted,
                flows_replaced: self.counters.flows_replaced,
                nodes_down: snapshot.nodes_down,
            };
            if let Some(sink) = self.telemetry.as_mut() {
                sink.on_slot_billed(&record, self.slot_ms);
            }
            self.metrics.push_slot(record);
            self.counters = SlotCounters::default();
            self.deployment_cost_this_slot = 0.0;
            self.slot += 1;
        }
    }

    /// Removes one departing flow, charging its share of the current
    /// (partial) slot's traffic in sparse mode. Duplicate departure
    /// events are ignored; in sparse mode, stale ones (left behind by a
    /// re-placement, or by a chained run reusing the request id) are
    /// ignored too. Slot-compatibility mode must NOT filter stale events:
    /// the slot loop departs by id, whichever flow currently holds it —
    /// including a later flow that reused the id — and bit-equivalence
    /// means reproducing exactly that.
    fn handle_departure(&mut self, at: SimTime, request: RequestId) {
        match self.active.get(&request.0) {
            None => return, // already departed or disrupted
            Some(flow) if !self.slot_compat && flow.departure_ms != at.ms() => return,
            Some(_) => {}
        }
        let flow = self.active.remove(&request.0).expect("checked present");
        if let Some(sink) = self.telemetry.as_mut() {
            sink.on_completed(request, at.ms());
        }
        // Sub-slot lifetimes: a flow leaving mid-slot owes the fraction of
        // this slot it actually occupied. Zero for boundary departures, so
        // slot-compatibility runs never accrue anything here.
        let slot_start_ms = at.slot(self.slot_ms).saturating_mul(self.slot_ms);
        let occupied_ms = at.ms().saturating_sub(flow.activated_ms.max(slot_start_ms));
        if occupied_ms > 0 {
            let topology = self.network.topology();
            let chain = self.chains.get(flow.request.chain);
            let mut at_node = flow.request.source;
            let mut path_cost = 0.0;
            for &inst_id in &flow.instances {
                let node = self.pool.get(inst_id).expect("active instance").node;
                path_cost += self.scenario.prices.traffic_cost_usd(
                    topology.node(at_node),
                    topology.node(node),
                    chain.traffic_gb,
                );
                at_node = node;
            }
            self.partial_traffic += occupied_ms as f64 / self.slot_ms as f64 * path_cost;
        }
        for &inst_id in &flow.instances {
            self.pool
                .remove_flow(inst_id, flow.arrival_rate_rps)
                .expect("active flow's instance exists");
            self.note_possible_idle(inst_id);
        }
        self.cost_cache = None;
    }

    /// The event engine's core loop: pop events in `(time, kind_rank,
    /// sequence)` order until the horizon, lazily billing completed slots
    /// before each event and once more at the end. Same-timestamp groups
    /// of network events and of arrivals are drained together — the
    /// latter is what feeds speculative batched inference.
    fn run_event_loop(
        &mut self,
        end_slot: u64,
        policy: &mut dyn PlacementPolicy,
        rng: &mut StdRng,
        mut feed: Option<ArrivalFeed<'_>>,
    ) {
        let end_ms = end_slot.saturating_mul(self.slot_ms);
        loop {
            // Stream input is admitted lazily: pull every arrival due at
            // or before the next queued event, so a timestamp's arrival
            // group is complete before it drains below.
            self.feed_due_arrivals(&mut feed, end_ms);
            let Some((t, kind)) = self.queue.peek() else {
                break;
            };
            if t.ms() >= end_ms {
                break; // horizon reached; leftovers stay for chained runs
            }
            self.bill_slots_through(t.ms());
            self.current_rank = kind.rank();
            match kind {
                SimEventKind::FlowDeparture => {
                    let Some((_, SimEvent::FlowDeparture { request })) = self.queue.pop() else {
                        unreachable!("peeked departure vanished");
                    };
                    self.handle_departure(t, request);
                }
                SimEventKind::Network => {
                    let mut events: Vec<NetworkEvent> = Vec::new();
                    while let Some(ev) = self.queue.pop_if(t, SimEventKind::Network) {
                        match ev {
                            SimEvent::Network(e) => events.push(e),
                            other => unreachable!("network group held {other:?}"),
                        }
                    }
                    let disrupted = self.apply_network_events(&events);
                    self.counters.flows_disrupted += disrupted.len() as u32;
                    if let Some(sink) = self.telemetry.as_mut() {
                        for flow in &disrupted {
                            sink.on_disrupted(flow.request.id, t.ms());
                        }
                    }
                    let replaced = self.replace_disrupted(disrupted, policy, rng);
                    self.counters.flows_replaced += replaced;
                    self.cost_cache = None;
                }
                SimEventKind::RetireCheck => {
                    self.queue.pop();
                    self.retire_checks.remove(&t.slot(self.slot_ms));
                    if self.retire_idle_instances() > 0 {
                        self.cost_cache = None;
                    }
                }
                SimEventKind::FlowArrival => {
                    self.pending_arrivals.clear();
                    while let Some(ev) = self.queue.pop_if(t, SimEventKind::FlowArrival) {
                        match ev {
                            SimEvent::FlowArrival(request) => self.pending_arrivals.push(request),
                            other => unreachable!("arrival group held {other:?}"),
                        }
                    }
                    self.counters.arrivals += self.pending_arrivals.len() as u32;
                    if let Some(sink) = self.telemetry.as_mut() {
                        for request in &self.pending_arrivals {
                            sink.on_requested(t.ms(), request, false);
                        }
                    }
                    // Batch assembly groups the arrivals that share this
                    // timestamp (the slot loop groups per slot; on a
                    // slot-boundary schedule those coincide): speculative
                    // position-0 rows under sequential semantics, full
                    // frozen-world plans under snapshot semantics.
                    let pending = std::mem::take(&mut self.pending_arrivals);
                    if self.semantics == DecisionSemantics::SlotSnapshot {
                        self.plan_group_snapshot(&pending, policy, rng);
                    } else {
                        self.prepare_arrival_batch(&pending, policy);
                    }
                    self.pending_arrivals = pending;
                    for row in 0..self.pending_arrivals.len() {
                        self.queue.schedule_at(t, SimEvent::PolicyDecision { row });
                    }
                }
                SimEventKind::PolicyDecision => {
                    let Some((_, SimEvent::PolicyDecision { row })) = self.queue.pop() else {
                        unreachable!("peeked decision vanished");
                    };
                    let request = self.pending_arrivals[row].clone();
                    let outcome = if self.semantics == DecisionSemantics::SlotSnapshot {
                        self.apply_planned_request(row, &request, policy, rng)
                    } else {
                        self.place_request_hinted(&request, policy, rng, Some(row))
                    };
                    match outcome {
                        PlacementOutcome::Accepted { sla_violated, .. } => {
                            self.counters.accepted += 1;
                            if sla_violated {
                                self.counters.sla_violations += 1;
                            }
                        }
                        PlacementOutcome::Rejected => self.counters.rejected += 1,
                    }
                    self.cost_cache = None;
                    if row + 1 == self.pending_arrivals.len() {
                        // Stale once the group's last episode ran.
                        self.scratch.batch.valid = false;
                        self.scratch.plans.valid = false;
                    }
                }
            }
            self.current_rank = 0;
        }
        self.bill_slots_through(end_ms);
    }

    /// Lifecycle events popped by the event engine so far. The hotpath
    /// benchmark reads this to report events/sec.
    pub fn events_processed(&self) -> u64 {
        self.queue.popped()
    }

    /// Duration of one slot on the millisecond timeline.
    pub fn slot_ms(&self) -> u64 {
        self.slot_ms
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }
}

/// A request with an explicit millisecond arrival time, for
/// [`Simulation::run_events`] / [`RunInput::Events`] /
/// [`RunInput::Stream`] — the sparse engine inputs where arrivals need
/// not land on slot boundaries.
#[derive(Debug, Clone)]
pub struct TimedArrival {
    /// When the request arrives.
    pub at: SimTime,
    /// The request itself (its `arrival_slot` is rewritten from `at`).
    pub request: Request,
}

impl From<TimedRequest> for TimedArrival {
    /// Adapts a workload-side [`TimedRequest`] (e.g. from
    /// `workload::metro::MetroProfile::stream`) into an engine arrival:
    /// `profile.stream(..).map(TimedArrival::from)` plugs a metro stream
    /// straight into [`RunInput::Stream`].
    fn from(t: TimedRequest) -> Self {
        TimedArrival {
            at: SimTime::from_ms(t.at_ms),
            request: t.request,
        }
    }
}

/// Pull-based arrival source backing [`RunInput::Stream`]: holds the
/// stream's head so the event loop can admit arrivals exactly when the
/// timeline reaches them. The queue stays bounded by concurrent flows
/// plus one timestamp's arrivals instead of the whole trace.
struct ArrivalFeed<'a> {
    stream: &'a mut dyn Iterator<Item = TimedArrival>,
    /// The stream's head, pulled but not yet admitted to the queue.
    next: Option<TimedArrival>,
    /// Monotonicity check: the last admitted arrival instant.
    last_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{FirstFitPolicy, RandomPolicy};
    use sfc::chain::ChainId;

    fn sim() -> Simulation {
        Simulation::new(&Scenario::small_test(), RewardConfig::default())
    }

    fn request(id: u64, chain: usize, source: usize, slot: u64, duration: u32) -> Request {
        Request::new(
            RequestId(id),
            ChainId(chain),
            NodeId(source),
            slot,
            duration,
        )
    }

    #[test]
    fn first_fit_places_simple_request() {
        let mut s = sim();
        let mut policy = FirstFitPolicy;
        let mut rng = StdRng::seed_from_u64(0);
        let req = request(0, 1, 0, 0, 5); // voip: 2 VNFs
        let outcome = s.place_request(&req, &mut policy, &mut rng);
        match outcome {
            PlacementOutcome::Accepted { latency_ms, .. } => {
                assert!(latency_ms.is_finite() && latency_ms > 0.0);
            }
            PlacementOutcome::Rejected => panic!("first-fit should accept on an empty network"),
        }
        assert_eq!(s.active_flow_count(), 1);
        assert_eq!(s.pool.len(), 2);
    }

    #[test]
    fn departure_releases_flows_and_idle_retirement_frees_capacity() {
        let mut s = sim();
        let mut policy = FirstFitPolicy;
        let mut rng = StdRng::seed_from_u64(1);
        let req = request(0, 1, 0, 0, 2);
        s.advance_slot(std::slice::from_ref(&req), &mut policy, &mut rng);
        assert_eq!(s.active_flow_count(), 1);
        let used_before = s.ledger().total_used_cpu();
        assert!(used_before > 0.0);
        // Advance past departure + idle grace.
        for _ in 0..10 {
            s.advance_slot(&[], &mut policy, &mut rng);
        }
        assert_eq!(s.active_flow_count(), 0);
        assert_eq!(s.pool.len(), 0, "idle instances retired");
        assert_eq!(s.ledger().total_used_cpu(), 0.0, "capacity returned");
    }

    #[test]
    fn rejection_rolls_back_everything() {
        let mut s = sim();
        // A policy that places the first VNF then rejects.
        struct PlaceThenReject {
            decisions: usize,
        }
        impl PlacementPolicy for PlaceThenReject {
            fn name(&self) -> String {
                "place-then-reject".into()
            }
            fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
                self.decisions += 1;
                if self.decisions == 1 {
                    let first = ctx.feasible_candidates().next().expect("feasible");
                    PlacementAction::Place(first.node)
                } else {
                    PlacementAction::Reject
                }
            }
        }
        let mut policy = PlaceThenReject { decisions: 0 };
        let mut rng = StdRng::seed_from_u64(2);
        let req = request(0, 1, 0, 0, 5);
        let outcome = s.place_request(&req, &mut policy, &mut rng);
        assert_eq!(outcome, PlacementOutcome::Rejected);
        assert_eq!(s.pool.len(), 0, "spawned instance rolled back");
        assert_eq!(s.ledger().total_used_cpu(), 0.0, "capacity rolled back");
        assert_eq!(s.active_flow_count(), 0);
    }

    #[test]
    fn instances_are_reused_under_load() {
        let mut s = sim();
        let mut policy = FirstFitPolicy;
        let mut rng = StdRng::seed_from_u64(3);
        // Two identical requests from the same source: the second should
        // reuse both instances (ample headroom).
        let r1 = request(0, 1, 0, 0, 10);
        let r2 = request(1, 1, 0, 0, 10);
        s.place_request(&r1, &mut policy, &mut rng);
        let instances_after_first = s.pool.len();
        s.place_request(&r2, &mut policy, &mut rng);
        assert_eq!(
            s.pool.len(),
            instances_after_first,
            "no new instances needed"
        );
        // Both flows share instances.
        let max_flows = s.pool.iter().map(|i| i.flows).max().unwrap();
        assert_eq!(max_flows, 2);
    }

    #[test]
    fn full_run_produces_consistent_summary() {
        let mut s = sim();
        let mut policy = RandomPolicy;
        let summary = s.run(&mut policy, 0);
        assert_eq!(summary.slots, s.scenario().horizon_slots);
        assert_eq!(
            summary.total_arrivals,
            summary.total_accepted + summary.total_rejected
        );
        assert!(summary.acceptance_ratio >= 0.0 && summary.acceptance_ratio <= 1.0);
        assert!(summary.total_cost_usd >= 0.0);
    }

    #[test]
    fn determinism_same_seed_same_summary() {
        let scenario = Scenario::small_test();
        let run = |seed_offset: u64| {
            let mut s = Simulation::new(&scenario, RewardConfig::default());
            let mut policy = RandomPolicy;
            let mut summary = s.run(&mut policy, seed_offset);
            // Wall-clock decision timing is legitimately non-deterministic.
            summary.mean_decision_time_us = 0.0;
            summary
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    fn scenario_with_timeline(events: Vec<crate::config::TimedEvent>) -> Scenario {
        let mut s = Scenario::small_test();
        s.events = crate::config::EventSchedule::Timeline(events);
        s
    }

    fn down_at(slot: u64, node: usize) -> crate::config::TimedEvent {
        crate::config::TimedEvent {
            slot,
            event: NetworkEvent::NodeDown { node: NodeId(node) },
        }
    }

    #[test]
    fn node_failure_evicts_instances_and_replaces_flows() {
        // First-fit lands every instance on node 0 (lowest id) even for a
        // request arriving at node 1; killing node 0 must evict them,
        // disrupt the flow, and re-place it on a surviving node through
        // the same policy path (the ingress at node 1 stays alive).
        let scenario = scenario_with_timeline(vec![down_at(1, 0)]);
        let mut s = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = FirstFitPolicy;
        let mut rng = StdRng::seed_from_u64(5);
        let req = request(0, 1, 1, 0, 30);
        let r0 = s.advance_slot(std::slice::from_ref(&req), &mut policy, &mut rng);
        assert_eq!(r0.accepted, 1);
        assert_eq!(r0.nodes_down, 0);
        assert!(s.pool.iter().all(|i| i.node == NodeId(0)));

        let r1 = s.advance_slot(&[], &mut policy, &mut rng);
        assert_eq!(r1.flows_disrupted, 1);
        assert_eq!(r1.flows_replaced, 1, "3 healthy sites + cloud remain");
        assert_eq!(r1.nodes_down, 1);
        assert_eq!(s.active_flow_count(), 1);
        assert!(
            s.pool.iter().all(|i| i.node != NodeId(0)),
            "no instance may survive on the dead node"
        );
        assert!(!s.network.node_alive(NodeId(0)));
        // The re-placed flow still departs on schedule and the world
        // drains clean afterwards.
        for _ in 0..40 {
            s.advance_slot(&[], &mut policy, &mut rng);
        }
        assert_eq!(s.active_flow_count(), 0);
        assert_eq!(s.pool.len(), 0);
        assert!(s.ledger().total_used_cpu().abs() < 1e-9);
    }

    #[test]
    fn dead_source_forces_rejection_until_recovery() {
        // With the request's source down, every candidate is infeasible:
        // arrivals there must be rejected; after recovery they place again.
        let scenario = scenario_with_timeline(vec![
            down_at(0, 0),
            crate::config::TimedEvent {
                slot: 2,
                event: NetworkEvent::NodeUp { node: NodeId(0) },
            },
        ]);
        let mut s = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = FirstFitPolicy;
        let mut rng = StdRng::seed_from_u64(6);
        let r0 = s.advance_slot(&[request(0, 1, 0, 0, 5)], &mut policy, &mut rng);
        assert_eq!(r0.rejected, 1, "dead ingress cannot be served");
        let r1 = s.advance_slot(&[request(1, 1, 0, 1, 5)], &mut policy, &mut rng);
        assert_eq!(r1.rejected, 1, "still down");
        let r2 = s.advance_slot(&[request(2, 1, 0, 2, 5)], &mut policy, &mut rng);
        assert_eq!(r2.accepted, 1, "recovered ingress serves again");
        assert_eq!(r2.nodes_down, 0);
    }

    #[test]
    fn replacement_failure_counts_disruption_without_replacement() {
        // Kill every node except the flow's dead host... impossible to
        // re-place: capacity shrinks to nothing. Use a cloudless 3-site
        // ring-free metro and take down two of three sites; the remaining
        // site cannot be reached from the dead source anyway.
        let mut scenario =
            scenario_with_timeline(vec![down_at(1, 0), down_at(1, 1), down_at(1, 2)]);
        scenario.topology = crate::config::TopologySpec::Metro { sites: 3 };
        scenario.topology_builder.with_cloud = false;
        let mut s = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = FirstFitPolicy;
        let mut rng = StdRng::seed_from_u64(7);
        let r0 = s.advance_slot(&[request(0, 1, 0, 0, 20)], &mut policy, &mut rng);
        assert_eq!(r0.accepted, 1);
        let r1 = s.advance_slot(&[], &mut policy, &mut rng);
        assert_eq!(r1.flows_disrupted, 1);
        assert_eq!(r1.flows_replaced, 0, "nowhere left to go");
        assert_eq!(r1.nodes_down, 3);
        assert_eq!(s.active_flow_count(), 0);
        let summary = s.metrics().summarize();
        assert_eq!(summary.flows_disrupted, 1);
        assert_eq!(summary.replacement_success_rate, 0.0);
    }

    #[test]
    fn partition_strands_flows_even_when_their_instances_survive() {
        // Ring of 6, no cloud: first-fit serves a request from node 2 on
        // node 0. Killing nodes 1 and 3 isolates node 2 — the instances
        // on node 0 survive but the flow's path is severed, so it must be
        // disrupted and re-placed (locally, on node 2 itself).
        let mut scenario = scenario_with_timeline(vec![down_at(1, 1), down_at(1, 3)]);
        scenario.topology = crate::config::TopologySpec::Ring { sites: 6 };
        scenario.topology_builder.with_cloud = false;
        let mut s = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = FirstFitPolicy;
        let mut rng = StdRng::seed_from_u64(9);
        let r0 = s.advance_slot(&[request(0, 1, 2, 0, 20)], &mut policy, &mut rng);
        assert_eq!(r0.accepted, 1);
        assert!(s.pool.iter().all(|i| i.node == NodeId(0)));

        let r1 = s.advance_slot(&[], &mut policy, &mut rng);
        assert_eq!(r1.flows_disrupted, 1, "severed route strands the flow");
        assert_eq!(r1.flows_replaced, 1, "re-placed on the isolated ingress");
        assert_eq!(s.active_flow_count(), 1);
        let hosts: Vec<NodeId> = s
            .active
            .values()
            .flat_map(|f| f.instances.iter().map(|&i| s.pool.get(i).unwrap().node))
            .collect();
        assert!(
            hosts.iter().all(|&n| n == NodeId(2)),
            "only node 2 is reachable from the isolated ingress, got {hosts:?}"
        );
    }

    #[test]
    fn failed_nodes_draw_no_energy() {
        // Same scenario twice; in one, a node dies with no load anywhere.
        let healthy = {
            let mut s = sim();
            let mut policy = FirstFitPolicy;
            let mut rng = StdRng::seed_from_u64(10);
            s.advance_slot(&[], &mut policy, &mut rng);
            s.advance_slot(&[], &mut policy, &mut rng).energy_cost
        };
        let degraded = {
            let scenario = scenario_with_timeline(vec![down_at(1, 0)]);
            let mut s = Simulation::new(&scenario, RewardConfig::default());
            let mut policy = FirstFitPolicy;
            let mut rng = StdRng::seed_from_u64(10);
            s.advance_slot(&[], &mut policy, &mut rng);
            s.advance_slot(&[], &mut policy, &mut rng).energy_cost
        };
        assert!(
            degraded < healthy,
            "a powered-off node must stop billing idle energy ({degraded} vs {healthy})"
        );
    }

    #[test]
    fn event_runs_are_deterministic_and_count_downtime() {
        let scenario = Scenario::small_test().with_failures(0.02, 8.0);
        let run = || {
            let mut s = Simulation::new(&scenario, RewardConfig::default());
            let mut policy = FirstFitPolicy;
            let mut summary = s.run(&mut policy, 11);
            summary.mean_decision_time_us = 0.0;
            summary
        };
        let a = run();
        assert_eq!(a, run(), "event runs must be bit-identical");
        assert!(a.downtime_slots > 0, "2% over 60 slots should fail a node");
    }

    #[test]
    fn mask_forbids_saturated_nodes() {
        let mut scenario = Scenario::small_test();
        // Tiny nodes: a single firewall instance (2 cpu) fills a node.
        scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(2.0, 4.0);
        scenario.topology_builder.with_cloud = false;
        let s = Simulation::new(&scenario, RewardConfig::default());
        let chain = s.chains.get(ChainId(3)).clone(); // 5-VNF chain, includes 4-cpu VNFs
        let ctx = s.decision_context(&request(0, 3, 0, 0, 1), &chain, 4, NodeId(0), 0.0);
        // Position 4 is the IDS (4 cpu) — doesn't fit on any 2-cpu node.
        assert!(!ctx.any_feasible());
        assert!(*ctx.mask.last().unwrap(), "reject stays available");
    }
}
