//! Streaming run telemetry: per-flow lifecycle records and rolling
//! snapshots, aggregated in O(1) memory with respect to trace length.
//!
//! A [`TelemetrySink`] observes the event engine through narrow hooks
//! (`on_requested`, `on_admitted`, `on_rejected`, `on_completed`,
//! `on_disrupted`, `on_slot_billed`). It never influences the run:
//! attaching a sink to a simulation produces a bit-identical
//! `RunSummary` to running without one (pinned by the regression tests
//! in `tests/telemetry.rs`).
//!
//! Memory contract: the sink holds
//! * one open [`FlowRecord`] per *currently in-flight* flow,
//! * the last `flow_capacity` closed records (ring buffer, default
//!   1024; older records are counted, aggregated and dropped),
//! * the last `snapshot_capacity` per-slot [`SimSnapshot`]s (default
//!   256),
//! * constant-size streaming aggregates ([`FlowTotals`],
//!   [`StreamingStat`]).
//!
//! Nothing grows with trace length, so a 10M-request run costs the same
//! telemetry memory as a 1k-request smoke run. See `docs/telemetry.md`.

use crate::metrics::SlotRecord;
use serde_json::{Map, Value};
use sfc::request::{Request, RequestId};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Terminal state of a flow's lifecycle record — the abandonment-reason
/// breakdown reported by [`TelemetrySink::totals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Placed and held to its natural departure.
    Completed,
    /// Refused at admission.
    Rejected,
    /// Torn down early by a node failure (a replacement attempt, if
    /// any, opens its own record).
    Disrupted,
    /// A disrupted flow's replacement attempt was refused — the flow is
    /// permanently lost.
    ReplacementRejected,
}

impl FlowOutcome {
    /// Stable lowercase label, used by the CSV/JSON exports.
    pub fn label(&self) -> &'static str {
        match self {
            FlowOutcome::Completed => "completed",
            FlowOutcome::Rejected => "rejected",
            FlowOutcome::Disrupted => "disrupted",
            FlowOutcome::ReplacementRejected => "replacement_rejected",
        }
    }
}

/// One flow's lifecycle with funnel-ordered timestamps:
/// `requested_ms <= placed_ms <= active_ms <= torn_down_ms` for every
/// stage the flow reached (later stages are `None` when it did not).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Request id (replacements reuse the original flow's id).
    pub id: RequestId,
    /// Requested chain (index into the chain catalog).
    pub chain: usize,
    /// Ingress site (index into the node list).
    pub source: usize,
    /// Instant the placement request was made.
    pub requested_ms: u64,
    /// Instant a placement was found (admission), if any.
    pub placed_ms: Option<u64>,
    /// Instant traffic started flowing (same event as placement in this
    /// engine — kept separate so the funnel schema is explicit).
    pub active_ms: Option<u64>,
    /// Instant the flow left the system (departure or disruption).
    pub torn_down_ms: Option<u64>,
    /// End-to-end latency of the admitted placement (ms); 0 if never
    /// placed.
    pub admission_latency_ms: f64,
    /// `true` for the retry record of a disrupted flow.
    pub is_replacement: bool,
    /// Terminal state; `None` while the flow is still in flight.
    pub outcome: Option<FlowOutcome>,
}

impl FlowRecord {
    /// `true` if every timestamp the flow reached respects the funnel
    /// order `requested <= placed <= active <= torn_down`.
    pub fn funnel_ordered(&self) -> bool {
        let mut prev = self.requested_ms;
        for stage in [self.placed_ms, self.active_ms, self.torn_down_ms]
            .into_iter()
            .flatten()
        {
            if stage < prev {
                return false;
            }
            prev = stage;
        }
        true
    }
}

/// A rolling point-in-time view of the system, one per billed slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSnapshot {
    /// Instant the snapshot was taken (end of the billed slot).
    pub at_ms: u64,
    /// The billed slot's index.
    pub slot: u64,
    /// Requests that arrived during the slot.
    pub arrivals: u32,
    /// Requests accepted during the slot.
    pub accepted: u32,
    /// Requests rejected during the slot.
    pub rejected: u32,
    /// Flows active at slot end.
    pub active_flows: u32,
    /// Live VNF instances at slot end.
    pub live_instances: u32,
    /// Mean dominant node utilization at slot end.
    pub mean_utilization: f64,
    /// Total operational cost of the slot (USD).
    pub slot_cost_usd: f64,
    /// Nodes down at slot end.
    pub nodes_down: u32,
}

/// A fixed-capacity ring: pushes beyond capacity evict the oldest entry
/// and count it as dropped. Iteration is oldest → newest.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    capacity: usize,
    items: VecDeque<T>,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity >= 1");
        Self {
            capacity,
            items: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Appends `item`, evicting the oldest entry when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back(item);
    }

    /// Retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items evicted to make room so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Count / sum / min / max of a stream of values — the O(1)-memory
/// aggregate the sink keeps where a `Vec` would grow with the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamingStat {
    /// Folds one observation in.
    pub fn push(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Lifetime funnel and abandonment-reason counters, each O(1) memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTotals {
    /// Placement requests observed (original arrivals).
    pub requested: u64,
    /// Replacement attempts observed (after disruptions).
    pub replacements_requested: u64,
    /// Requests that reached the placed/active stage.
    pub placed: u64,
    /// Flows that reached the torn-down stage (departed or disrupted).
    pub torn_down: u64,
    /// Flows closed as [`FlowOutcome::Completed`].
    pub completed: u64,
    /// Flows closed as [`FlowOutcome::Rejected`].
    pub rejected: u64,
    /// Flows closed as [`FlowOutcome::Disrupted`].
    pub disrupted: u64,
    /// Flows closed as [`FlowOutcome::ReplacementRejected`].
    pub replacement_rejected: u64,
}

impl FlowTotals {
    /// All closed records.
    pub fn closed(&self) -> u64 {
        self.completed + self.rejected + self.disrupted + self.replacement_rejected
    }
}

/// Streaming observer of a simulation run: per-flow lifecycle records
/// with funnel-ordered timestamps, abandonment-reason breakdowns and a
/// rolling snapshot ring, all in memory independent of trace length.
///
/// Attach one via `RunOptions::with_telemetry` (or call the `on_*`
/// hooks directly when driving a custom engine). Purely observational:
/// a run with a sink attached is bit-identical to one without.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    open: BTreeMap<u64, FlowRecord>,
    flows: RingBuffer<FlowRecord>,
    snapshots: RingBuffer<SimSnapshot>,
    totals: FlowTotals,
    admission_latency: StreamingStat,
    lifetime_ms: StreamingStat,
}

impl Default for TelemetrySink {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetrySink {
    /// Default ring capacities: 1024 flow records, 256 snapshots.
    pub fn new() -> Self {
        Self::with_capacity(1024, 256)
    }

    /// A sink retaining the last `flow_capacity` closed flow records
    /// and the last `snapshot_capacity` slot snapshots.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is 0.
    pub fn with_capacity(flow_capacity: usize, snapshot_capacity: usize) -> Self {
        Self {
            open: BTreeMap::new(),
            flows: RingBuffer::new(flow_capacity),
            snapshots: RingBuffer::new(snapshot_capacity),
            totals: FlowTotals::default(),
            admission_latency: StreamingStat::default(),
            lifetime_ms: StreamingStat::default(),
        }
    }

    // ------------------------------------------------------------------
    // Engine hooks
    // ------------------------------------------------------------------

    /// A placement request was made at `at_ms` (`replacement` marks the
    /// retry of a disrupted flow). Opens the flow's lifecycle record.
    pub fn on_requested(&mut self, at_ms: u64, request: &Request, replacement: bool) {
        if replacement {
            self.totals.replacements_requested += 1;
        } else {
            self.totals.requested += 1;
        }
        self.open.insert(
            request.id.0,
            FlowRecord {
                id: request.id,
                chain: request.chain.0,
                source: request.source.0,
                requested_ms: at_ms,
                placed_ms: None,
                active_ms: None,
                torn_down_ms: None,
                admission_latency_ms: 0.0,
                is_replacement: replacement,
                outcome: None,
            },
        );
    }

    /// The flow was admitted at `at_ms` with end-to-end latency
    /// `latency_ms`. Marks both the placed and active stages (the event
    /// engine activates flows the instant they are placed).
    pub fn on_admitted(&mut self, id: RequestId, at_ms: u64, latency_ms: f64) {
        self.totals.placed += 1;
        self.admission_latency.push(latency_ms);
        if let Some(rec) = self.open.get_mut(&id.0) {
            rec.placed_ms = Some(at_ms);
            rec.active_ms = Some(at_ms);
            rec.admission_latency_ms = latency_ms;
        }
    }

    /// The flow was refused admission at `at_ms`. Closes its record as
    /// [`FlowOutcome::Rejected`] (or `ReplacementRejected` for the
    /// retry of a disrupted flow).
    pub fn on_rejected(&mut self, id: RequestId, at_ms: u64) {
        let outcome = match self.open.get(&id.0) {
            Some(rec) if rec.is_replacement => FlowOutcome::ReplacementRejected,
            _ => FlowOutcome::Rejected,
        };
        self.close(id, at_ms, outcome, false);
    }

    /// The flow departed naturally at `at_ms`. Closes its record as
    /// [`FlowOutcome::Completed`].
    pub fn on_completed(&mut self, id: RequestId, at_ms: u64) {
        self.close(id, at_ms, FlowOutcome::Completed, true);
    }

    /// The flow was torn down by a node failure at `at_ms`. Closes its
    /// record as [`FlowOutcome::Disrupted`]; a replacement attempt, if
    /// made, opens a fresh record via
    /// [`on_requested`](Self::on_requested) with `replacement = true`.
    pub fn on_disrupted(&mut self, id: RequestId, at_ms: u64) {
        self.close(id, at_ms, FlowOutcome::Disrupted, true);
    }

    /// A slot was billed: folds the record into the rolling snapshot
    /// ring. `slot_ms` converts the slot index to an instant.
    pub fn on_slot_billed(&mut self, record: &SlotRecord, slot_ms: u64) {
        self.snapshots.push(SimSnapshot {
            at_ms: (record.slot + 1).saturating_mul(slot_ms),
            slot: record.slot,
            arrivals: record.arrivals,
            accepted: record.accepted,
            rejected: record.rejected,
            active_flows: record.active_flows,
            live_instances: record.live_instances,
            mean_utilization: record.mean_utilization,
            slot_cost_usd: record.total_cost(),
            nodes_down: record.nodes_down,
        });
    }

    fn close(&mut self, id: RequestId, at_ms: u64, outcome: FlowOutcome, torn_down: bool) {
        let Some(mut rec) = self.open.remove(&id.0) else {
            return; // unknown flow (e.g. sink attached mid-run) — ignore
        };
        if torn_down {
            rec.torn_down_ms = Some(at_ms);
            self.totals.torn_down += 1;
        }
        rec.outcome = Some(outcome);
        debug_assert!(
            rec.funnel_ordered(),
            "funnel order violated for {}: {rec:?}",
            rec.id
        );
        match outcome {
            FlowOutcome::Completed => {
                self.totals.completed += 1;
                if let Some(active) = rec.active_ms {
                    self.lifetime_ms.push((at_ms - active) as f64);
                }
            }
            FlowOutcome::Rejected => self.totals.rejected += 1,
            FlowOutcome::Disrupted => self.totals.disrupted += 1,
            FlowOutcome::ReplacementRejected => self.totals.replacement_rejected += 1,
        }
        self.flows.push(rec);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Funnel and abandonment-reason counters.
    pub fn totals(&self) -> &FlowTotals {
        &self.totals
    }

    /// Streaming admission-latency aggregate over all placed flows.
    pub fn admission_latency(&self) -> &StreamingStat {
        &self.admission_latency
    }

    /// Streaming active-lifetime aggregate over all completed flows.
    pub fn lifetime_ms(&self) -> &StreamingStat {
        &self.lifetime_ms
    }

    /// Flows still in flight (records opened but not closed).
    pub fn open_flows(&self) -> usize {
        self.open.len()
    }

    /// The retained tail of closed flow records, oldest first.
    pub fn recent_flows(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.iter()
    }

    /// Closed records evicted from the ring so far (they remain counted
    /// in [`totals`](Self::totals)).
    pub fn dropped_flow_records(&self) -> u64 {
        self.flows.dropped()
    }

    /// The rolling per-slot snapshots, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &SimSnapshot> {
        self.snapshots.iter()
    }

    /// Snapshots evicted from the ring so far.
    pub fn dropped_snapshots(&self) -> u64 {
        self.snapshots.dropped()
    }

    // ------------------------------------------------------------------
    // Export
    // ------------------------------------------------------------------

    /// The retained flow records as columnar CSV (header + one line per
    /// record; `None` stages are empty cells).
    pub fn flows_csv(&self) -> String {
        let mut out = String::from(
            "flow_id,chain,source,is_replacement,requested_ms,placed_ms,active_ms,torn_down_ms,admission_latency_ms,outcome\n",
        );
        let opt = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_default();
        for r in self.flows.iter() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{:.3},{}\n",
                r.id.0,
                r.chain,
                r.source,
                r.is_replacement as u8,
                r.requested_ms,
                opt(r.placed_ms),
                opt(r.active_ms),
                opt(r.torn_down_ms),
                r.admission_latency_ms,
                r.outcome.map(|o| o.label()).unwrap_or("in_flight"),
            ));
        }
        out
    }

    /// The retained snapshots as columnar CSV.
    pub fn snapshots_csv(&self) -> String {
        let mut out = String::from(
            "at_ms,slot,arrivals,accepted,rejected,active_flows,live_instances,mean_utilization,slot_cost_usd,nodes_down\n",
        );
        for s in self.snapshots.iter() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.6},{:.6},{}\n",
                s.at_ms,
                s.slot,
                s.arrivals,
                s.accepted,
                s.rejected,
                s.active_flows,
                s.live_instances,
                s.mean_utilization,
                s.slot_cost_usd,
                s.nodes_down,
            ));
        }
        out
    }

    /// The streaming aggregates (never the rings) as a JSON object for
    /// embedding in `BENCH_*` reports — O(1) size in trace length.
    pub fn to_json(&self) -> Value {
        let stat = |s: &StreamingStat| {
            let mut m = Map::new();
            m.insert("count", Value::Number(s.count() as f64));
            m.insert("mean", Value::Number(s.mean()));
            m.insert("min", Value::Number(s.min()));
            m.insert("max", Value::Number(s.max()));
            Value::Object(m)
        };
        let mut funnel = Map::new();
        funnel.insert("requested", Value::Number(self.totals.requested as f64));
        funnel.insert(
            "replacements_requested",
            Value::Number(self.totals.replacements_requested as f64),
        );
        funnel.insert("placed", Value::Number(self.totals.placed as f64));
        funnel.insert("torn_down", Value::Number(self.totals.torn_down as f64));
        let mut outcomes = Map::new();
        outcomes.insert("completed", Value::Number(self.totals.completed as f64));
        outcomes.insert("rejected", Value::Number(self.totals.rejected as f64));
        outcomes.insert("disrupted", Value::Number(self.totals.disrupted as f64));
        outcomes.insert(
            "replacement_rejected",
            Value::Number(self.totals.replacement_rejected as f64),
        );
        let mut root = Map::new();
        root.insert("funnel", Value::Object(funnel));
        root.insert("outcomes", Value::Object(outcomes));
        root.insert("admission_latency_ms", stat(&self.admission_latency));
        root.insert("lifetime_ms", stat(&self.lifetime_ms));
        root.insert("open_flows", Value::Number(self.open.len() as f64));
        root.insert(
            "retained_flow_records",
            Value::Number(self.flows.len() as f64),
        );
        root.insert(
            "dropped_flow_records",
            Value::Number(self.flows.dropped() as f64),
        );
        root.insert(
            "retained_snapshots",
            Value::Number(self.snapshots.len() as f64),
        );
        root.insert(
            "dropped_snapshots",
            Value::Number(self.snapshots.dropped() as f64),
        );
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgenet::node::NodeId;
    use sfc::chain::ChainId;

    fn request(id: u64) -> Request {
        Request::new(RequestId(id), ChainId(0), NodeId(1), 0, 2)
    }

    fn sink() -> TelemetrySink {
        TelemetrySink::new()
    }

    #[test]
    fn completed_flow_walks_the_funnel() {
        let mut t = sink();
        t.on_requested(100, &request(7), false);
        assert_eq!(t.open_flows(), 1);
        t.on_admitted(RequestId(7), 100, 12.5);
        t.on_completed(RequestId(7), 5_100);
        assert_eq!(t.open_flows(), 0);
        let rec = t.recent_flows().next().expect("one record");
        assert_eq!(rec.requested_ms, 100);
        assert_eq!(rec.placed_ms, Some(100));
        assert_eq!(rec.active_ms, Some(100));
        assert_eq!(rec.torn_down_ms, Some(5_100));
        assert!(rec.funnel_ordered());
        assert_eq!(rec.outcome, Some(FlowOutcome::Completed));
        assert_eq!(t.totals().completed, 1);
        assert_eq!(t.totals().placed, 1);
        assert!((t.lifetime_ms().mean() - 5_000.0).abs() < 1e-9);
        assert!((t.admission_latency().mean() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn rejection_and_replacement_breakdowns() {
        let mut t = sink();
        t.on_requested(0, &request(1), false);
        t.on_rejected(RequestId(1), 0);
        t.on_requested(50, &request(2), true);
        t.on_rejected(RequestId(2), 50);
        assert_eq!(t.totals().rejected, 1);
        assert_eq!(t.totals().replacement_rejected, 1);
        assert_eq!(t.totals().requested, 1);
        assert_eq!(t.totals().replacements_requested, 1);
        assert_eq!(t.totals().torn_down, 0, "rejected flows never activate");
        let outcomes: Vec<_> = t.recent_flows().map(|r| r.outcome.unwrap()).collect();
        assert_eq!(
            outcomes,
            vec![FlowOutcome::Rejected, FlowOutcome::ReplacementRejected]
        );
    }

    #[test]
    fn disruption_closes_then_replacement_reopens() {
        let mut t = sink();
        t.on_requested(0, &request(3), false);
        t.on_admitted(RequestId(3), 0, 5.0);
        t.on_disrupted(RequestId(3), 1_000);
        t.on_requested(1_000, &request(3), true);
        t.on_admitted(RequestId(3), 1_000, 6.0);
        t.on_completed(RequestId(3), 3_000);
        assert_eq!(t.totals().disrupted, 1);
        assert_eq!(t.totals().completed, 1);
        assert_eq!(t.totals().placed, 2);
        let recs: Vec<_> = t.recent_flows().collect();
        assert_eq!(recs.len(), 2);
        assert!(!recs[0].is_replacement);
        assert!(recs[1].is_replacement);
        assert!((t.lifetime_ms().mean() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = TelemetrySink::with_capacity(2, 1);
        for i in 0..5u64 {
            t.on_requested(i, &request(i), false);
            t.on_rejected(RequestId(i), i);
        }
        assert_eq!(t.dropped_flow_records(), 3);
        let ids: Vec<u64> = t.recent_flows().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![3, 4], "ring keeps the newest records");
        assert_eq!(t.totals().rejected, 5, "totals keep counting past drops");
    }

    #[test]
    fn unknown_flow_events_are_ignored() {
        let mut t = sink();
        t.on_admitted(RequestId(99), 0, 1.0);
        t.on_completed(RequestId(99), 10);
        t.on_disrupted(RequestId(99), 10);
        assert_eq!(t.totals().closed(), 0);
        assert_eq!(t.totals().placed, 1, "placement counter is event-driven");
        assert!(t.recent_flows().next().is_none());
    }

    #[test]
    fn csv_shapes() {
        let mut t = sink();
        t.on_requested(0, &request(1), false);
        t.on_admitted(RequestId(1), 0, 3.0);
        t.on_completed(RequestId(1), 500);
        let csv = t.flows_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("flow_id,chain,source"));
        assert!(lines[1].starts_with("1,0,1,0,0,0,0,500,3.000,completed"));

        let rec = SlotRecord {
            slot: 3,
            arrivals: 2,
            accepted: 1,
            rejected: 1,
            sla_violations: 0,
            active_flows: 1,
            live_instances: 2,
            mean_latency_ms: 4.0,
            compute_cost: 1.0,
            energy_cost: 0.5,
            traffic_cost: 0.25,
            deployment_cost: 0.25,
            mean_utilization: 0.4,
            flows_disrupted: 0,
            flows_replaced: 0,
            nodes_down: 0,
        };
        t.on_slot_billed(&rec, 5_000);
        let snap = t.snapshots().next().expect("one snapshot");
        assert_eq!(snap.at_ms, 20_000);
        assert_eq!(snap.slot, 3);
        assert!((snap.slot_cost_usd - 2.0).abs() < 1e-9);
        let scsv = t.snapshots_csv();
        assert_eq!(scsv.lines().count(), 2);
        assert!(scsv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("20000,3,2,1,1,1,2,"));
    }

    #[test]
    fn json_export_is_constant_size() {
        let mut t = TelemetrySink::with_capacity(4, 2);
        for i in 0..100u64 {
            t.on_requested(i, &request(i), false);
            t.on_admitted(RequestId(i), i, 1.0);
            t.on_completed(RequestId(i), i + 10);
        }
        let v = t.to_json();
        assert_eq!(
            v.get("funnel")
                .and_then(|f| f.get("requested"))
                .and_then(Value::as_u64),
            Some(100)
        );
        assert_eq!(
            v.get("outcomes")
                .and_then(|o| o.get("completed"))
                .and_then(Value::as_u64),
            Some(100)
        );
        assert_eq!(
            v.get("retained_flow_records").and_then(Value::as_u64),
            Some(4)
        );
        assert_eq!(
            v.get("dropped_flow_records").and_then(Value::as_u64),
            Some(96)
        );
        // The export carries aggregates only — its size does not scale
        // with the 100 flows pushed through.
        assert!(serde_json::to_string(&v).len() < 1024);
    }
}
