//! Result emission: CSV series and markdown tables for the experiment
//! harness (the same rows/series the paper's figures and tables report).

use crate::metrics::{RunSummary, SlotRecord};
use crate::runner::PolicyResult;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders a set of policy results as a markdown comparison table.
pub fn markdown_comparison(results: &[PolicyResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "| policy | accept % | mean lat (ms) | p95 lat (ms) | SLA viol % | cost/slot ($) | util % | decide (µs) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for r in results {
        let s = &r.summary;
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.2} | {:.2} | {:.1} | {:.4} | {:.1} | {:.1} |",
            r.policy,
            100.0 * s.acceptance_ratio,
            s.mean_admission_latency_ms,
            s.p95_admission_latency_ms,
            100.0 * s.sla_violation_ratio,
            s.mean_slot_cost_usd,
            100.0 * s.mean_utilization,
            s.mean_decision_time_us,
        );
    }
    out
}

/// CSV header matching [`summary_csv_row`].
pub fn summary_csv_header() -> &'static str {
    "policy,x,acceptance_ratio,mean_latency_ms,p50_latency_ms,p95_latency_ms,\
     sla_violation_ratio,total_cost_usd,mean_slot_cost_usd,mean_utilization,\
     mean_active_flows,mean_live_instances,mean_decision_time_us"
}

/// One CSV row for a summary at sweep coordinate `x` (e.g. arrival rate).
pub fn summary_csv_row(policy: &str, x: f64, s: &RunSummary) -> String {
    format!(
        "{policy},{x},{:.6},{:.4},{:.4},{:.4},{:.6},{:.6},{:.6},{:.6},{:.3},{:.3},{:.3}",
        s.acceptance_ratio,
        s.mean_admission_latency_ms,
        s.p50_admission_latency_ms,
        s.p95_admission_latency_ms,
        s.sla_violation_ratio,
        s.total_cost_usd,
        s.mean_slot_cost_usd,
        s.mean_utilization,
        s.mean_active_flows,
        s.mean_live_instances,
        s.mean_decision_time_us,
    )
}

/// CSV header for per-slot time series.
pub fn slot_csv_header() -> &'static str {
    "policy,slot,arrivals,accepted,rejected,sla_violations,active_flows,live_instances,\
     mean_latency_ms,compute_cost,energy_cost,traffic_cost,deployment_cost,total_cost,\
     mean_utilization"
}

/// One CSV row for a slot record.
pub fn slot_csv_row(policy: &str, r: &SlotRecord) -> String {
    format!(
        "{policy},{},{},{},{},{},{},{},{:.4},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4}",
        r.slot,
        r.arrivals,
        r.accepted,
        r.rejected,
        r.sla_violations,
        r.active_flows,
        r.live_instances,
        r.mean_latency_ms,
        r.compute_cost,
        r.energy_cost,
        r.traffic_cost,
        r.deployment_cost,
        r.total_cost(),
        r.mean_utilization,
    )
}

/// Writes lines to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_lines<P: AsRef<Path>>(path: P, lines: &[String]) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, lines.join("\n") + "\n")
}

/// A convergence-curve CSV: episode index, raw return, smoothed return.
pub fn convergence_csv(label: &str, returns: &[f32], smoothed: &[f32]) -> Vec<String> {
    assert_eq!(returns.len(), smoothed.len(), "curve lengths must match");
    let mut lines = Vec::with_capacity(returns.len() + 1);
    lines.push("policy,episode,return,smoothed_return".to_string());
    for (i, (&r, &s)) in returns.iter().zip(smoothed.iter()).enumerate() {
        lines.push(format!("{label},{i},{r:.4},{s:.4}"));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            slots: 10,
            total_arrivals: 100,
            total_accepted: 90,
            total_rejected: 10,
            acceptance_ratio: 0.9,
            sla_violation_ratio: 0.05,
            mean_admission_latency_ms: 25.0,
            p50_admission_latency_ms: 20.0,
            p95_admission_latency_ms: 60.0,
            total_cost_usd: 5.0,
            mean_slot_cost_usd: 0.5,
            mean_utilization: 0.4,
            mean_active_flows: 30.0,
            mean_live_instances: 12.0,
            mean_decision_time_us: 15.0,
        }
    }

    #[test]
    fn markdown_table_contains_policy_rows() {
        let results = vec![
            PolicyResult {
                policy: "drl".into(),
                summary: summary(),
            },
            PolicyResult {
                policy: "first-fit".into(),
                summary: summary(),
            },
        ];
        let md = markdown_comparison(&results);
        assert!(md.contains("| drl |"));
        assert!(md.contains("| first-fit |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_row_has_header_arity() {
        let header_fields = summary_csv_header().split(',').count();
        let row_fields = summary_csv_row("p", 1.0, &summary()).split(',').count();
        assert_eq!(header_fields, row_fields);
    }

    #[test]
    fn slot_csv_row_has_header_arity() {
        let r = SlotRecord {
            slot: 0,
            arrivals: 1,
            accepted: 1,
            rejected: 0,
            sla_violations: 0,
            active_flows: 1,
            live_instances: 1,
            mean_latency_ms: 1.0,
            compute_cost: 0.1,
            energy_cost: 0.1,
            traffic_cost: 0.1,
            deployment_cost: 0.1,
            mean_utilization: 0.2,
        };
        assert_eq!(
            slot_csv_header().split(',').count(),
            slot_csv_row("p", &r).split(',').count()
        );
    }

    #[test]
    fn convergence_csv_shape() {
        let lines = convergence_csv("drl", &[1.0, 2.0], &[1.0, 1.5]);
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("drl,0,"));
    }

    #[test]
    fn write_lines_roundtrip() {
        let dir = std::env::temp_dir().join("mano_report_test");
        let path = dir.join("out.csv");
        write_lines(&path, &["a".into(), "b".into()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\nb\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
