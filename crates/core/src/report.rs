//! Result emission: CSV series and markdown tables for the experiment
//! harness (the same rows/series the paper's figures and tables report),
//! plus the machine-readable `BENCH_<name>.json` report CI tracks.

use crate::metrics::{
    aggregate_summaries, MetricStats, RunSummary, SlotRecord, SummaryAggregate, SUMMARY_METRICS,
};
use crate::runner::PolicyResult;
use serde_json::Value;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders a set of policy results as a markdown comparison table.
pub fn markdown_comparison(results: &[PolicyResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "| policy | accept % | mean lat (ms) | p95 lat (ms) | SLA viol % | cost/slot ($) | util % | decide (µs) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for r in results {
        let s = &r.summary;
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.2} | {:.2} | {:.1} | {:.4} | {:.1} | {:.1} |",
            r.policy,
            100.0 * s.acceptance_ratio,
            s.mean_admission_latency_ms,
            s.p95_admission_latency_ms,
            100.0 * s.sla_violation_ratio,
            s.mean_slot_cost_usd,
            100.0 * s.mean_utilization,
            s.mean_decision_time_us,
        );
    }
    out
}

/// CSV header matching [`summary_csv_row`].
pub fn summary_csv_header() -> &'static str {
    "policy,x,acceptance_ratio,mean_latency_ms,p50_latency_ms,p95_latency_ms,\
     sla_violation_ratio,total_cost_usd,mean_slot_cost_usd,mean_utilization,\
     mean_active_flows,mean_live_instances,mean_decision_time_us"
}

/// One CSV row for a summary at sweep coordinate `x` (e.g. arrival rate).
pub fn summary_csv_row(policy: &str, x: f64, s: &RunSummary) -> String {
    format!(
        "{policy},{x},{:.6},{:.4},{:.4},{:.4},{:.6},{:.6},{:.6},{:.6},{:.3},{:.3},{:.3}",
        s.acceptance_ratio,
        s.mean_admission_latency_ms,
        s.p50_admission_latency_ms,
        s.p95_admission_latency_ms,
        s.sla_violation_ratio,
        s.total_cost_usd,
        s.mean_slot_cost_usd,
        s.mean_utilization,
        s.mean_active_flows,
        s.mean_live_instances,
        s.mean_decision_time_us,
    )
}

/// CSV header for per-slot time series.
pub fn slot_csv_header() -> &'static str {
    "policy,slot,arrivals,accepted,rejected,sla_violations,active_flows,live_instances,\
     mean_latency_ms,compute_cost,energy_cost,traffic_cost,deployment_cost,total_cost,\
     mean_utilization,flows_disrupted,flows_replaced,nodes_down"
}

/// One CSV row for a slot record.
pub fn slot_csv_row(policy: &str, r: &SlotRecord) -> String {
    format!(
        "{policy},{},{},{},{},{},{},{},{:.4},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4},{},{},{}",
        r.slot,
        r.arrivals,
        r.accepted,
        r.rejected,
        r.sla_violations,
        r.active_flows,
        r.live_instances,
        r.mean_latency_ms,
        r.compute_cost,
        r.energy_cost,
        r.traffic_cost,
        r.deployment_cost,
        r.total_cost(),
        r.mean_utilization,
        r.flows_disrupted,
        r.flows_replaced,
        r.nodes_down,
    )
}

/// Writes lines to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_lines<P: AsRef<Path>>(path: P, lines: &[String]) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, lines.join("\n") + "\n")
}

/// CSV header for multi-seed band rows: `policy,x,seeds`, then
/// `<metric>_mean,<metric>_std,<metric>_ci95` for every
/// [`SUMMARY_METRICS`] entry (matches [`aggregate_csv_row`]).
pub fn aggregate_csv_header() -> String {
    let mut out = String::from("policy,x,seeds");
    for (name, _) in SUMMARY_METRICS {
        let _ = write!(out, ",{name}_mean,{name}_std,{name}_ci95");
    }
    out
}

/// One CSV row of per-metric mean/std/ci95 bands at sweep coordinate `x`.
pub fn aggregate_csv_row(policy: &str, x: f64, agg: &SummaryAggregate) -> String {
    let mut out = format!("{policy},{x},{}", agg.runs);
    for (_, s) in &agg.metrics {
        let _ = write!(out, ",{:.6},{:.6},{:.6}", s.mean, s.std, s.ci95);
    }
    out
}

/// Renders multi-seed aggregates as a markdown comparison table with
/// mean ± 95% CI cells (the banded sibling of [`markdown_comparison`]).
pub fn markdown_aggregate_comparison(rows: &[(String, SummaryAggregate)]) -> String {
    let mut out = String::new();
    out.push_str(
        "| policy | seeds | accept % | mean lat (ms) | p95 lat (ms) | SLA viol % | cost/slot ($) | util % |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    let pm = |s: &MetricStats, scale: f64, prec: usize| {
        format!("{:.prec$} ± {:.prec$}", s.mean * scale, s.ci95 * scale)
    };
    for (policy, agg) in rows {
        let g = |name: &str| agg.get(name).expect("standard metric");
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            policy,
            agg.runs,
            pm(g("acceptance_ratio"), 100.0, 1),
            pm(g("mean_latency_ms"), 1.0, 2),
            pm(g("p95_latency_ms"), 1.0, 2),
            pm(g("sla_violation_ratio"), 100.0, 1),
            pm(g("mean_slot_cost_usd"), 1.0, 4),
            pm(g("mean_utilization"), 100.0, 1),
        );
    }
    out
}

/// A convergence-curve CSV: episode index, raw return, smoothed return.
pub fn convergence_csv(label: &str, returns: &[f32], smoothed: &[f32]) -> Vec<String> {
    assert_eq!(returns.len(), smoothed.len(), "curve lengths must match");
    let mut lines = Vec::with_capacity(returns.len() + 1);
    lines.push("policy,episode,return,smoothed_return".to_string());
    for (i, (&r, &s)) in returns.iter().zip(smoothed.iter()).enumerate() {
        lines.push(format!("{label},{i},{r:.4},{s:.4}"));
    }
    lines
}

/// Version stamp of the `BENCH_*.json` schema; bump on breaking changes
/// so the perf-trajectory tooling can detect old artifacts.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One executed grid cell of a bench report: the (scenario, policy, seed)
/// coordinate plus its run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Scenario label (grid row).
    pub scenario: String,
    /// Policy label (grid column).
    pub policy: String,
    /// Sweep coordinate of the scenario (arrival rate, sites, …).
    pub x: f64,
    /// Workload seed offset of this cell.
    pub seed: u64,
    /// The cell's run summary.
    pub summary: RunSummary,
}

/// Multi-seed statistics of one (scenario, policy) cell group.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchAggregate {
    /// Scenario label.
    pub scenario: String,
    /// Policy label.
    pub policy: String,
    /// Sweep coordinate.
    pub x: f64,
    /// Per-metric bands across the group's seeds.
    pub aggregate: SummaryAggregate,
}

/// The machine-readable result of one experiment-engine run: everything
/// `BENCH_<name>.json` contains. `cells` and `aggregates` are the
/// deterministic payload (bit-identical for any thread count);
/// `wall_clock_secs`/`throughput_slots_per_sec`/`threads` are measurement
/// metadata and legitimately vary run to run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Experiment name (`BENCH_<name>.json`).
    pub name: String,
    /// Worker threads the grid ran on.
    pub threads: usize,
    /// Wall-clock duration of the grid run (seconds).
    pub wall_clock_secs: f64,
    /// Total slots simulated across all cells.
    pub slots_simulated: u64,
    /// `slots_simulated / wall_clock_secs`.
    pub throughput_slots_per_sec: f64,
    /// Configuration fingerprint (used by binaries that share cached
    /// grids); empty when unused.
    pub fingerprint: String,
    /// Per-cell results in grid-index order.
    pub cells: Vec<BenchCell>,
    /// Per-(scenario, policy) multi-seed statistics, grid order.
    pub aggregates: Vec<BenchAggregate>,
}

/// Groups consecutive cells sharing (scenario, policy, x) and aggregates
/// each group across its seeds. Cells arrive in grid-index order
/// (scenario-major, then policy, then seed), so consecutive grouping
/// exactly recovers the grid's cell groups.
pub fn group_aggregates(cells: &[BenchCell]) -> Vec<BenchAggregate> {
    let mut out: Vec<BenchAggregate> = Vec::new();
    let mut group: Vec<RunSummary> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        group.push(cell.summary.clone());
        let next_differs = cells.get(i + 1).is_none_or(|n| {
            n.scenario != cell.scenario || n.policy != cell.policy || n.x != cell.x
        });
        if next_differs {
            out.push(BenchAggregate {
                scenario: cell.scenario.clone(),
                policy: cell.policy.clone(),
                x: cell.x,
                aggregate: aggregate_summaries(&group),
            });
            group.clear();
        }
    }
    out
}

/// Serializes a [`RunSummary`] with exact field names.
pub fn summary_json(s: &RunSummary) -> Value {
    let mut map = serde_json::Map::new();
    map.insert("slots", Value::from(s.slots));
    map.insert("total_arrivals", Value::from(s.total_arrivals));
    map.insert("total_accepted", Value::from(s.total_accepted));
    map.insert("total_rejected", Value::from(s.total_rejected));
    map.insert("acceptance_ratio", Value::from(s.acceptance_ratio));
    map.insert("sla_violation_ratio", Value::from(s.sla_violation_ratio));
    map.insert(
        "mean_admission_latency_ms",
        Value::from(s.mean_admission_latency_ms),
    );
    map.insert(
        "p50_admission_latency_ms",
        Value::from(s.p50_admission_latency_ms),
    );
    map.insert(
        "p95_admission_latency_ms",
        Value::from(s.p95_admission_latency_ms),
    );
    map.insert("total_cost_usd", Value::from(s.total_cost_usd));
    map.insert("mean_slot_cost_usd", Value::from(s.mean_slot_cost_usd));
    map.insert("mean_utilization", Value::from(s.mean_utilization));
    map.insert("mean_active_flows", Value::from(s.mean_active_flows));
    map.insert("mean_live_instances", Value::from(s.mean_live_instances));
    map.insert(
        "mean_decision_time_us",
        Value::from(s.mean_decision_time_us),
    );
    map.insert("flows_disrupted", Value::from(s.flows_disrupted));
    map.insert(
        "replacement_success_rate",
        Value::from(s.replacement_success_rate),
    );
    map.insert("downtime_slots", Value::from(s.downtime_slots));
    Value::Object(map)
}

/// Parses a [`RunSummary`] back out of [`summary_json`] output.
pub fn summary_from_json(v: &Value) -> Option<RunSummary> {
    let u = |k: &str| v.get(k).and_then(Value::as_u64);
    let f = |k: &str| v.get(k).and_then(Value::as_f64);
    Some(RunSummary {
        slots: u("slots")?,
        total_arrivals: u("total_arrivals")?,
        total_accepted: u("total_accepted")?,
        total_rejected: u("total_rejected")?,
        acceptance_ratio: f("acceptance_ratio")?,
        sla_violation_ratio: f("sla_violation_ratio")?,
        mean_admission_latency_ms: f("mean_admission_latency_ms")?,
        p50_admission_latency_ms: f("p50_admission_latency_ms")?,
        p95_admission_latency_ms: f("p95_admission_latency_ms")?,
        total_cost_usd: f("total_cost_usd")?,
        mean_slot_cost_usd: f("mean_slot_cost_usd")?,
        mean_utilization: f("mean_utilization")?,
        mean_active_flows: f("mean_active_flows")?,
        mean_live_instances: f("mean_live_instances")?,
        mean_decision_time_us: f("mean_decision_time_us")?,
        flows_disrupted: u("flows_disrupted")?,
        replacement_success_rate: f("replacement_success_rate")?,
        downtime_slots: u("downtime_slots")?,
    })
}

/// Serializes one [`BenchCell`] with exact field names — the unit shared
/// by the full report payload and the sharded-sweep shard fragments, so a
/// cell that crosses a process boundary serializes identically to one
/// that never left.
pub fn cell_json(c: &BenchCell) -> Value {
    let mut map = serde_json::Map::new();
    map.insert("scenario", Value::from(c.scenario.as_str()));
    map.insert("policy", Value::from(c.policy.as_str()));
    map.insert("x", Value::from(c.x));
    map.insert("seed", Value::from(c.seed));
    map.insert("summary", summary_json(&c.summary));
    Value::Object(map)
}

/// Parses a [`BenchCell`] back out of [`cell_json`] output.
pub fn cell_from_json(v: &Value) -> Option<BenchCell> {
    Some(BenchCell {
        scenario: v.get("scenario")?.as_str()?.to_string(),
        policy: v.get("policy")?.as_str()?.to_string(),
        x: v.get("x")?.as_f64()?,
        seed: v.get("seed")?.as_u64()?,
        summary: summary_from_json(v.get("summary")?)?,
    })
}

fn aggregate_json(agg: &SummaryAggregate) -> Value {
    let mut metrics = serde_json::Map::new();
    for (name, s) in &agg.metrics {
        let mut stats = serde_json::Map::new();
        stats.insert("mean", Value::from(s.mean));
        stats.insert("std", Value::from(s.std));
        stats.insert("ci95", Value::from(s.ci95));
        metrics.insert(*name, Value::Object(stats));
    }
    let mut map = serde_json::Map::new();
    map.insert("seeds", Value::from(agg.runs));
    map.insert("metrics", Value::Object(metrics));
    Value::Object(map)
}

impl BenchReport {
    /// The deterministic payload: cells + aggregates only. Two runs of the
    /// same grid serialize this identically regardless of thread count.
    pub fn payload_json(&self) -> Value {
        let cells: Vec<Value> = self.cells.iter().map(cell_json).collect();
        let aggregates: Vec<Value> = self
            .aggregates
            .iter()
            .map(|a| {
                let mut map = serde_json::Map::new();
                map.insert("scenario", Value::from(a.scenario.as_str()));
                map.insert("policy", Value::from(a.policy.as_str()));
                map.insert("x", Value::from(a.x));
                map.insert("aggregate", aggregate_json(&a.aggregate));
                Value::Object(map)
            })
            .collect();
        let mut map = serde_json::Map::new();
        map.insert("cells", Value::Array(cells));
        map.insert("aggregates", Value::Array(aggregates));
        Value::Object(map)
    }

    /// The full document written to `BENCH_<name>.json`.
    pub fn to_json(&self) -> Value {
        self.doc_json(
            self.threads,
            self.wall_clock_secs,
            self.throughput_slots_per_sec,
        )
    }

    /// The full document with the run-to-run measurement metadata
    /// (`threads`, `wall_clock_secs`, `throughput_slots_per_sec`) scrubbed
    /// to zero. Two *different executions* of the same grid — one process,
    /// or N worker processes merged — agree on this form byte for byte,
    /// so it is what the sharded-sweep tooling writes and what CI diffs.
    /// (`slots_simulated` stays: it is a deterministic sum over cells.)
    pub fn canonical_json(&self) -> Value {
        self.doc_json(0, 0.0, 0.0)
    }

    fn doc_json(&self, threads: usize, wall_clock_secs: f64, throughput: f64) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("schema_version", Value::from(BENCH_SCHEMA_VERSION));
        map.insert("name", Value::from(self.name.as_str()));
        map.insert("threads", Value::from(threads));
        map.insert("wall_clock_secs", Value::from(wall_clock_secs));
        map.insert("slots_simulated", Value::from(self.slots_simulated));
        map.insert("throughput_slots_per_sec", Value::from(throughput));
        if !self.fingerprint.is_empty() {
            map.insert("fingerprint", Value::from(self.fingerprint.as_str()));
        }
        let payload = self.payload_json();
        map.insert(
            "cells",
            payload.get("cells").expect("payload has cells").clone(),
        );
        map.insert(
            "aggregates",
            payload
                .get("aggregates")
                .expect("payload has aggregates")
                .clone(),
        );
        Value::Object(map)
    }

    /// Parses a report back from [`BenchReport::to_json`] output.
    /// Aggregates are recomputed from the cells (they are derived data),
    /// which also validates the document's internal consistency.
    pub fn from_json(v: &Value) -> Option<Self> {
        if v.get("schema_version").and_then(Value::as_u64) != Some(BENCH_SCHEMA_VERSION) {
            return None;
        }
        let cells: Vec<BenchCell> = v
            .get("cells")?
            .as_array()?
            .iter()
            .map(|c| {
                Some(BenchCell {
                    scenario: c.get("scenario")?.as_str()?.to_string(),
                    policy: c.get("policy")?.as_str()?.to_string(),
                    x: c.get("x")?.as_f64()?,
                    seed: c.get("seed")?.as_u64()?,
                    summary: summary_from_json(c.get("summary")?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let aggregates = group_aggregates(&cells);
        Some(Self {
            name: v.get("name")?.as_str()?.to_string(),
            threads: v.get("threads")?.as_u64()? as usize,
            wall_clock_secs: v.get("wall_clock_secs")?.as_f64()?,
            slots_simulated: v.get("slots_simulated")?.as_u64()?,
            throughput_slots_per_sec: v.get("throughput_slots_per_sec")?.as_f64()?,
            fingerprint: v
                .get("fingerprint")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            cells,
            aggregates,
        })
    }

    /// Writes the pretty-printed report to `dir/BENCH_<name>.json` and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        write_lines(&path, &[serde_json::to_string_pretty(&self.to_json())])?;
        Ok(path)
    }

    /// Writes the pretty-printed [`BenchReport::canonical_json`] form to
    /// `dir/BENCH_<name>.json` and returns the path — the writer the
    /// sweep merge and its single-process reference both use, so the two
    /// files can be compared byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_canonical_to(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        write_lines(
            &path,
            &[serde_json::to_string_pretty(&self.canonical_json())],
        )?;
        Ok(path)
    }
}

/// Loads and parses `dir/BENCH_<name>.json` if present and well-formed.
pub fn load_bench_report(dir: &Path, name: &str) -> Option<BenchReport> {
    let text = std::fs::read_to_string(dir.join(format!("BENCH_{name}.json"))).ok()?;
    BenchReport::from_json(&serde_json::from_str(&text).ok()?)
}

/// Version stamp of the `BENCH_search_*.json` schema; bump on breaking
/// changes.
pub const SEARCH_SCHEMA_VERSION: u64 = 1;

/// One (reward point, scenario, policy) candidate of a configuration
/// search, with its health trajectory through the halving schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCandidate {
    /// Index of the candidate's reward point.
    pub point: usize,
    /// Scenario label.
    pub scenario: String,
    /// Policy label.
    pub policy: String,
    /// Sweep coordinate.
    pub x: f64,
    /// Latency weight α of the reward point.
    pub alpha: f64,
    /// Cost weight β of the reward point.
    pub beta: f64,
    /// Health over the screening seeds (normalized across all
    /// candidates).
    pub screened_health: f64,
    /// Whether the candidate was promoted to the full seed budget.
    pub promoted: bool,
    /// Seeds actually evaluated.
    pub seeds_run: usize,
    /// Final health over the evaluated seeds (normalized across all
    /// candidates).
    pub health: f64,
}

/// One reward point's evaluated grid inside a [`SearchReport`]: the
/// embedded bench report plus a per-cell health score aligned with
/// `report.cells` (the per-seed scatter behind the candidate healths).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchPointReport {
    /// Latency weight α of the point.
    pub alpha: f64,
    /// Cost weight β of the point.
    pub beta: f64,
    /// Health of each cell, `report.cells` order, normalized across the
    /// point's cells.
    pub cell_health: Vec<f64>,
    /// The point's evaluated cells and aggregates.
    pub report: BenchReport,
}

/// The machine-readable result of one manifest search: everything
/// `BENCH_search_<name>.json` contains. Like [`BenchReport`], the whole
/// document except nested measurement metadata is deterministic; the
/// canonical form scrubs that metadata so two runs of the same search
/// agree byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Manifest name (`BENCH_search_<name>.json`).
    pub name: String,
    /// Mode-independent fingerprint of the searched manifest.
    pub manifest_fingerprint: String,
    /// Whether the `FAST` variant was searched.
    pub fast: bool,
    /// Seeds per candidate in the screening pass.
    pub screen_seeds: usize,
    /// Seeds per promoted candidate.
    pub full_seeds: usize,
    /// Fraction of candidates promoted.
    pub promote_fraction: f64,
    /// Total (cell × seed) runs evaluated.
    pub runs_evaluated: usize,
    /// Runs the exhaustive grid would have evaluated.
    pub runs_exhaustive: usize,
    /// The `(metric, weight, higher_is_better)` health weights used.
    pub health_weights: Vec<(String, f64, bool)>,
    /// Every candidate, expansion order.
    pub candidates: Vec<SearchCandidate>,
    /// Index into `candidates` of the winner.
    pub best: usize,
    /// Per-reward-point evaluated grids, expansion order.
    pub points: Vec<SearchPointReport>,
}

fn search_candidate_json(c: &SearchCandidate) -> Value {
    let mut map = serde_json::Map::new();
    map.insert("point", Value::from(c.point));
    map.insert("scenario", Value::from(c.scenario.as_str()));
    map.insert("policy", Value::from(c.policy.as_str()));
    map.insert("x", Value::from(c.x));
    map.insert("alpha", Value::from(c.alpha));
    map.insert("beta", Value::from(c.beta));
    map.insert("screened_health", Value::from(c.screened_health));
    map.insert("promoted", Value::from(c.promoted));
    map.insert("seeds_run", Value::from(c.seeds_run));
    map.insert("health", Value::from(c.health));
    Value::Object(map)
}

fn search_candidate_from_json(v: &Value) -> Option<SearchCandidate> {
    Some(SearchCandidate {
        point: v.get("point")?.as_u64()? as usize,
        scenario: v.get("scenario")?.as_str()?.to_string(),
        policy: v.get("policy")?.as_str()?.to_string(),
        x: v.get("x")?.as_f64()?,
        alpha: v.get("alpha")?.as_f64()?,
        beta: v.get("beta")?.as_f64()?,
        screened_health: v.get("screened_health")?.as_f64()?,
        promoted: v.get("promoted")?.as_bool()?,
        seeds_run: v.get("seeds_run")?.as_u64()? as usize,
        health: v.get("health")?.as_f64()?,
    })
}

impl SearchReport {
    /// The winning candidate.
    pub fn best_candidate(&self) -> &SearchCandidate {
        &self.candidates[self.best]
    }

    /// The full document written to `BENCH_search_<name>.json`, with
    /// nested reports in their canonical (measurement-scrubbed) form so
    /// two executions of the same search serialize identically.
    pub fn canonical_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("schema_version", Value::from(SEARCH_SCHEMA_VERSION));
        map.insert("name", Value::from(self.name.as_str()));
        map.insert(
            "manifest_fingerprint",
            Value::from(self.manifest_fingerprint.as_str()),
        );
        map.insert("fast", Value::from(self.fast));
        map.insert("screen_seeds", Value::from(self.screen_seeds));
        map.insert("full_seeds", Value::from(self.full_seeds));
        map.insert("promote_fraction", Value::from(self.promote_fraction));
        map.insert("runs_evaluated", Value::from(self.runs_evaluated));
        map.insert("runs_exhaustive", Value::from(self.runs_exhaustive));
        let weights: Vec<Value> = self
            .health_weights
            .iter()
            .map(|(metric, weight, up)| {
                let mut w = serde_json::Map::new();
                w.insert("metric", Value::from(metric.as_str()));
                w.insert("weight", Value::from(*weight));
                w.insert("direction", Value::from(if *up { "up" } else { "down" }));
                Value::Object(w)
            })
            .collect();
        map.insert("health_weights", Value::Array(weights));
        map.insert(
            "candidates",
            Value::Array(self.candidates.iter().map(search_candidate_json).collect()),
        );
        map.insert("best", Value::from(self.best));
        let points: Vec<Value> = self
            .points
            .iter()
            .map(|p| {
                let mut pm = serde_json::Map::new();
                pm.insert("alpha", Value::from(p.alpha));
                pm.insert("beta", Value::from(p.beta));
                pm.insert(
                    "cell_health",
                    Value::Array(p.cell_health.iter().map(|&h| Value::from(h)).collect()),
                );
                pm.insert("report", p.report.canonical_json());
                Value::Object(pm)
            })
            .collect();
        map.insert("points", Value::Array(points));
        Value::Object(map)
    }

    /// Parses a report back from [`SearchReport::canonical_json`] output.
    pub fn from_json(v: &Value) -> Option<Self> {
        if v.get("schema_version").and_then(Value::as_u64) != Some(SEARCH_SCHEMA_VERSION) {
            return None;
        }
        let health_weights = v
            .get("health_weights")?
            .as_array()?
            .iter()
            .map(|w| {
                Some((
                    w.get("metric")?.as_str()?.to_string(),
                    w.get("weight")?.as_f64()?,
                    w.get("direction")?.as_str()? == "up",
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        let candidates = v
            .get("candidates")?
            .as_array()?
            .iter()
            .map(search_candidate_from_json)
            .collect::<Option<Vec<_>>>()?;
        let points = v
            .get("points")?
            .as_array()?
            .iter()
            .map(|p| {
                Some(SearchPointReport {
                    alpha: p.get("alpha")?.as_f64()?,
                    beta: p.get("beta")?.as_f64()?,
                    cell_health: p
                        .get("cell_health")?
                        .as_array()?
                        .iter()
                        .map(Value::as_f64)
                        .collect::<Option<Vec<_>>>()?,
                    report: BenchReport::from_json(p.get("report")?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            name: v.get("name")?.as_str()?.to_string(),
            manifest_fingerprint: v.get("manifest_fingerprint")?.as_str()?.to_string(),
            fast: v.get("fast")?.as_bool()?,
            screen_seeds: v.get("screen_seeds")?.as_u64()? as usize,
            full_seeds: v.get("full_seeds")?.as_u64()? as usize,
            promote_fraction: v.get("promote_fraction")?.as_f64()?,
            runs_evaluated: v.get("runs_evaluated")?.as_u64()? as usize,
            runs_exhaustive: v.get("runs_exhaustive")?.as_u64()? as usize,
            health_weights,
            candidates,
            best: v.get("best")?.as_u64()? as usize,
            points,
        })
    }

    /// Writes the pretty-printed canonical document to
    /// `dir/BENCH_search_<name>.json` and returns the path. Byte-stable
    /// across executions, so CI compares two runs with `cmp`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_canonical_to(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_search_{}.json", self.name));
        write_lines(
            &path,
            &[serde_json::to_string_pretty(&self.canonical_json())],
        )?;
        Ok(path)
    }
}

/// Loads and parses `dir/BENCH_search_<name>.json` if present and
/// well-formed.
pub fn load_search_report(dir: &Path, name: &str) -> Option<SearchReport> {
    let text = std::fs::read_to_string(dir.join(format!("BENCH_search_{name}.json"))).ok()?;
    SearchReport::from_json(&serde_json::from_str(&text).ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            slots: 10,
            total_arrivals: 100,
            total_accepted: 90,
            total_rejected: 10,
            acceptance_ratio: 0.9,
            sla_violation_ratio: 0.05,
            mean_admission_latency_ms: 25.0,
            p50_admission_latency_ms: 20.0,
            p95_admission_latency_ms: 60.0,
            total_cost_usd: 5.0,
            mean_slot_cost_usd: 0.5,
            mean_utilization: 0.4,
            mean_active_flows: 30.0,
            mean_live_instances: 12.0,
            mean_decision_time_us: 15.0,
            flows_disrupted: 3,
            replacement_success_rate: 2.0 / 3.0,
            downtime_slots: 7,
        }
    }

    #[test]
    fn markdown_table_contains_policy_rows() {
        let results = vec![
            PolicyResult {
                policy: "drl".into(),
                summary: summary(),
            },
            PolicyResult {
                policy: "first-fit".into(),
                summary: summary(),
            },
        ];
        let md = markdown_comparison(&results);
        assert!(md.contains("| drl |"));
        assert!(md.contains("| first-fit |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_row_has_header_arity() {
        let header_fields = summary_csv_header().split(',').count();
        let row_fields = summary_csv_row("p", 1.0, &summary()).split(',').count();
        assert_eq!(header_fields, row_fields);
    }

    #[test]
    fn slot_csv_row_has_header_arity() {
        let r = SlotRecord {
            slot: 0,
            arrivals: 1,
            accepted: 1,
            rejected: 0,
            sla_violations: 0,
            active_flows: 1,
            live_instances: 1,
            mean_latency_ms: 1.0,
            compute_cost: 0.1,
            energy_cost: 0.1,
            traffic_cost: 0.1,
            deployment_cost: 0.1,
            mean_utilization: 0.2,
            flows_disrupted: 1,
            flows_replaced: 1,
            nodes_down: 0,
        };
        assert_eq!(
            slot_csv_header().split(',').count(),
            slot_csv_row("p", &r).split(',').count()
        );
    }

    #[test]
    fn convergence_csv_shape() {
        let lines = convergence_csv("drl", &[1.0, 2.0], &[1.0, 1.5]);
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("drl,0,"));
    }

    fn report_fixture() -> BenchReport {
        let mut cells = Vec::new();
        for policy in ["drl", "first-fit"] {
            for seed in [1u64, 2] {
                let mut s = summary();
                s.mean_admission_latency_ms += seed as f64;
                cells.push(BenchCell {
                    scenario: "s0".into(),
                    policy: policy.into(),
                    x: 8.0,
                    seed,
                    summary: s,
                });
            }
        }
        let aggregates = group_aggregates(&cells);
        BenchReport {
            name: "unit".into(),
            threads: 4,
            wall_clock_secs: 1.5,
            slots_simulated: 40,
            throughput_slots_per_sec: 40.0 / 1.5,
            fingerprint: "fp".into(),
            cells,
            aggregates,
        }
    }

    #[test]
    fn aggregate_csv_row_matches_header_arity() {
        let agg = aggregate_summaries(&[summary(), summary()]);
        assert_eq!(
            aggregate_csv_header().split(',').count(),
            aggregate_csv_row("p", 1.0, &agg).split(',').count()
        );
    }

    #[test]
    fn aggregate_markdown_has_band_cells() {
        let agg = aggregate_summaries(&[summary(), summary()]);
        let md = markdown_aggregate_comparison(&[("drl".to_string(), agg)]);
        assert!(md.contains("| drl | 2 |"));
        assert!(md.contains("±"));
    }

    #[test]
    fn group_aggregates_splits_on_cell_group_boundaries() {
        let report = report_fixture();
        assert_eq!(report.aggregates.len(), 2);
        assert_eq!(report.aggregates[0].policy, "drl");
        assert_eq!(report.aggregates[0].aggregate.runs, 2);
        assert_eq!(report.aggregates[1].policy, "first-fit");
    }

    #[test]
    fn bench_report_json_roundtrip() {
        let report = report_fixture();
        let text = serde_json::to_string_pretty(&report.to_json());
        let parsed = BenchReport::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn summary_json_roundtrip_is_exact() {
        let s = summary();
        let v = serde_json::from_str(&serde_json::to_string(&summary_json(&s))).unwrap();
        assert_eq!(summary_from_json(&v).unwrap(), s);
    }

    #[test]
    fn bench_report_write_and_load() {
        let dir = std::env::temp_dir().join("mano_bench_report_test");
        let report = report_fixture();
        let path = report.write_to(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_unit.json");
        let loaded = load_bench_report(&dir, "unit").unwrap();
        assert_eq!(loaded, report);
        assert_eq!(load_bench_report(&dir, "missing"), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn payload_json_excludes_timing_metadata() {
        let payload = report_fixture().payload_json();
        assert!(payload.get("cells").is_some());
        assert!(payload.get("aggregates").is_some());
        assert!(payload.get("wall_clock_secs").is_none());
        assert!(payload.get("threads").is_none());
    }

    #[test]
    fn cell_json_roundtrip_is_exact() {
        let cell = report_fixture().cells[1].clone();
        let v = serde_json::from_str(&serde_json::to_string(&cell_json(&cell))).unwrap();
        assert_eq!(cell_from_json(&v).unwrap(), cell);
    }

    #[test]
    fn canonical_json_scrubs_only_measurement_metadata() {
        let mut a = report_fixture();
        let mut b = report_fixture();
        // Same deterministic payload, different execution circumstances.
        a.threads = 1;
        a.wall_clock_secs = 9.0;
        a.throughput_slots_per_sec = 40.0 / 9.0;
        b.threads = 8;
        b.wall_clock_secs = 1.25;
        b.throughput_slots_per_sec = 40.0 / 1.25;
        assert_ne!(
            serde_json::to_string(&a.to_json()),
            serde_json::to_string(&b.to_json())
        );
        let canon_a = serde_json::to_string_pretty(&a.canonical_json());
        assert_eq!(
            canon_a,
            serde_json::to_string_pretty(&b.canonical_json()),
            "canonical form must not depend on how the grid was executed"
        );
        // Still a well-formed report document with the full payload.
        let parsed = BenchReport::from_json(&serde_json::from_str(&canon_a).unwrap()).unwrap();
        assert_eq!(parsed.cells, a.cells);
        assert_eq!(parsed.slots_simulated, a.slots_simulated);
        assert_eq!(parsed.threads, 0);
    }

    #[test]
    fn write_canonical_matches_canonical_json() {
        let dir = std::env::temp_dir().join("mano_bench_canonical_test");
        let report = report_fixture();
        let path = report.write_canonical_to(&dir).unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            on_disk,
            serde_json::to_string_pretty(&report.canonical_json()) + "\n"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    fn search_report_fixture() -> SearchReport {
        let report = report_fixture();
        let candidates = vec![
            SearchCandidate {
                point: 0,
                scenario: "s0".into(),
                policy: "drl".into(),
                x: 8.0,
                alpha: 1.0,
                beta: 1.0,
                screened_health: 0.8,
                promoted: true,
                seeds_run: 2,
                health: 0.85,
            },
            SearchCandidate {
                point: 0,
                scenario: "s0".into(),
                policy: "first-fit".into(),
                x: 8.0,
                alpha: 1.0,
                beta: 1.0,
                screened_health: 0.3,
                promoted: false,
                seeds_run: 1,
                health: 0.25,
            },
        ];
        SearchReport {
            name: "unit".into(),
            manifest_fingerprint: "unit-0123456789abcdef".into(),
            fast: true,
            screen_seeds: 1,
            full_seeds: 2,
            promote_fraction: 0.5,
            runs_evaluated: 3,
            runs_exhaustive: 4,
            health_weights: vec![
                ("acceptance_ratio".into(), 3.0, true),
                ("p95_latency_ms".into(), 2.0, false),
            ],
            candidates,
            best: 0,
            points: vec![SearchPointReport {
                alpha: 1.0,
                beta: 1.0,
                cell_health: vec![0.9, 0.8, 0.3, 0.2],
                report,
            }],
        }
    }

    #[test]
    fn search_report_json_roundtrip() {
        let report = search_report_fixture();
        let text = serde_json::to_string_pretty(&report.canonical_json());
        let parsed = SearchReport::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        // The nested bench report's measurement metadata is scrubbed by
        // the canonical form; everything else survives exactly.
        assert_eq!(parsed.name, report.name);
        assert_eq!(parsed.manifest_fingerprint, report.manifest_fingerprint);
        assert_eq!(parsed.candidates, report.candidates);
        assert_eq!(parsed.health_weights, report.health_weights);
        assert_eq!(parsed.best_candidate().policy, "drl");
        assert_eq!(parsed.points[0].cell_health, report.points[0].cell_health);
        assert_eq!(parsed.points[0].report.cells, report.points[0].report.cells);
        assert_eq!(parsed.runs_evaluated, 3);
    }

    #[test]
    fn search_report_canonical_is_execution_independent() {
        let a = search_report_fixture();
        let mut b = search_report_fixture();
        b.points[0].report.threads = 16;
        b.points[0].report.wall_clock_secs = 99.0;
        b.points[0].report.throughput_slots_per_sec = 1.0;
        assert_eq!(
            serde_json::to_string_pretty(&a.canonical_json()),
            serde_json::to_string_pretty(&b.canonical_json())
        );
    }

    #[test]
    fn search_report_write_and_load() {
        let dir = std::env::temp_dir().join("mano_search_report_test");
        let report = search_report_fixture();
        let path = report.write_canonical_to(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_search_unit.json");
        let loaded = load_search_report(&dir, "unit").unwrap();
        assert_eq!(loaded.candidates, report.candidates);
        assert_eq!(load_search_report(&dir, "missing"), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn write_lines_roundtrip() {
        let dir = std::env::temp_dir().join("mano_report_test");
        let path = dir.join("out.csv");
        write_lines(&path, &["a".into(), "b".into()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\nb\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
