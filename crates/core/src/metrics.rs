//! Per-slot and per-run metrics: everything the experiment harness plots.

use serde::{Deserialize, Serialize};

/// One slot's worth of observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: u64,
    /// Requests that arrived this slot.
    pub arrivals: u32,
    /// Requests accepted this slot.
    pub accepted: u32,
    /// Requests rejected this slot.
    pub rejected: u32,
    /// Accepted requests that violated their SLA at admission.
    pub sla_violations: u32,
    /// Flows active at slot end.
    pub active_flows: u32,
    /// Live VNF instances at slot end.
    pub live_instances: u32,
    /// Mean end-to-end latency over active flows (ms); 0 when none.
    pub mean_latency_ms: f64,
    /// Instance compute cost this slot (USD).
    pub compute_cost: f64,
    /// Edge energy cost this slot (USD).
    pub energy_cost: f64,
    /// WAN traffic cost this slot (USD).
    pub traffic_cost: f64,
    /// Deployment cost incurred this slot (USD).
    pub deployment_cost: f64,
    /// Mean dominant node utilization at slot end.
    pub mean_utilization: f64,
    /// Active flows disrupted by node failures this slot.
    pub flows_disrupted: u32,
    /// Disrupted flows successfully re-placed this slot.
    pub flows_replaced: u32,
    /// Nodes down at slot end.
    pub nodes_down: u32,
}

impl SlotRecord {
    /// Total operational cost of the slot.
    pub fn total_cost(&self) -> f64 {
        self.compute_cost + self.energy_cost + self.traffic_cost + self.deployment_cost
    }
}

/// Log-spaced latency histogram resolution. 512 bins over
/// `[10⁻³, 10⁵]` ms give a geometric bin width of `10^(8/511)` ≈ 3.7%,
/// so a percentile read off a bin center is within ≈2% of the exact
/// order statistic.
const HIST_BINS: usize = 512;
const HIST_LO_MS: f64 = 1e-3;
const HIST_HI_MS: f64 = 1e5;

/// A fixed-size log-spaced histogram over admission latencies — the
/// O(1)-memory stand-in for the full-mode sorted latency vector.
/// Percentiles are read as the geometric center of the bin holding the
/// same order statistic the exact computation would pick.
#[derive(Debug, Clone)]
struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl LatencyHistogram {
    fn new() -> Self {
        Self {
            counts: vec![0; HIST_BINS],
            total: 0,
        }
    }

    fn push(&mut self, v: f64) {
        let clamped = v.clamp(HIST_LO_MS, HIST_HI_MS);
        let span = (HIST_HI_MS / HIST_LO_MS).ln();
        let idx = ((clamped / HIST_LO_MS).ln() / span * (HIST_BINS - 1) as f64).round() as usize;
        self.counts[idx.min(HIST_BINS - 1)] += 1;
        self.total += 1;
    }

    /// Geometric center value of bin `i`.
    fn bin_value(i: usize) -> f64 {
        HIST_LO_MS * (HIST_HI_MS / HIST_LO_MS).powf(i as f64 / (HIST_BINS - 1) as f64)
    }

    /// The same order statistic the full-mode percentile picks
    /// (`round((n-1)·p)`), resolved to its bin's center value.
    fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((self.total as f64 - 1.0) * p).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > target {
                return Self::bin_value(i);
            }
        }
        Self::bin_value(HIST_BINS - 1)
    }
}

/// O(1)-memory folds of everything [`MetricsCollector::summarize`]
/// needs — what a streaming collector keeps instead of the per-slot and
/// per-admission vectors.
#[derive(Debug, Clone)]
struct StreamingTotals {
    slots: u64,
    arrivals: u64,
    accepted: u64,
    rejected: u64,
    sla_violations: u64,
    cost: f64,
    utilization_sum: f64,
    active_flows_sum: f64,
    live_instances_sum: f64,
    flows_disrupted: u64,
    flows_replaced: u64,
    downtime_slots: u64,
    latency_sum: f64,
    latency_count: u64,
    latency_hist: LatencyHistogram,
    decision_ns_sum: u64,
    decision_count: u64,
}

impl StreamingTotals {
    fn new() -> Self {
        Self {
            slots: 0,
            arrivals: 0,
            accepted: 0,
            rejected: 0,
            sla_violations: 0,
            cost: 0.0,
            utilization_sum: 0.0,
            active_flows_sum: 0.0,
            live_instances_sum: 0.0,
            flows_disrupted: 0,
            flows_replaced: 0,
            downtime_slots: 0,
            latency_sum: 0.0,
            latency_count: 0,
            latency_hist: LatencyHistogram::new(),
            decision_ns_sum: 0,
            decision_count: 0,
        }
    }
}

/// Collects observations during a run.
///
/// Two retention modes:
///
/// * **Full** (the default): every [`SlotRecord`], admission latency and
///   decision time is kept — memory grows with the horizon, and
///   [`MetricsCollector::summarize`] computes exact statistics.
/// * **Streaming** ([`MetricsCollector::enable_streaming`]):
///   observations fold into [`StreamingTotals`] on arrival — O(1) memory
///   in trace length. Sums, counts and ratios summarize to the same
///   values as full mode (bit-identical where the fold order matches,
///   which it does for every slot-derived field); latency percentiles
///   come from a log-spaced histogram with ≈2% relative error, and the
///   latency mean may differ in final ulps (full mode sums after
///   sorting). [`MetricsCollector::slots`] returns an empty slice in
///   streaming mode.
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    slots: Vec<SlotRecord>,
    /// End-to-end latency of each accepted request at admission (ms).
    admission_latencies: Vec<f64>,
    /// Wall-clock nanoseconds per placement decision.
    decision_times_ns: Vec<u64>,
    /// `Some` in streaming mode; observations fold here instead.
    streaming: Option<StreamingTotals>,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches to streaming retention (idempotent). Must be called
    /// before any observation lands.
    ///
    /// # Panics
    ///
    /// Panics if the collector already holds full-mode data — the two
    /// retentions cannot be stitched into one consistent summary.
    pub fn enable_streaming(&mut self) {
        if self.streaming.is_some() {
            return;
        }
        assert!(
            self.slots.is_empty()
                && self.admission_latencies.is_empty()
                && self.decision_times_ns.is_empty(),
            "cannot enable streaming metrics on a collector already holding full-mode data"
        );
        self.streaming = Some(StreamingTotals::new());
    }

    /// `true` once [`MetricsCollector::enable_streaming`] has run.
    pub fn is_streaming(&self) -> bool {
        self.streaming.is_some()
    }

    /// Appends a slot record.
    pub fn push_slot(&mut self, record: SlotRecord) {
        if let Some(s) = self.streaming.as_mut() {
            s.slots += 1;
            s.arrivals += record.arrivals as u64;
            s.accepted += record.accepted as u64;
            s.rejected += record.rejected as u64;
            s.sla_violations += record.sla_violations as u64;
            s.cost += record.total_cost();
            s.utilization_sum += record.mean_utilization;
            s.active_flows_sum += record.active_flows as f64;
            s.live_instances_sum += record.live_instances as f64;
            s.flows_disrupted += record.flows_disrupted as u64;
            s.flows_replaced += record.flows_replaced as u64;
            s.downtime_slots += record.nodes_down as u64;
            return;
        }
        self.slots.push(record);
    }

    /// Records an accepted request's admission latency.
    pub fn push_admission_latency(&mut self, latency_ms: f64) {
        if let Some(s) = self.streaming.as_mut() {
            s.latency_sum += latency_ms;
            s.latency_count += 1;
            s.latency_hist.push(latency_ms);
            return;
        }
        self.admission_latencies.push(latency_ms);
    }

    /// Records a decision's wall-clock duration.
    pub fn push_decision_time(&mut self, ns: u64) {
        if let Some(s) = self.streaming.as_mut() {
            s.decision_ns_sum += ns;
            s.decision_count += 1;
            return;
        }
        self.decision_times_ns.push(ns);
    }

    /// Number of placement decisions recorded so far (works in both full
    /// and streaming mode) — throughput denominators for benchmarks.
    pub fn decision_count(&self) -> u64 {
        match self.streaming.as_ref() {
            Some(s) => s.decision_count,
            None => self.decision_times_ns.len() as u64,
        }
    }

    /// All slot records (empty in streaming mode — per-slot history is
    /// exactly what streaming retention does not keep; attach a
    /// `TelemetrySink` for a rolling snapshot tail instead).
    pub fn slots(&self) -> &[SlotRecord] {
        &self.slots
    }

    fn summarize_streaming(s: &StreamingTotals) -> RunSummary {
        RunSummary {
            slots: s.slots,
            total_arrivals: s.arrivals,
            total_accepted: s.accepted,
            total_rejected: s.rejected,
            acceptance_ratio: if s.arrivals > 0 {
                s.accepted as f64 / s.arrivals as f64
            } else {
                1.0
            },
            sla_violation_ratio: if s.accepted > 0 {
                s.sla_violations as f64 / s.accepted as f64
            } else {
                0.0
            },
            mean_admission_latency_ms: if s.latency_count > 0 {
                s.latency_sum / s.latency_count as f64
            } else {
                0.0
            },
            p50_admission_latency_ms: s.latency_hist.percentile(0.50),
            p95_admission_latency_ms: s.latency_hist.percentile(0.95),
            total_cost_usd: s.cost,
            mean_slot_cost_usd: if s.slots > 0 {
                s.cost / s.slots as f64
            } else {
                0.0
            },
            mean_utilization: if s.slots > 0 {
                s.utilization_sum / s.slots as f64
            } else {
                0.0
            },
            mean_active_flows: if s.slots > 0 {
                s.active_flows_sum / s.slots as f64
            } else {
                0.0
            },
            mean_live_instances: if s.slots > 0 {
                s.live_instances_sum / s.slots as f64
            } else {
                0.0
            },
            mean_decision_time_us: if s.decision_count > 0 {
                s.decision_ns_sum as f64 / s.decision_count as f64 / 1000.0
            } else {
                0.0
            },
            flows_disrupted: s.flows_disrupted,
            replacement_success_rate: if s.flows_disrupted > 0 {
                s.flows_replaced as f64 / s.flows_disrupted as f64
            } else {
                1.0
            },
            downtime_slots: s.downtime_slots,
        }
    }

    /// Finalizes into a summary.
    pub fn summarize(&self) -> RunSummary {
        if let Some(s) = self.streaming.as_ref() {
            return Self::summarize_streaming(s);
        }
        let total_arrivals: u64 = self.slots.iter().map(|s| s.arrivals as u64).sum();
        let total_accepted: u64 = self.slots.iter().map(|s| s.accepted as u64).sum();
        let total_rejected: u64 = self.slots.iter().map(|s| s.rejected as u64).sum();
        let total_sla_violations: u64 = self.slots.iter().map(|s| s.sla_violations as u64).sum();
        let total_cost: f64 = self.slots.iter().map(SlotRecord::total_cost).sum();
        let flows_disrupted: u64 = self.slots.iter().map(|s| s.flows_disrupted as u64).sum();
        let flows_replaced: u64 = self.slots.iter().map(|s| s.flows_replaced as u64).sum();
        let downtime_slots: u64 = self.slots.iter().map(|s| s.nodes_down as u64).sum();
        let slot_count = self.slots.len() as f64;

        let mut sorted = self.admission_latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let percentile = |p: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        let mean_latency = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let mean_decision_us = if self.decision_times_ns.is_empty() {
            0.0
        } else {
            self.decision_times_ns.iter().sum::<u64>() as f64
                / self.decision_times_ns.len() as f64
                / 1000.0
        };

        RunSummary {
            slots: self.slots.len() as u64,
            total_arrivals,
            total_accepted,
            total_rejected,
            acceptance_ratio: if total_arrivals > 0 {
                total_accepted as f64 / total_arrivals as f64
            } else {
                1.0
            },
            sla_violation_ratio: if total_accepted > 0 {
                total_sla_violations as f64 / total_accepted as f64
            } else {
                0.0
            },
            mean_admission_latency_ms: mean_latency,
            p50_admission_latency_ms: percentile(0.50),
            p95_admission_latency_ms: percentile(0.95),
            total_cost_usd: total_cost,
            mean_slot_cost_usd: if slot_count > 0.0 {
                total_cost / slot_count
            } else {
                0.0
            },
            mean_utilization: if slot_count > 0.0 {
                self.slots.iter().map(|s| s.mean_utilization).sum::<f64>() / slot_count
            } else {
                0.0
            },
            mean_active_flows: if slot_count > 0.0 {
                self.slots
                    .iter()
                    .map(|s| s.active_flows as f64)
                    .sum::<f64>()
                    / slot_count
            } else {
                0.0
            },
            mean_live_instances: if slot_count > 0.0 {
                self.slots
                    .iter()
                    .map(|s| s.live_instances as f64)
                    .sum::<f64>()
                    / slot_count
            } else {
                0.0
            },
            mean_decision_time_us: mean_decision_us,
            flows_disrupted,
            replacement_success_rate: if flows_disrupted > 0 {
                flows_replaced as f64 / flows_disrupted as f64
            } else {
                1.0
            },
            downtime_slots,
        }
    }
}

/// Aggregated results of one simulation run — the row every comparison
/// table in EXPERIMENTS.md reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Number of simulated slots.
    pub slots: u64,
    /// Requests that arrived.
    pub total_arrivals: u64,
    /// Requests accepted.
    pub total_accepted: u64,
    /// Requests rejected.
    pub total_rejected: u64,
    /// Accepted / arrived.
    pub acceptance_ratio: f64,
    /// SLA violations / accepted.
    pub sla_violation_ratio: f64,
    /// Mean end-to-end latency at admission (ms).
    pub mean_admission_latency_ms: f64,
    /// Median admission latency (ms).
    pub p50_admission_latency_ms: f64,
    /// 95th-percentile admission latency (ms).
    pub p95_admission_latency_ms: f64,
    /// Total operational cost over the run (USD).
    pub total_cost_usd: f64,
    /// Mean cost per slot (USD).
    pub mean_slot_cost_usd: f64,
    /// Mean node utilization.
    pub mean_utilization: f64,
    /// Mean concurrently active flows.
    pub mean_active_flows: f64,
    /// Mean live instances.
    pub mean_live_instances: f64,
    /// Mean wall-clock time per placement decision (µs).
    pub mean_decision_time_us: f64,
    /// Active flows disrupted by node failures over the run.
    pub flows_disrupted: u64,
    /// Fraction of disrupted flows successfully re-placed (1.0 when
    /// nothing was disrupted).
    pub replacement_success_rate: f64,
    /// Accumulated node-slots of downtime (Σ over slots of nodes down).
    pub downtime_slots: u64,
}

impl RunSummary {
    /// The combined objective the paper optimizes: mean per-slot cost plus
    /// latency, each in its natural unit; used for rankings, not plots.
    pub fn combined_objective(&self, alpha: f64, beta: f64) -> f64 {
        alpha * self.mean_admission_latency_ms
            + beta * self.mean_slot_cost_usd * 1000.0
            + 100.0 * (1.0 - self.acceptance_ratio)
    }
}

/// A named scalar metric of a [`RunSummary`]: (name, accessor).
pub type SummaryMetric = (&'static str, fn(&RunSummary) -> f64);

/// The named scalar metrics of a [`RunSummary`] that multi-seed
/// aggregation reports bands for, in the order the sweep CSVs emit them.
/// One table drives aggregation, the band CSV schema and the JSON schema,
/// so the three can never drift apart.
pub const SUMMARY_METRICS: &[SummaryMetric] = &[
    ("acceptance_ratio", |s| s.acceptance_ratio),
    ("mean_latency_ms", |s| s.mean_admission_latency_ms),
    ("p50_latency_ms", |s| s.p50_admission_latency_ms),
    ("p95_latency_ms", |s| s.p95_admission_latency_ms),
    ("sla_violation_ratio", |s| s.sla_violation_ratio),
    ("total_cost_usd", |s| s.total_cost_usd),
    ("mean_slot_cost_usd", |s| s.mean_slot_cost_usd),
    ("mean_utilization", |s| s.mean_utilization),
    ("mean_active_flows", |s| s.mean_active_flows),
    ("mean_live_instances", |s| s.mean_live_instances),
    ("mean_decision_time_us", |s| s.mean_decision_time_us),
    ("flows_disrupted", |s| s.flows_disrupted as f64),
    ("replacement_success_rate", |s| s.replacement_success_rate),
    ("downtime_slots", |s| s.downtime_slots as f64),
];

/// Mean, sample standard deviation and 95% confidence-interval half-width
/// of one metric across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricStats {
    /// Arithmetic mean across seeds.
    pub mean: f64,
    /// Sample standard deviation (0 for a single seed).
    pub std: f64,
    /// 95% CI half-width under the normal approximation:
    /// `1.96 · std / √n` (0 for a single seed).
    pub ci95: f64,
}

/// Per-metric statistics of a group of seed runs — the unit every error
/// band in the figure CSVs and `BENCH_*.json` reports is built from.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryAggregate {
    /// Number of seed runs aggregated.
    pub runs: usize,
    /// One entry per [`SUMMARY_METRICS`] row, same order.
    pub metrics: Vec<(&'static str, MetricStats)>,
}

impl SummaryAggregate {
    /// Statistics for a metric by its [`SUMMARY_METRICS`] name.
    pub fn get(&self, name: &str) -> Option<&MetricStats> {
        self.metrics
            .iter()
            .find_map(|(n, s)| (*n == name).then_some(s))
    }

    /// Mean of a metric by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown metric name.
    pub fn mean(&self, name: &str) -> f64 {
        self.get(name)
            .unwrap_or_else(|| panic!("unknown metric `{name}`"))
            .mean
    }

    /// The combined objective computed over the per-seed means (matches
    /// [`RunSummary::combined_objective`] in expectation).
    pub fn combined_objective(&self, alpha: f64, beta: f64) -> f64 {
        alpha * self.mean("mean_latency_ms")
            + beta * self.mean("mean_slot_cost_usd") * 1000.0
            + 100.0 * (1.0 - self.mean("acceptance_ratio"))
    }
}

/// Aggregates seed runs of one grid cell group into per-metric statistics.
///
/// The reduction is a pure function of the *ordered* slice: callers
/// (the experiment engine) sort runs by grid index before calling, which
/// makes the output independent of execution interleaving — a parallel
/// grid run aggregates bit-identically to a sequential one.
///
/// # Panics
///
/// Panics on an empty slice — aggregating zero runs is a harness bug.
pub fn aggregate_summaries(summaries: &[RunSummary]) -> SummaryAggregate {
    assert!(!summaries.is_empty(), "cannot aggregate zero runs");
    let n = summaries.len() as f64;
    let metrics = SUMMARY_METRICS
        .iter()
        .map(|&(name, accessor)| {
            let values: Vec<f64> = summaries.iter().map(accessor).collect();
            let mean = values.iter().sum::<f64>() / n;
            let std = if summaries.len() < 2 {
                0.0
            } else {
                let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
                var.sqrt()
            };
            let ci95 = if summaries.len() < 2 {
                0.0
            } else {
                1.96 * std / n.sqrt()
            };
            (name, MetricStats { mean, std, ci95 })
        })
        .collect();
    SummaryAggregate {
        runs: summaries.len(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: u64, arrivals: u32, accepted: u32) -> SlotRecord {
        SlotRecord {
            slot: i,
            arrivals,
            accepted,
            rejected: arrivals - accepted,
            sla_violations: 0,
            active_flows: accepted,
            live_instances: accepted,
            mean_latency_ms: 10.0,
            compute_cost: 1.0,
            energy_cost: 0.5,
            traffic_cost: 0.25,
            deployment_cost: 0.25,
            mean_utilization: 0.5,
            flows_disrupted: 0,
            flows_replaced: 0,
            nodes_down: 0,
        }
    }

    #[test]
    fn total_cost_sums_components() {
        assert_eq!(slot(0, 1, 1).total_cost(), 2.0);
    }

    #[test]
    fn summary_ratios() {
        let mut m = MetricsCollector::new();
        m.push_slot(slot(0, 4, 3));
        m.push_slot(slot(1, 6, 5));
        for l in [10.0, 20.0, 30.0, 40.0] {
            m.push_admission_latency(l);
        }
        let s = m.summarize();
        assert_eq!(s.total_arrivals, 10);
        assert_eq!(s.total_accepted, 8);
        assert!((s.acceptance_ratio - 0.8).abs() < 1e-9);
        assert!((s.mean_admission_latency_ms - 25.0).abs() < 1e-9);
        assert!((s.total_cost_usd - 4.0).abs() < 1e-9);
        assert!((s.mean_slot_cost_usd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_from_sorted_latencies() {
        let mut m = MetricsCollector::new();
        m.push_slot(slot(0, 100, 100));
        for i in 1..=100 {
            m.push_admission_latency(i as f64);
        }
        let s = m.summarize();
        assert!((s.p50_admission_latency_ms - 50.0).abs() <= 1.0);
        assert!((s.p95_admission_latency_ms - 95.0).abs() <= 1.0);
    }

    #[test]
    fn empty_collector_summarizes_benignly() {
        let s = MetricsCollector::new().summarize();
        assert_eq!(s.total_arrivals, 0);
        assert_eq!(s.acceptance_ratio, 1.0);
        assert_eq!(s.mean_admission_latency_ms, 0.0);
        assert_eq!(s.mean_decision_time_us, 0.0);
        assert_eq!(s.flows_disrupted, 0);
        assert_eq!(s.replacement_success_rate, 1.0);
        assert_eq!(s.downtime_slots, 0);
    }

    #[test]
    fn disruption_metrics_accumulate() {
        let mut m = MetricsCollector::new();
        let mut a = slot(0, 2, 2);
        a.flows_disrupted = 4;
        a.flows_replaced = 3;
        a.nodes_down = 2;
        let mut b = slot(1, 2, 2);
        b.flows_disrupted = 2;
        b.flows_replaced = 0;
        b.nodes_down = 1;
        m.push_slot(a);
        m.push_slot(b);
        let s = m.summarize();
        assert_eq!(s.flows_disrupted, 6);
        assert!((s.replacement_success_rate - 0.5).abs() < 1e-9);
        assert_eq!(s.downtime_slots, 3);
    }

    #[test]
    fn decision_time_mean_in_us() {
        let mut m = MetricsCollector::new();
        m.push_decision_time(1_000);
        m.push_decision_time(3_000);
        assert!((m.summarize().mean_decision_time_us - 2.0).abs() < 1e-9);
    }

    fn summary_with_latency(latency: f64) -> RunSummary {
        let mut m = MetricsCollector::new();
        m.push_slot(slot(0, 2, 2));
        m.push_admission_latency(latency);
        m.summarize()
    }

    #[test]
    fn aggregate_computes_mean_std_ci() {
        let runs: Vec<RunSummary> = [10.0, 20.0, 30.0, 40.0]
            .into_iter()
            .map(summary_with_latency)
            .collect();
        let agg = aggregate_summaries(&runs);
        assert_eq!(agg.runs, 4);
        let lat = agg.get("mean_latency_ms").unwrap();
        assert!((lat.mean - 25.0).abs() < 1e-9);
        // Sample std of {10,20,30,40} is √(500/3).
        let expected_std = (500.0f64 / 3.0).sqrt();
        assert!((lat.std - expected_std).abs() < 1e-9);
        assert!((lat.ci95 - 1.96 * expected_std / 2.0).abs() < 1e-9);
        // A metric identical across seeds has zero spread.
        let acc = agg.get("acceptance_ratio").unwrap();
        assert!((acc.mean - 1.0).abs() < 1e-9);
        assert_eq!(acc.std, 0.0);
    }

    #[test]
    fn aggregate_single_run_has_zero_bands() {
        let agg = aggregate_summaries(&[summary_with_latency(5.0)]);
        assert_eq!(agg.runs, 1);
        for (_, stats) in &agg.metrics {
            assert_eq!(stats.std, 0.0);
            assert_eq!(stats.ci95, 0.0);
        }
    }

    #[test]
    fn aggregate_covers_every_summary_metric() {
        let agg = aggregate_summaries(&[summary_with_latency(5.0)]);
        assert_eq!(agg.metrics.len(), SUMMARY_METRICS.len());
        for (name, _) in SUMMARY_METRICS {
            assert!(agg.get(name).is_some(), "metric {name} missing");
        }
    }

    #[test]
    fn aggregate_objective_matches_single_run_objective() {
        let s = summary_with_latency(12.0);
        let agg = aggregate_summaries(std::slice::from_ref(&s));
        let direct = s.combined_objective(1.0, 1.0);
        assert!((agg.combined_objective(1.0, 1.0) - direct).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot aggregate zero runs")]
    fn aggregate_empty_panics() {
        let _ = aggregate_summaries(&[]);
    }
}
