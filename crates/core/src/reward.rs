//! Reward shaping for the placement MDP.
//!
//! The agent minimizes a weighted sum of latency and operational cost while
//! being pushed to accept requests. Per-decision shaping (rather than a
//! single terminal reward) keeps the credit-assignment horizon short —
//! each hop's marginal latency/cost is charged when it is incurred.

use serde::{Deserialize, Serialize};

/// Finite stand-in latency (ms) for an infeasible or overloaded
/// assignment: far above any real end-to-end latency in the evaluation
/// topologies, yet small enough to keep metric averages and Q-targets
/// bounded. Shared by metric accounting (the simulation's cached
/// active-flow latencies) and reward shaping so the two paths can never
/// disagree on what "broken" costs.
pub const INFEASIBLE_LATENCY_MS: f64 = 10_000.0;

/// Reward weights and normalization scales.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Weight α on normalized latency.
    pub alpha_latency: f32,
    /// Weight β on normalized monetary cost.
    pub beta_cost: f32,
    /// Flat penalty for rejecting a request.
    pub reject_penalty: f32,
    /// Bonus for completing a chain placement (acceptance).
    pub accept_bonus: f32,
    /// Extra penalty when the accepted placement violates the latency SLA.
    pub sla_penalty: f32,
    /// Latency normalization scale in ms (a "typical" per-hop latency).
    pub latency_scale_ms: f64,
    /// Cost normalization scale in USD (a "typical" per-step cost).
    pub cost_scale_usd: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self {
            alpha_latency: 1.0,
            beta_cost: 1.0,
            reject_penalty: 4.0,
            accept_bonus: 2.0,
            sla_penalty: 3.0,
            latency_scale_ms: 50.0,
            cost_scale_usd: 0.05,
        }
    }
}

impl RewardConfig {
    /// Validates scales are positive.
    ///
    /// # Panics
    ///
    /// Panics on non-positive scales or negative penalties.
    pub fn validate(&self) {
        assert!(
            self.latency_scale_ms > 0.0,
            "latency scale must be positive"
        );
        assert!(self.cost_scale_usd > 0.0, "cost scale must be positive");
        assert!(
            self.reject_penalty >= 0.0,
            "reject penalty must be non-negative"
        );
        assert!(self.sla_penalty >= 0.0, "sla penalty must be non-negative");
    }

    /// Reward for placing one VNF: marginal latency (hop network latency +
    /// processing + queueing) and marginal monetary cost of the step.
    ///
    /// Infinite marginal latency (overloaded queue) is clamped to the
    /// shared [`INFEASIBLE_LATENCY_MS`] sentinel so the penalty stays
    /// finite and Q-targets stay bounded.
    pub fn step_reward(&self, marginal_latency_ms: f64, marginal_cost_usd: f64) -> f32 {
        let lat_norm = marginal_latency_ms.min(INFEASIBLE_LATENCY_MS) / self.latency_scale_ms;
        let cost_norm = marginal_cost_usd / self.cost_scale_usd;
        -(self.alpha_latency * lat_norm as f32 + self.beta_cost * cost_norm as f32)
    }

    /// Additional terminal reward at acceptance: bonus, minus SLA penalty
    /// if the end-to-end latency exceeded the budget.
    pub fn completion_reward(&self, sla_violated: bool) -> f32 {
        if sla_violated {
            self.accept_bonus - self.sla_penalty
        } else {
            self.accept_bonus
        }
    }

    /// Terminal reward for rejecting.
    pub fn reject_reward(&self) -> f32 {
        -self.reject_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_reward_is_negative_and_monotone() {
        let r = RewardConfig::default();
        let cheap = r.step_reward(5.0, 0.001);
        let pricey = r.step_reward(50.0, 0.05);
        assert!(cheap < 0.0);
        assert!(pricey < cheap);
    }

    #[test]
    fn infinite_latency_is_clamped() {
        let r = RewardConfig::default();
        let v = r.step_reward(f64::INFINITY, 0.0);
        assert!(v.is_finite());
        assert!(v <= -10.0 * r.alpha_latency);
    }

    #[test]
    fn sla_violation_reduces_completion() {
        let r = RewardConfig::default();
        assert!(r.completion_reward(true) < r.completion_reward(false));
        assert_eq!(r.completion_reward(false), r.accept_bonus);
    }

    #[test]
    fn reject_is_penalized() {
        let r = RewardConfig::default();
        assert_eq!(r.reject_reward(), -4.0);
    }

    #[test]
    fn weights_scale_components() {
        let lat_only = RewardConfig {
            beta_cost: 0.0,
            ..RewardConfig::default()
        };
        let cost_only = RewardConfig {
            alpha_latency: 0.0,
            ..RewardConfig::default()
        };
        // Latency-only ignores cost.
        assert_eq!(
            lat_only.step_reward(10.0, 0.0),
            lat_only.step_reward(10.0, 100.0)
        );
        // Cost-only ignores latency.
        assert_eq!(
            cost_only.step_reward(0.0, 0.01),
            cost_only.step_reward(500.0, 0.01)
        );
    }

    #[test]
    #[should_panic(expected = "latency scale must be positive")]
    fn invalid_scale_rejected() {
        RewardConfig {
            latency_scale_ms: 0.0,
            ..RewardConfig::default()
        }
        .validate();
    }
}
