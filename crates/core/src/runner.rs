//! Experiment runners: train the DRL manager, evaluate any policy, and
//! produce comparable summaries.

use crate::config::Scenario;
use crate::drl::{DrlManagerConfig, DrlPolicy};
use crate::metrics::RunSummary;
use crate::policy::PlacementPolicy;
use crate::reward::RewardConfig;
use crate::sim::{DecisionSemantics, RunInput, RunOptions, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labelled evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyResult {
    /// Policy name (table row).
    pub policy: String,
    /// Aggregated run metrics.
    pub summary: RunSummary,
}

/// Evaluates `policy` on a fresh simulation of `scenario`.
///
/// `seed_offset` selects the workload realization; use the same offset to
/// compare policies on identical traces.
pub fn evaluate_policy(
    scenario: &Scenario,
    reward: RewardConfig,
    policy: &mut dyn PlacementPolicy,
    seed_offset: u64,
) -> PolicyResult {
    evaluate_policy_with_semantics(
        scenario,
        reward,
        policy,
        seed_offset,
        DecisionSemantics::Sequential,
    )
}

/// [`evaluate_policy`] under explicit decision semantics (the snapshot
/// figure columns and the serving harness evaluate with
/// [`DecisionSemantics::SlotSnapshot`]).
pub fn evaluate_policy_with_semantics(
    scenario: &Scenario,
    reward: RewardConfig,
    policy: &mut dyn PlacementPolicy,
    seed_offset: u64,
    semantics: DecisionSemantics,
) -> PolicyResult {
    policy.set_training(false);
    let mut sim = Simulation::new(scenario, reward);
    let summary = sim.drive(
        RunInput::Generated,
        policy,
        RunOptions::new()
            .with_seed_offset(seed_offset)
            .with_semantics(semantics),
    );
    PolicyResult {
        policy: policy.name(),
        summary,
    }
}

/// Evaluates every policy in `policies` on the *same* workload trace.
pub fn compare_policies(
    scenario: &Scenario,
    reward: RewardConfig,
    policies: &mut [Box<dyn PlacementPolicy>],
    seed_offset: u64,
) -> Vec<PolicyResult> {
    policies
        .iter_mut()
        .map(|p| evaluate_policy(scenario, reward, p.as_mut(), seed_offset))
        .collect()
}

/// Outcome of DRL training: the trained policy plus learning curves.
pub struct TrainedDrl {
    /// The trained policy (switched to evaluation mode).
    pub policy: DrlPolicy,
    /// Per-placement-episode returns across all training passes.
    pub episode_returns: Vec<f32>,
    /// Per-pass run summaries during training.
    pub pass_summaries: Vec<RunSummary>,
}

impl std::fmt::Debug for TrainedDrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedDrl")
            .field("episodes", &self.episode_returns.len())
            .field("passes", &self.pass_summaries.len())
            .finish()
    }
}

/// Trains a DRL manager on `scenario` for `passes` full traversals of the
/// horizon, each on a fresh trace realization, keeping learned state and
/// the network across passes.
///
/// The simulation *state* (instances, flows) is rebuilt per pass — the
/// agent, replay buffer and exploration schedule persist.
pub fn train_drl(
    scenario: &Scenario,
    reward: RewardConfig,
    config: DrlManagerConfig,
    passes: usize,
) -> TrainedDrl {
    let vnfs = sfc::vnf::VnfCatalog::standard();
    let chains = sfc::chain::ChainCatalog::standard(&vnfs);
    train_drl_with_catalogs(scenario, reward, config, passes, &vnfs, &chains)
}

/// [`train_drl`] over custom VNF/chain catalogs.
///
/// # Panics
///
/// Panics if `passes == 0` or the scenario is invalid.
pub fn train_drl_with_catalogs(
    scenario: &Scenario,
    reward: RewardConfig,
    config: DrlManagerConfig,
    passes: usize,
    vnfs: &sfc::vnf::VnfCatalog,
    chains: &sfc::chain::ChainCatalog,
) -> TrainedDrl {
    assert!(passes > 0, "need at least one training pass");
    // Build a probe simulation to size the observation/action spaces.
    let probe = Simulation::with_catalogs(scenario, reward, vnfs.clone(), chains.clone());
    let state_dim = probe.encoder.dim();
    let action_count = probe.action_space.len();
    drop(probe);

    let mut agent_rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0x5851_F42D));
    let mut policy = DrlPolicy::new(config, state_dim, action_count, &mut agent_rng);
    policy.set_training(true);

    // Validation-based model selection: after each pass, evaluate the
    // frozen greedy policy on a held-out trace and keep the best network.
    // DQN training can drift late (over-fitting the replay distribution);
    // selecting the best checkpoint is the standard remedy.
    const VALIDATION_OFFSET: u64 = 0xA11CE;
    let mut best: Option<(f64, DrlPolicy)> = None;

    let mut episode_returns = Vec::new();
    let mut pass_summaries = Vec::with_capacity(passes);
    for pass in 0..passes {
        let mut sim = Simulation::with_catalogs(scenario, reward, vnfs.clone(), chains.clone());
        let summary = sim.run(&mut policy, pass as u64);
        episode_returns.extend(policy.take_episode_returns());
        pass_summaries.push(summary);

        // Checkpoint selection needs at least two candidates; with a
        // single pass the only checkpoint wins unconditionally, so the
        // held-out validation run would be pure wasted work (FAST smoke
        // runs hit this path on every training).
        if passes > 1 {
            policy.set_training(false);
            let mut val_sim =
                Simulation::with_catalogs(scenario, reward, vnfs.clone(), chains.clone());
            let val = val_sim.run(&mut policy, VALIDATION_OFFSET);
            policy.take_episode_returns(); // validation episodes don't belong in the curve
            policy.set_training(true);
            let objective =
                val.combined_objective(reward.alpha_latency as f64, reward.beta_cost as f64);
            if best.as_ref().is_none_or(|(b, _)| objective < *b) {
                best = Some((objective, policy.clone()));
            }
        }
    }
    let mut policy = best.map(|(_, p)| p).unwrap_or(policy);
    policy.set_training(false);
    TrainedDrl {
        policy,
        episode_returns,
        pass_summaries,
    }
}

/// Evaluates `policy` on a simulation built with custom catalogs.
pub fn evaluate_policy_with_catalogs(
    scenario: &Scenario,
    reward: RewardConfig,
    policy: &mut dyn PlacementPolicy,
    seed_offset: u64,
    vnfs: &sfc::vnf::VnfCatalog,
    chains: &sfc::chain::ChainCatalog,
) -> PolicyResult {
    policy.set_training(false);
    let mut sim = Simulation::with_catalogs(scenario, reward, vnfs.clone(), chains.clone());
    let summary = sim.run(policy, seed_offset);
    PolicyResult {
        policy: policy.name(),
        summary,
    }
}

/// Smoothes a curve with a trailing moving average of width `window`
/// (plot helper for convergence figures).
pub fn moving_average(values: &[f32], window: usize) -> Vec<f32> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(values.len());
    let mut sum = 0.0f64;
    for (i, &v) in values.iter().enumerate() {
        sum += v as f64;
        if i >= window {
            sum -= values[i - window] as f64;
        }
        let n = (i + 1).min(window);
        out.push((sum / n as f64) as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{FirstFitPolicy, GreedyLatencyPolicy};
    use rl::dqn::DqnConfig;
    use rl::qnet::QNetworkConfig;
    use rl::schedule::EpsilonSchedule;

    fn fast_drl_config() -> DrlManagerConfig {
        DrlManagerConfig {
            dqn: DqnConfig {
                network: QNetworkConfig::Standard { hidden: vec![32] },
                replay_capacity: 4_000,
                batch_size: 16,
                learn_start: 32,
                train_every: 2,
                target_sync_every: 100,
                epsilon: EpsilonSchedule::Linear {
                    start: 1.0,
                    end: 0.05,
                    steps: 1_500,
                },
                ..DqnConfig::default()
            },
            label: "drl-test".into(),
        }
    }

    #[test]
    fn evaluate_policy_labels_results() {
        let scenario = Scenario::small_test();
        let mut policy = FirstFitPolicy;
        let result = evaluate_policy(&scenario, RewardConfig::default(), &mut policy, 0);
        assert_eq!(result.policy, "first-fit");
        assert!(result.summary.total_arrivals > 0);
    }

    #[test]
    fn compare_policies_share_the_trace() {
        let scenario = Scenario::small_test();
        let mut policies: Vec<Box<dyn PlacementPolicy>> =
            vec![Box::new(FirstFitPolicy), Box::new(GreedyLatencyPolicy)];
        let results = compare_policies(&scenario, RewardConfig::default(), &mut policies, 3);
        assert_eq!(results.len(), 2);
        // Identical traces → identical arrival counts.
        assert_eq!(
            results[0].summary.total_arrivals,
            results[1].summary.total_arrivals
        );
    }

    #[test]
    fn train_drl_learns_and_reports_curves() {
        let mut scenario = Scenario::small_test();
        scenario.horizon_slots = 40;
        let trained = train_drl(&scenario, RewardConfig::default(), fast_drl_config(), 2);
        assert_eq!(trained.pass_summaries.len(), 2);
        assert!(!trained.episode_returns.is_empty());
        assert!(
            trained.policy.agent().learn_steps() > 0,
            "agent actually trained"
        );
    }

    #[test]
    fn trained_policy_evaluates_deterministically() {
        let mut scenario = Scenario::small_test();
        scenario.horizon_slots = 30;
        let mut trained = train_drl(&scenario, RewardConfig::default(), fast_drl_config(), 1);
        let mut a = evaluate_policy(&scenario, RewardConfig::default(), &mut trained.policy, 99);
        let mut b = evaluate_policy(&scenario, RewardConfig::default(), &mut trained.policy, 99);
        // Wall-clock decision timing is legitimately non-deterministic.
        a.summary.mean_decision_time_us = 0.0;
        b.summary.mean_decision_time_us = 0.0;
        assert_eq!(a.summary, b.summary, "greedy evaluation is deterministic");
    }

    #[test]
    fn moving_average_smooths() {
        let values = [0.0, 2.0, 4.0, 6.0];
        let ma = moving_average(&values, 2);
        assert_eq!(ma, vec![0.0, 1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = moving_average(&[1.0], 0);
    }
}
