//! Heuristic baseline policies the paper compares against.
//!
//! All baselines are myopic (decide from the current decision context)
//! except [`ExhaustivePolicy`], which enumerates whole node sequences for
//! the remaining chain — the "offline optimal-ish" comparator used on tiny
//! instances to measure the optimality gap.

use crate::action::PlacementAction;
use crate::policy::{DecisionContext, PlacementPolicy};
use edgenet::node::NodeId;
use edgenet::price::PriceModel;
use edgenet::routing::RoutingTable;
use edgenet::topology::Topology;
use rand::rngs::StdRng;
use rand::Rng;
use sfc::delay::mm1_sojourn_ms;
use sfc::vnf::VnfCatalog;

/// Uniformly random feasible node; rejects only when nothing fits.
#[derive(Debug, Default, Clone)]
pub struct RandomPolicy;

impl PlacementPolicy for RandomPolicy {
    fn name(&self) -> String {
        "random".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, rng: &mut StdRng) -> PlacementAction {
        let feasible: Vec<NodeId> = ctx.feasible_candidates().map(|c| c.node).collect();
        if feasible.is_empty() {
            PlacementAction::Reject
        } else {
            PlacementAction::Place(feasible[rng.gen_range(0..feasible.len())])
        }
    }
}

/// Lowest-id feasible node (the classical first-fit bin-packing rule).
#[derive(Debug, Default, Clone)]
pub struct FirstFitPolicy;

impl PlacementPolicy for FirstFitPolicy {
    fn name(&self) -> String {
        "first-fit".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        ctx.feasible_candidates()
            .map(|c| c.node)
            .next()
            .map_or(PlacementAction::Reject, PlacementAction::Place)
    }
}

/// Most-utilized feasible node — consolidates load (bin-packing best fit),
/// minimizing the number of powered nodes at the price of queueing.
#[derive(Debug, Default, Clone)]
pub struct BestFitPolicy;

impl PlacementPolicy for BestFitPolicy {
    fn name(&self) -> String {
        "best-fit".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        ctx.feasible_candidates()
            .max_by(|a, b| a.utilization.partial_cmp(&b.utilization).unwrap())
            .map_or(PlacementAction::Reject, |c| PlacementAction::Place(c.node))
    }
}

/// Least-utilized feasible node — spreads load (worst fit).
#[derive(Debug, Default, Clone)]
pub struct WorstFitPolicy;

impl PlacementPolicy for WorstFitPolicy {
    fn name(&self) -> String {
        "worst-fit".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        ctx.feasible_candidates()
            .min_by(|a, b| a.utilization.partial_cmp(&b.utilization).unwrap())
            .map_or(PlacementAction::Reject, |c| PlacementAction::Place(c.node))
    }
}

/// Feasible node with the smallest marginal latency (network + processing
/// + queueing). The strongest latency baseline; ignores cost entirely.
#[derive(Debug, Default, Clone)]
pub struct GreedyLatencyPolicy;

impl PlacementPolicy for GreedyLatencyPolicy {
    fn name(&self) -> String {
        "greedy-latency".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        ctx.feasible_candidates()
            .min_by(|a, b| {
                a.marginal_latency_ms
                    .partial_cmp(&b.marginal_latency_ms)
                    .unwrap()
            })
            .map_or(PlacementAction::Reject, |c| PlacementAction::Place(c.node))
    }
}

/// Feasible node with the smallest marginal monetary cost (prefers
/// instance reuse and cheap/cloud compute); ignores latency.
#[derive(Debug, Default, Clone)]
pub struct GreedyCostPolicy;

impl PlacementPolicy for GreedyCostPolicy {
    fn name(&self) -> String {
        "greedy-cost".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        ctx.feasible_candidates()
            .min_by(|a, b| {
                a.marginal_cost_usd
                    .partial_cmp(&b.marginal_cost_usd)
                    .unwrap()
            })
            .map_or(PlacementAction::Reject, |c| PlacementAction::Place(c.node))
    }
}

/// Sends every VNF to the cloud — the "no edge" strawman that bounds how
/// much latency the edge actually buys.
#[derive(Debug, Default, Clone)]
pub struct CloudOnlyPolicy;

impl PlacementPolicy for CloudOnlyPolicy {
    fn name(&self) -> String {
        "cloud-only".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        ctx.feasible_candidates()
            .find(|c| c.is_cloud)
            .map_or(PlacementAction::Reject, |c| PlacementAction::Place(c.node))
    }
}

/// Weighted-greedy: minimizes `alpha·latency_norm + beta·cost_norm` per
/// step — the myopic version of the DRL objective (a strong baseline).
#[derive(Debug, Clone)]
pub struct WeightedGreedyPolicy {
    /// Latency weight.
    pub alpha: f64,
    /// Cost weight.
    pub beta: f64,
    /// Latency normalization (ms).
    pub latency_scale_ms: f64,
    /// Cost normalization (USD).
    pub cost_scale_usd: f64,
}

impl Default for WeightedGreedyPolicy {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
            latency_scale_ms: 50.0,
            cost_scale_usd: 0.05,
        }
    }
}

impl PlacementPolicy for WeightedGreedyPolicy {
    fn name(&self) -> String {
        "weighted-greedy".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        let score = |c: &crate::policy::CandidateInfo| {
            let lat = if c.marginal_latency_ms.is_finite() {
                c.marginal_latency_ms / self.latency_scale_ms
            } else {
                1e9
            };
            self.alpha * lat + self.beta * c.marginal_cost_usd / self.cost_scale_usd
        };
        ctx.feasible_candidates()
            .min_by(|a, b| score(a).partial_cmp(&score(b)).unwrap())
            .map_or(PlacementAction::Reject, |c| PlacementAction::Place(c.node))
    }
}

/// Exhaustive lookahead over node sequences for the *remaining* chain
/// positions, scoring each sequence with the same α/β objective the DRL
/// agent optimizes. Exponential in remaining chain length — only usable on
/// tiny instances (the optimality-gap experiment).
///
/// Deeper positions assume fresh instances at the chain's own arrival rate
/// (no cross-request reuse lookahead), which makes this an upper bound on
/// achievable cost rather than the exact offline optimum; the bound is
/// tight on lightly-loaded tiny instances.
#[derive(Debug, Clone)]
pub struct ExhaustivePolicy {
    topology: Topology,
    routes: RoutingTable,
    vnfs: VnfCatalog,
    prices: PriceModel,
    /// Latency weight.
    pub alpha: f64,
    /// Cost weight.
    pub beta: f64,
    /// Latency normalization (ms).
    pub latency_scale_ms: f64,
    /// Cost normalization (USD).
    pub cost_scale_usd: f64,
    /// Mean flow duration in slots × slot seconds (cost horizon).
    pub mean_duration_s: f64,
    /// Guard: maximum `nodes^remaining` sequences to enumerate.
    pub max_sequences: usize,
}

impl ExhaustivePolicy {
    /// Builds the policy from simulation components (cloned).
    pub fn new(
        topology: Topology,
        routes: RoutingTable,
        vnfs: VnfCatalog,
        prices: PriceModel,
        mean_duration_s: f64,
    ) -> Self {
        Self {
            topology,
            routes,
            vnfs,
            prices,
            alpha: 1.0,
            beta: 1.0,
            latency_scale_ms: 50.0,
            cost_scale_usd: 0.05,
            mean_duration_s,
            max_sequences: 200_000,
        }
    }

    fn sequence_score(&self, ctx: &DecisionContext, sequence: &[NodeId]) -> f64 {
        let mut at = ctx.at_node;
        let mut latency = 0.0;
        let mut cost = 0.0;
        for (offset, &node) in sequence.iter().enumerate() {
            let position = ctx.position + offset;
            let vnf = self.vnfs.get(ctx.chain.vnfs[position]);
            let hop = if at == node {
                0.0
            } else {
                self.routes.latency_ms(at, node)
            };
            if !hop.is_finite() {
                return f64::INFINITY;
            }
            latency += hop
                + vnf.base_processing_ms
                + mm1_sojourn_ms(vnf.service_rate_rps, ctx.chain.arrival_rate_rps);
            let node_ref = self.topology.node(node);
            cost += self.prices.deployment_cost
                + self
                    .prices
                    .compute_cost_usd(node_ref, vnf.demand.cpu, self.mean_duration_s)
                + self.prices.traffic_cost_usd(
                    self.topology.node(at),
                    node_ref,
                    if at == node {
                        0.0
                    } else {
                        ctx.chain.traffic_gb
                    },
                );
            at = node;
        }
        self.alpha * latency / self.latency_scale_ms + self.beta * cost / self.cost_scale_usd
    }
}

impl PlacementPolicy for ExhaustivePolicy {
    fn name(&self) -> String {
        "exhaustive".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        let n = self.topology.node_count();
        let remaining = ctx.chain.len() - ctx.position;
        let total_sequences = n.checked_pow(remaining as u32).unwrap_or(usize::MAX);
        assert!(
            total_sequences <= self.max_sequences,
            "exhaustive search over {total_sequences} sequences exceeds the {} cap — \
             use a smaller topology or shorter chains",
            self.max_sequences
        );
        let mut best: Option<(f64, NodeId)> = None;
        let mut sequence = vec![NodeId(0); remaining];
        for seq_index in 0..total_sequences {
            let mut x = seq_index;
            for slot in sequence.iter_mut() {
                *slot = NodeId(x % n);
                x /= n;
            }
            // First step must currently be feasible.
            if !ctx.candidates[sequence[0].0].feasible {
                continue;
            }
            let score = self.sequence_score(ctx, &sequence);
            if score.is_finite() && best.is_none_or(|(b, _)| score < b) {
                best = Some((score, sequence[0]));
            }
        }
        best.map_or(PlacementAction::Reject, |(_, node)| {
            PlacementAction::Place(node)
        })
    }
}

/// Every baseline as a boxed trait object, for experiment loops.
pub fn standard_baselines() -> Vec<Box<dyn PlacementPolicy>> {
    vec![
        Box::new(RandomPolicy),
        Box::new(FirstFitPolicy),
        Box::new(BestFitPolicy),
        Box::new(WorstFitPolicy),
        Box::new(GreedyLatencyPolicy),
        Box::new(GreedyCostPolicy),
        Box::new(CloudOnlyPolicy),
        Box::new(WeightedGreedyPolicy::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CandidateInfo;
    use rand::SeedableRng;
    use sfc::chain::{ChainId, ChainSpec};
    use sfc::request::{Request, RequestId};
    use sfc::vnf::VnfTypeId;

    fn ctx_with(candidates: Vec<CandidateInfo>) -> DecisionContext {
        let mut mask: Vec<bool> = candidates.iter().map(|c| c.feasible).collect();
        mask.push(true);
        DecisionContext {
            encoded_state: vec![0.0; 8],
            mask,
            request: Request::new(RequestId(0), ChainId(0), NodeId(0), 0, 1),
            chain: ChainSpec::new(ChainId(0), "t", vec![VnfTypeId(0)], 100.0, 0.1, 1.0),
            position: 0,
            at_node: NodeId(0),
            consumed_latency_ms: 0.0,
            candidates,
            slot: 0,
        }
    }

    fn candidate(
        i: usize,
        feasible: bool,
        lat: f64,
        cost: f64,
        util: f64,
        cloud: bool,
    ) -> CandidateInfo {
        CandidateInfo {
            node: NodeId(i),
            feasible,
            reuse_available: false,
            marginal_latency_ms: lat,
            marginal_cost_usd: cost,
            utilization: util,
            is_cloud: cloud,
        }
    }

    #[test]
    fn first_fit_picks_lowest_feasible_id() {
        let ctx = ctx_with(vec![
            candidate(0, false, 1.0, 0.1, 0.1, false),
            candidate(1, true, 9.0, 0.9, 0.9, false),
            candidate(2, true, 1.0, 0.1, 0.1, false),
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            FirstFitPolicy.decide(&ctx, &mut rng),
            PlacementAction::Place(NodeId(1))
        );
    }

    #[test]
    fn best_and_worst_fit_order_by_utilization() {
        let ctx = ctx_with(vec![
            candidate(0, true, 1.0, 0.1, 0.2, false),
            candidate(1, true, 1.0, 0.1, 0.8, false),
            candidate(2, true, 1.0, 0.1, 0.5, false),
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            BestFitPolicy.decide(&ctx, &mut rng),
            PlacementAction::Place(NodeId(1))
        );
        assert_eq!(
            WorstFitPolicy.decide(&ctx, &mut rng),
            PlacementAction::Place(NodeId(0))
        );
    }

    #[test]
    fn greedy_latency_and_cost_pick_their_minima() {
        let ctx = ctx_with(vec![
            candidate(0, true, 5.0, 0.50, 0.1, false),
            candidate(1, true, 50.0, 0.01, 0.1, false),
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            GreedyLatencyPolicy.decide(&ctx, &mut rng),
            PlacementAction::Place(NodeId(0))
        );
        assert_eq!(
            GreedyCostPolicy.decide(&ctx, &mut rng),
            PlacementAction::Place(NodeId(1))
        );
    }

    #[test]
    fn cloud_only_requires_cloud() {
        let no_cloud = ctx_with(vec![candidate(0, true, 1.0, 0.1, 0.1, false)]);
        let with_cloud = ctx_with(vec![
            candidate(0, true, 1.0, 0.1, 0.1, false),
            candidate(1, true, 40.0, 0.05, 0.0, true),
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            CloudOnlyPolicy.decide(&no_cloud, &mut rng),
            PlacementAction::Reject
        );
        assert_eq!(
            CloudOnlyPolicy.decide(&with_cloud, &mut rng),
            PlacementAction::Place(NodeId(1))
        );
    }

    #[test]
    fn all_policies_reject_when_nothing_feasible() {
        let ctx = ctx_with(vec![candidate(0, false, 1.0, 0.1, 0.1, false)]);
        let mut rng = StdRng::seed_from_u64(0);
        for mut p in standard_baselines() {
            assert_eq!(
                p.decide(&ctx, &mut rng),
                PlacementAction::Reject,
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn random_only_picks_feasible() {
        let ctx = ctx_with(vec![
            candidate(0, false, 1.0, 0.1, 0.1, false),
            candidate(1, true, 1.0, 0.1, 0.1, false),
            candidate(2, false, 1.0, 0.1, 0.1, false),
        ]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            assert_eq!(
                RandomPolicy.decide(&ctx, &mut rng),
                PlacementAction::Place(NodeId(1))
            );
        }
    }

    #[test]
    fn weighted_greedy_interpolates() {
        let ctx = ctx_with(vec![
            candidate(0, true, 5.0, 0.50, 0.1, false), // fast, expensive
            candidate(1, true, 100.0, 0.001, 0.1, false), // slow, cheap
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut lat_heavy = WeightedGreedyPolicy {
            alpha: 10.0,
            beta: 0.01,
            ..Default::default()
        };
        let mut cost_heavy = WeightedGreedyPolicy {
            alpha: 0.01,
            beta: 10.0,
            ..Default::default()
        };
        assert_eq!(
            lat_heavy.decide(&ctx, &mut rng),
            PlacementAction::Place(NodeId(0))
        );
        assert_eq!(
            cost_heavy.decide(&ctx, &mut rng),
            PlacementAction::Place(NodeId(1))
        );
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = standard_baselines().iter().map(|p| p.name()).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
