//! Scenario configuration: one struct describes everything an experiment
//! needs — topology, workload, pricing, SLA handling and timing.

use edgenet::energy::EnergyModel;
use edgenet::node::Resources;
use edgenet::price::PriceModel;
use edgenet::topology::{Topology, TopologyBuilder};
use rand::Rng;
use serde::{Deserialize, Serialize};
use workload::trace::WorkloadSpec;

/// Which topology the scenario runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// `n` real metro sites, fully meshed, plus a cloud.
    Metro {
        /// Number of edge sites (≤ 16).
        sites: usize,
    },
    /// `n` edge sites in a ring plus a cloud.
    Ring {
        /// Number of edge sites.
        sites: usize,
    },
    /// Waxman random graph (scalability sweeps).
    Waxman {
        /// Number of edge sites.
        sites: usize,
        /// Square side in km.
        side_km: f64,
        /// Waxman α.
        alpha: f64,
        /// Waxman β.
        beta: f64,
    },
}

impl TopologySpec {
    /// Materializes the topology. Waxman uses `rng`; the other presets are
    /// deterministic.
    pub fn build<R: Rng>(&self, builder: &TopologyBuilder, rng: &mut R) -> Topology {
        match *self {
            TopologySpec::Metro { sites } => builder.metro(sites),
            TopologySpec::Ring { sites } => builder.ring(sites),
            TopologySpec::Waxman {
                sites,
                side_km,
                alpha,
                beta,
            } => builder.waxman(sites, side_km, alpha, beta, rng),
        }
    }

    /// Number of edge sites requested.
    pub fn site_count(&self) -> usize {
        match *self {
            TopologySpec::Metro { sites }
            | TopologySpec::Ring { sites }
            | TopologySpec::Waxman { sites, .. } => sites,
        }
    }
}

/// Full scenario: the unit of experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Topology to build.
    pub topology: TopologySpec,
    /// Topology-builder knobs (capacities, cloud latency…).
    pub topology_builder: TopologyBuilder,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Simulation horizon in slots.
    pub horizon_slots: u64,
    /// Wall-clock duration of one slot, in seconds.
    pub slot_seconds: f64,
    /// Pricing model.
    pub prices: PriceModel,
    /// Energy model.
    pub energy: EnergyModel,
    /// Maximum M/M/1 utilization an instance may reach when admitting a
    /// new flow (headroom against bursts), in `(0, 1]`.
    pub max_instance_utilization: f64,
    /// Idle instances older than this many slots are retired at slot end.
    pub idle_retire_slots: u64,
    /// Base RNG seed; every run derives sub-seeds from it.
    pub seed: u64,
}

impl Scenario {
    /// The default evaluation scenario: 8 metro sites + cloud, Poisson
    /// arrivals at a moderate rate, 5-second slots, one simulated hour.
    pub fn default_metro() -> Self {
        Self {
            topology: TopologySpec::Metro { sites: 8 },
            topology_builder: TopologyBuilder::default(),
            workload: WorkloadSpec::poisson(4.0, 4, 12.0),
            horizon_slots: 720,
            slot_seconds: 5.0,
            prices: PriceModel::default(),
            energy: EnergyModel::default(),
            max_instance_utilization: 0.9,
            idle_retire_slots: 6,
            seed: 42,
        }
    }

    /// A small scenario for tests: 4 metro sites, short horizon.
    pub fn small_test() -> Self {
        Self {
            topology: TopologySpec::Metro { sites: 4 },
            workload: WorkloadSpec::poisson(2.0, 4, 6.0),
            horizon_slots: 60,
            ..Self::default_metro()
        }
    }

    /// Validates all components.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        self.workload.validate();
        self.prices.validate();
        self.energy.validate();
        assert!(self.horizon_slots > 0, "horizon must be positive");
        assert!(self.slot_seconds > 0.0, "slot duration must be positive");
        assert!(
            self.max_instance_utilization > 0.0 && self.max_instance_utilization <= 1.0,
            "max instance utilization must be in (0,1]"
        );
        assert!(
            self.topology.site_count() >= 1,
            "need at least one edge site"
        );
    }

    /// Returns a copy with a different arrival-rate constant (for λ sweeps).
    /// Only meaningful when the pattern is `Constant`.
    pub fn with_arrival_rate(&self, rate: f64) -> Self {
        let mut s = self.clone();
        s.workload.pattern = workload::pattern::LoadPattern::Constant { rate };
        s
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut s = self.clone();
        s.seed = seed;
        s
    }

    /// Returns a copy with uniformly scaled edge capacity.
    pub fn with_edge_capacity(&self, capacity: Resources) -> Self {
        let mut s = self.clone();
        s.topology_builder.edge_capacity = capacity;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_scenario_validates() {
        Scenario::default_metro().validate();
        Scenario::small_test().validate();
    }

    #[test]
    fn topology_spec_builds_requested_sites() {
        let mut rng = StdRng::seed_from_u64(0);
        let builder = TopologyBuilder::default();
        let metro = TopologySpec::Metro { sites: 5 }.build(&builder, &mut rng);
        assert_eq!(metro.edge_nodes().len(), 5);
        let ring = TopologySpec::Ring { sites: 6 }.build(&builder, &mut rng);
        assert_eq!(ring.edge_nodes().len(), 6);
        let wax = TopologySpec::Waxman {
            sites: 7,
            side_km: 300.0,
            alpha: 0.8,
            beta: 0.4,
        }
        .build(&builder, &mut rng);
        assert_eq!(wax.edge_nodes().len(), 7);
    }

    #[test]
    fn with_arrival_rate_changes_pattern_only() {
        let s = Scenario::default_metro().with_arrival_rate(9.0);
        assert_eq!(
            s.workload.pattern,
            workload::pattern::LoadPattern::Constant { rate: 9.0 }
        );
        assert_eq!(s.horizon_slots, Scenario::default_metro().horizon_slots);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let mut s = Scenario::small_test();
        s.horizon_slots = 0;
        s.validate();
    }
}
