//! Scenario configuration: one struct describes everything an experiment
//! needs — topology, workload, pricing, SLA handling and timing.

use edgenet::energy::EnergyModel;
use edgenet::node::{NodeId, Resources};
use edgenet::price::PriceModel;
use edgenet::topology::{Topology, TopologyBuilder};
use edgenet::view::NetworkEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use workload::trace::WorkloadSpec;

/// Which topology the scenario runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// `n` real metro sites, fully meshed, plus a cloud.
    Metro {
        /// Number of edge sites (≤ 16).
        sites: usize,
    },
    /// `n` edge sites in a ring plus a cloud.
    Ring {
        /// Number of edge sites.
        sites: usize,
    },
    /// Waxman random graph (scalability sweeps).
    Waxman {
        /// Number of edge sites.
        sites: usize,
        /// Square side in km.
        side_km: f64,
        /// Waxman α.
        alpha: f64,
        /// Waxman β.
        beta: f64,
    },
}

impl TopologySpec {
    /// Materializes the topology. Waxman uses `rng`; the other presets are
    /// deterministic.
    pub fn build<R: Rng>(&self, builder: &TopologyBuilder, rng: &mut R) -> Topology {
        match *self {
            TopologySpec::Metro { sites } => builder.metro(sites),
            TopologySpec::Ring { sites } => builder.ring(sites),
            TopologySpec::Waxman {
                sites,
                side_km,
                alpha,
                beta,
            } => builder.waxman(sites, side_km, alpha, beta, rng),
        }
    }

    /// Number of edge sites requested.
    pub fn site_count(&self) -> usize {
        match *self {
            TopologySpec::Metro { sites }
            | TopologySpec::Ring { sites }
            | TopologySpec::Waxman { sites, .. } => sites,
        }
    }
}

/// A network event pinned to a simulation slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Slot at which the event fires (applied at slot start, after
    /// departures, before arrivals).
    pub slot: u64,
    /// The event itself.
    pub event: NetworkEvent,
}

/// Stochastic failure/repair process for edge nodes: each live edge node
/// fails independently per slot; a failed node recovers after a
/// geometrically distributed downtime. The cloud never fails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-slot failure probability of each live edge node, in `[0, 1)`.
    pub failure_rate: f64,
    /// Mean downtime in slots (geometric, minimum 1).
    pub mean_downtime_slots: f64,
    /// Cap on simultaneously failed nodes (keeps the network usable).
    pub max_concurrent_down: usize,
}

impl FailureModel {
    /// Validates the model.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.failure_rate),
            "failure rate must be in [0, 1)"
        );
        assert!(
            self.mean_downtime_slots >= 1.0,
            "mean downtime must be at least one slot"
        );
        assert!(
            self.max_concurrent_down >= 1,
            "max concurrent failures must be at least 1 (0 silences the process)"
        );
    }
}

/// The scenario's network-event timeline: what happens to the network
/// itself (as opposed to the workload) over the horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventSchedule {
    /// Static network: no events (the classic experiments).
    None,
    /// Explicit, hand-written timeline (targeted what-if scenarios).
    Timeline(Vec<TimedEvent>),
    /// Seeded stochastic failure/repair process (resilience sweeps). The
    /// realized timeline is a pure function of the scenario seed, so two
    /// simulations of the same scenario see identical failures even when
    /// their workload seeds differ — failure variance and workload
    /// variance stay separable.
    Stochastic(FailureModel),
}

impl EventSchedule {
    /// `true` when the schedule can emit at least one event.
    pub fn is_dynamic(&self) -> bool {
        match self {
            EventSchedule::None => false,
            EventSchedule::Timeline(events) => !events.is_empty(),
            EventSchedule::Stochastic(model) => model.failure_rate > 0.0,
        }
    }

    /// Validates schedule parameters (node references are checked against
    /// the concrete topology in [`EventSchedule::materialize`]).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        if let EventSchedule::Stochastic(model) = self {
            model.validate();
        }
    }

    /// Realizes the schedule against a concrete topology as a slot-keyed
    /// event map. Deterministic: the stochastic variant draws from an RNG
    /// derived only from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if an explicit event references a node outside the topology.
    pub fn materialize(
        &self,
        topology: &Topology,
        horizon_slots: u64,
        seed: u64,
    ) -> BTreeMap<u64, Vec<NetworkEvent>> {
        let mut timeline: BTreeMap<u64, Vec<NetworkEvent>> = BTreeMap::new();
        match self {
            EventSchedule::None => {}
            EventSchedule::Timeline(events) => {
                let n = topology.node_count();
                for te in events {
                    let in_range = |node: NodeId| {
                        assert!(
                            node.0 < n,
                            "event at slot {} references {node} outside the {n}-node topology",
                            te.slot
                        );
                    };
                    match te.event {
                        NetworkEvent::NodeDown { node }
                        | NetworkEvent::NodeUp { node }
                        | NetworkEvent::CapacityDegrade { node, .. } => in_range(node),
                        NetworkEvent::LinkLatencyShift { a, b, .. } => {
                            in_range(a);
                            in_range(b);
                        }
                    }
                    timeline.entry(te.slot).or_default().push(te.event.clone());
                }
            }
            EventSchedule::Stochastic(model) => {
                model.validate();
                let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD1B5_4A32) ^ 0xFA17_0E55);
                let edges = topology.edge_nodes();
                // node -> recovery slot for currently-down nodes.
                let mut down: BTreeMap<NodeId, u64> = BTreeMap::new();
                for slot in 0..horizon_slots {
                    let recovered: Vec<NodeId> = down
                        .iter()
                        .filter(|&(_, &at)| at == slot)
                        .map(|(&node, _)| node)
                        .collect();
                    for node in recovered {
                        down.remove(&node);
                        timeline
                            .entry(slot)
                            .or_default()
                            .push(NetworkEvent::NodeUp { node });
                    }
                    for &node in &edges {
                        if down.contains_key(&node) || down.len() >= model.max_concurrent_down {
                            continue;
                        }
                        if rng.gen::<f64>() < model.failure_rate {
                            // Geometric downtime with the given mean.
                            let p = (1.0 / model.mean_downtime_slots).clamp(f64::MIN_POSITIVE, 1.0);
                            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                            let downtime =
                                (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).floor() as u64 + 1;
                            down.insert(node, slot + downtime);
                            timeline
                                .entry(slot)
                                .or_default()
                                .push(NetworkEvent::NodeDown { node });
                        }
                    }
                }
            }
        }
        timeline
    }
}

/// Full scenario: the unit of experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Topology to build.
    pub topology: TopologySpec,
    /// Topology-builder knobs (capacities, cloud latency…).
    pub topology_builder: TopologyBuilder,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Simulation horizon in slots.
    pub horizon_slots: u64,
    /// Wall-clock duration of one slot, in seconds.
    pub slot_seconds: f64,
    /// Pricing model.
    pub prices: PriceModel,
    /// Energy model.
    pub energy: EnergyModel,
    /// Maximum M/M/1 utilization an instance may reach when admitting a
    /// new flow (headroom against bursts), in `(0, 1]`.
    pub max_instance_utilization: f64,
    /// Idle instances older than this many slots are retired at slot end.
    pub idle_retire_slots: u64,
    /// Network-event timeline (failures, recoveries, link shifts).
    pub events: EventSchedule,
    /// Base RNG seed; every run derives sub-seeds from it.
    pub seed: u64,
}

impl Scenario {
    /// The default evaluation scenario: 8 metro sites + cloud, Poisson
    /// arrivals at a moderate rate, 5-second slots, one simulated hour.
    pub fn default_metro() -> Self {
        Self {
            topology: TopologySpec::Metro { sites: 8 },
            topology_builder: TopologyBuilder::default(),
            workload: WorkloadSpec::poisson(4.0, 4, 12.0),
            horizon_slots: 720,
            slot_seconds: 5.0,
            prices: PriceModel::default(),
            energy: EnergyModel::default(),
            max_instance_utilization: 0.9,
            idle_retire_slots: 6,
            events: EventSchedule::None,
            seed: 42,
        }
    }

    /// A small scenario for tests: 4 metro sites, short horizon.
    pub fn small_test() -> Self {
        Self {
            topology: TopologySpec::Metro { sites: 4 },
            workload: WorkloadSpec::poisson(2.0, 4, 6.0),
            horizon_slots: 60,
            ..Self::default_metro()
        }
    }

    /// Validates all components.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        self.workload.validate();
        self.prices.validate();
        self.energy.validate();
        self.events.validate();
        assert!(self.horizon_slots > 0, "horizon must be positive");
        assert!(self.slot_seconds > 0.0, "slot duration must be positive");
        assert!(
            self.max_instance_utilization > 0.0 && self.max_instance_utilization <= 1.0,
            "max instance utilization must be in (0,1]"
        );
        assert!(
            self.topology.site_count() >= 1,
            "need at least one edge site"
        );
    }

    /// Returns a copy with a different arrival-rate constant (for λ sweeps).
    /// Only meaningful when the pattern is `Constant`.
    pub fn with_arrival_rate(&self, rate: f64) -> Self {
        let mut s = self.clone();
        s.workload.pattern = workload::pattern::LoadPattern::Constant { rate };
        s
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut s = self.clone();
        s.seed = seed;
        s
    }

    /// Returns a copy with uniformly scaled edge capacity.
    pub fn with_edge_capacity(&self, capacity: Resources) -> Self {
        let mut s = self.clone();
        s.topology_builder.edge_capacity = capacity;
        s
    }

    /// Returns a copy with a seeded stochastic failure/repair process
    /// (`failure_rate` per edge node per slot, geometric downtimes with
    /// the given mean, at most half the edge sites down at once).
    pub fn with_failures(&self, failure_rate: f64, mean_downtime_slots: f64) -> Self {
        let mut s = self.clone();
        s.events = EventSchedule::Stochastic(FailureModel {
            failure_rate,
            mean_downtime_slots,
            max_concurrent_down: (self.topology.site_count() / 2).max(1),
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_scenario_validates() {
        Scenario::default_metro().validate();
        Scenario::small_test().validate();
    }

    #[test]
    fn topology_spec_builds_requested_sites() {
        let mut rng = StdRng::seed_from_u64(0);
        let builder = TopologyBuilder::default();
        let metro = TopologySpec::Metro { sites: 5 }.build(&builder, &mut rng);
        assert_eq!(metro.edge_nodes().len(), 5);
        let ring = TopologySpec::Ring { sites: 6 }.build(&builder, &mut rng);
        assert_eq!(ring.edge_nodes().len(), 6);
        let wax = TopologySpec::Waxman {
            sites: 7,
            side_km: 300.0,
            alpha: 0.8,
            beta: 0.4,
        }
        .build(&builder, &mut rng);
        assert_eq!(wax.edge_nodes().len(), 7);
    }

    #[test]
    fn with_arrival_rate_changes_pattern_only() {
        let s = Scenario::default_metro().with_arrival_rate(9.0);
        assert_eq!(
            s.workload.pattern,
            workload::pattern::LoadPattern::Constant { rate: 9.0 }
        );
        assert_eq!(s.horizon_slots, Scenario::default_metro().horizon_slots);
    }

    #[test]
    fn stochastic_schedule_is_deterministic_and_respects_caps() {
        let topo = TopologyBuilder::default().metro(6);
        let schedule = EventSchedule::Stochastic(FailureModel {
            failure_rate: 0.05,
            mean_downtime_slots: 10.0,
            max_concurrent_down: 2,
        });
        let a = schedule.materialize(&topo, 400, 7);
        let b = schedule.materialize(&topo, 400, 7);
        assert_eq!(a, b, "same seed must realize the same timeline");
        assert_ne!(
            a,
            schedule.materialize(&topo, 400, 8),
            "different seeds should (overwhelmingly) differ"
        );
        assert!(!a.is_empty(), "5% over 400 slots should fail something");
        // Replay the timeline: the down-set never exceeds the cap, only
        // edge nodes fail, and every failure eventually pairs with at most
        // one recovery.
        let cloud = topo.cloud_node().unwrap();
        let mut down = std::collections::BTreeSet::new();
        for events in a.values() {
            for event in events {
                match *event {
                    NetworkEvent::NodeDown { node } => {
                        assert_ne!(node, cloud, "the cloud never fails");
                        assert!(down.insert(node), "double failure of {node}");
                    }
                    NetworkEvent::NodeUp { node } => {
                        assert!(down.remove(&node), "recovery of a live node");
                    }
                    _ => panic!("stochastic schedule only emits node events"),
                }
            }
            assert!(down.len() <= 2, "concurrent-failure cap violated");
        }
    }

    #[test]
    fn explicit_timeline_groups_by_slot() {
        let topo = TopologyBuilder::default().metro(3);
        let schedule = EventSchedule::Timeline(vec![
            TimedEvent {
                slot: 5,
                event: NetworkEvent::NodeDown {
                    node: edgenet::node::NodeId(1),
                },
            },
            TimedEvent {
                slot: 5,
                event: NetworkEvent::CapacityDegrade {
                    node: edgenet::node::NodeId(0),
                    factor: 0.5,
                },
            },
            TimedEvent {
                slot: 9,
                event: NetworkEvent::NodeUp {
                    node: edgenet::node::NodeId(1),
                },
            },
        ]);
        let timeline = schedule.materialize(&topo, 20, 0);
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[&5].len(), 2);
        assert_eq!(timeline[&9].len(), 1);
        assert!(schedule.is_dynamic());
        assert!(!EventSchedule::None.is_dynamic());
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn timeline_event_on_unknown_node_rejected() {
        let topo = TopologyBuilder::default().metro(3);
        EventSchedule::Timeline(vec![TimedEvent {
            slot: 0,
            event: NetworkEvent::NodeDown {
                node: edgenet::node::NodeId(99),
            },
        }])
        .materialize(&topo, 10, 0);
    }

    #[test]
    #[should_panic(expected = "failure rate")]
    fn invalid_failure_rate_rejected() {
        let s = Scenario::small_test().with_failures(1.5, 10.0);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let mut s = Scenario::small_test();
        s.horizon_slots = 0;
        s.validate();
    }
}
