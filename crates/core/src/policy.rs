//! The policy abstraction every manager (DRL and heuristic) implements,
//! plus the per-decision context the simulation engine hands to policies.

use crate::action::PlacementAction;
use edgenet::node::NodeId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use sfc::chain::ChainSpec;
use sfc::request::Request;

/// Everything a policy may want to know about one candidate node for the
/// next VNF of the pending request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateInfo {
    /// The candidate node.
    pub node: NodeId,
    /// Whether placement here is currently possible (reachable and either
    /// a reusable instance exists or a new one fits).
    pub feasible: bool,
    /// Whether an existing instance with queueing headroom can be reused
    /// (no new deployment needed).
    pub reuse_available: bool,
    /// Marginal latency of choosing this node: network hop + fixed
    /// processing + M/M/1 sojourn at the post-admission load (ms).
    pub marginal_latency_ms: f64,
    /// Marginal monetary cost of choosing this node: deployment (if a new
    /// instance is needed) + its compute cost over the flow's lifetime +
    /// hop traffic cost (USD).
    pub marginal_cost_usd: f64,
    /// Node's dominant resource utilization before this placement.
    pub utilization: f64,
    /// `true` for the cloud node.
    pub is_cloud: bool,
}

/// One decision point: place the `position`-th VNF of `request`'s chain.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionContext {
    /// DQN observation vector.
    pub encoded_state: Vec<f32>,
    /// Valid-action mask (length `node_count + 1`; last entry = reject,
    /// always `true`).
    pub mask: Vec<bool>,
    /// The pending request.
    pub request: Request,
    /// Its chain specification.
    pub chain: ChainSpec,
    /// Index of the VNF being placed.
    pub position: usize,
    /// Where the previous VNF landed (request source for position 0).
    pub at_node: NodeId,
    /// Latency accumulated by earlier hops (ms).
    pub consumed_latency_ms: f64,
    /// Per-node candidate details (index = node id).
    pub candidates: Vec<CandidateInfo>,
    /// Current slot.
    pub slot: u64,
}

impl DecisionContext {
    /// Feasible candidates only.
    pub fn feasible_candidates(&self) -> impl Iterator<Item = &CandidateInfo> {
        self.candidates.iter().filter(|c| c.feasible)
    }

    /// `true` if at least one node can host the next VNF.
    pub fn any_feasible(&self) -> bool {
        self.candidates.iter().any(|c| c.feasible)
    }
}

/// Learning signal delivered to a policy after a decision it made.
///
/// Feedback *borrows* the engine-owned observation buffers: the engine
/// reuses them across decisions, so delivering feedback allocates nothing.
/// A policy that stores experience (DRL replay) clones what it keeps —
/// heuristics and frozen evaluation runs copy nothing at all.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionFeedback<'a> {
    /// Observation the decision was made from.
    pub state: &'a [f32],
    /// Valid-action mask the decision was made under.
    pub mask: &'a [bool],
    /// Encoded action index taken.
    pub action_index: usize,
    /// Shaped reward.
    pub reward: f32,
    /// Observation at the next decision point (zeros when `done`).
    pub next_state: &'a [f32],
    /// Valid-action mask at the next decision point.
    pub next_mask: &'a [bool],
    /// Whether this decision ended the request's placement episode.
    pub done: bool,
}

/// A placement policy: the object under evaluation in every experiment.
///
/// The simulation engine guarantees that `decide` is only asked when the
/// mask has at least one `true` entry (reject is always valid) and that
/// `observe` receives feedback for every decision, in order.
pub trait PlacementPolicy {
    /// Stable, human-readable policy name (table row label).
    fn name(&self) -> String;

    /// Chooses an action for the decision point.
    ///
    /// Must return an action whose mask entry is `true`.
    fn decide(&mut self, ctx: &DecisionContext, rng: &mut StdRng) -> PlacementAction;

    /// Receives the learning signal for a past decision. Heuristics ignore
    /// this.
    fn observe(&mut self, feedback: DecisionFeedback<'_>, rng: &mut StdRng) {
        let _ = (feedback, rng);
    }

    /// `true` when the policy can answer a whole slot's pending decisions
    /// through [`PlacementPolicy::greedy_batch`]. Network-backed policies
    /// return `true` in (greedy, frozen) evaluation mode only — batched
    /// selection has no exploration rng stream, so a training policy must
    /// keep the per-decision path to preserve its draw order. Heuristics
    /// decide in nanoseconds and gain nothing from batching.
    fn supports_greedy_batch(&self) -> bool {
        false
    }

    /// Greedy actions for a batch of decisions: one encoded state per row
    /// of `states`, row-major valid-action `masks`
    /// (`masks[row * mask_stride + action]`), one selected action index
    /// per row pushed into `out` (cleared first).
    ///
    /// Only called when [`PlacementPolicy::supports_greedy_batch`] is
    /// `true`. Implementations must select exactly what `decide` would
    /// pick for each row in isolation — the engine's batched decision
    /// loop relies on that to stay bit-identical to the sequential path.
    fn greedy_batch(&mut self, states: &nn::tensor::Matrix, masks: &[bool], out: &mut Vec<usize>) {
        let _ = (states, masks, out);
        unreachable!("greedy_batch called on a policy that does not support it");
    }

    /// Switches between training (explore + learn) and evaluation (greedy,
    /// frozen) behaviour. Heuristics ignore this.
    fn set_training(&mut self, training: bool) {
        let _ = training;
    }

    /// `true` if the policy learns online (affects how runners report it).
    fn is_learning(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc::chain::ChainId;
    use sfc::request::RequestId;

    fn ctx(feasible: &[bool]) -> DecisionContext {
        let candidates: Vec<CandidateInfo> = feasible
            .iter()
            .enumerate()
            .map(|(i, &f)| CandidateInfo {
                node: NodeId(i),
                feasible: f,
                reuse_available: false,
                marginal_latency_ms: 1.0,
                marginal_cost_usd: 0.01,
                utilization: 0.0,
                is_cloud: false,
            })
            .collect();
        let mut mask: Vec<bool> = feasible.to_vec();
        mask.push(true);
        DecisionContext {
            encoded_state: vec![0.0; 4],
            mask,
            request: Request::new(RequestId(0), ChainId(0), NodeId(0), 0, 1),
            chain: ChainSpec::new(
                ChainId(0),
                "c",
                vec![sfc::vnf::VnfTypeId(0)],
                10.0,
                0.1,
                1.0,
            ),
            position: 0,
            at_node: NodeId(0),
            consumed_latency_ms: 0.0,
            candidates,
            slot: 0,
        }
    }

    #[test]
    fn feasible_candidates_filters() {
        let c = ctx(&[true, false, true]);
        assert_eq!(c.feasible_candidates().count(), 2);
        assert!(c.any_feasible());
    }

    #[test]
    fn no_feasible_detected() {
        let c = ctx(&[false, false]);
        assert!(!c.any_feasible());
        // Reject stays available in the mask.
        assert_eq!(c.mask, vec![false, false, true]);
    }
}
