//! # mano — DRL-based VNF management in geo-distributed edge computing
//!
//! The paper's primary contribution, reproduced end to end: online VNF
//! placement, instance scaling (spawn/reuse/retire) and request admission
//! for service function chains across geo-distributed edge nodes and a
//! remote cloud, driven by a deep Q-network.
//!
//! * **MDP formulation** — [`state`] (observation encoding), [`action`]
//!   (place-on-node / reject with feasibility masks), [`reward`]
//!   (α·latency + β·cost shaping with acceptance bonuses).
//! * **Engine** — [`sim`] drives the flow lifecycle over a discrete-event
//!   [`timeline`]: arrivals → per-VNF placement decisions → departures →
//!   cost accounting, with a slot-compatibility schedule that reproduces
//!   the paper's slotted loop bit for bit. DRL and heuristics run through
//!   the identical code path.
//! * **Managers** — [`drl`] (the DQN policy) and [`baselines`] (random,
//!   first/best/worst-fit, greedy-latency, greedy-cost, cloud-only,
//!   weighted-greedy, exhaustive).
//! * **Harness support** — [`runner`] (training/evaluation),
//!   [`metrics`]/[`report`] (summaries, CSV, markdown).
//!
//! # Examples
//!
//! ```
//! use mano::prelude::*;
//!
//! // Evaluate two heuristics on an identical 4-site workload.
//! let scenario = Scenario::small_test();
//! let mut policies: Vec<Box<dyn PlacementPolicy>> = vec![
//!     Box::new(FirstFitPolicy),
//!     Box::new(GreedyLatencyPolicy),
//! ];
//! let results = compare_policies(&scenario, RewardConfig::default(), &mut policies, 0);
//! assert_eq!(results.len(), 2);
//! println!("{}", markdown_comparison(&results));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod baselines;
pub mod config;
pub mod drl;
pub mod metrics;
pub mod pg;
pub mod policy;
pub mod report;
pub mod reward;
pub mod runner;
pub mod sim;
pub mod state;
pub mod telemetry;
pub mod timeline;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::action::{ActionSpace, PlacementAction};
    pub use crate::baselines::{
        standard_baselines, BestFitPolicy, CloudOnlyPolicy, ExhaustivePolicy, FirstFitPolicy,
        GreedyCostPolicy, GreedyLatencyPolicy, RandomPolicy, WeightedGreedyPolicy, WorstFitPolicy,
    };
    pub use crate::config::{EventSchedule, FailureModel, Scenario, TimedEvent, TopologySpec};
    pub use crate::drl::{DrlManagerConfig, DrlPolicy};
    pub use crate::metrics::{
        aggregate_summaries, MetricStats, MetricsCollector, RunSummary, SlotRecord,
        SummaryAggregate, SUMMARY_METRICS,
    };
    pub use crate::pg::{train_pg, PgManagerConfig, PgPolicy};
    pub use crate::policy::{CandidateInfo, DecisionContext, DecisionFeedback, PlacementPolicy};
    pub use crate::report::{
        aggregate_csv_header, aggregate_csv_row, convergence_csv, group_aggregates,
        load_bench_report, load_search_report, markdown_aggregate_comparison, markdown_comparison,
        slot_csv_header, slot_csv_row, summary_csv_header, summary_csv_row, summary_from_json,
        summary_json, write_lines, BenchAggregate, BenchCell, BenchReport, SearchCandidate,
        SearchPointReport, SearchReport, BENCH_SCHEMA_VERSION, SEARCH_SCHEMA_VERSION,
    };
    pub use crate::reward::{RewardConfig, INFEASIBLE_LATENCY_MS};
    pub use crate::runner::{
        compare_policies, evaluate_policy, evaluate_policy_with_catalogs,
        evaluate_policy_with_semantics, moving_average, train_drl, train_drl_with_catalogs,
        PolicyResult, TrainedDrl,
    };
    pub use crate::sim::{
        BillingMode, DecisionSemantics, MetricsMode, PlacementOutcome, RunEngine, RunInput,
        RunOptions, Simulation, TimedArrival,
    };
    pub use crate::state::{StateEncoder, StateEncoderConfig};
    pub use crate::telemetry::{
        FlowOutcome, FlowRecord, FlowTotals, RingBuffer, SimSnapshot, StreamingStat, TelemetrySink,
    };
    pub use crate::timeline::{EventQueue, SimEvent, SimEventKind, SimTime};
}
