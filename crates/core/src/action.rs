//! The discrete action space of the placement MDP.
//!
//! One decision = "where does the *next* VNF of the pending request go":
//! actions `0..node_count` place it on that node (edge or cloud); the last
//! action rejects the request outright.

use edgenet::node::NodeId;
use serde::{Deserialize, Serialize};

/// A decoded placement action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementAction {
    /// Host the next VNF on this node.
    Place(NodeId),
    /// Reject the request (its remaining VNFs are not placed).
    Reject,
}

/// Fixed-size action space over `node_count` nodes plus reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSpace {
    node_count: usize,
}

impl ActionSpace {
    /// Creates the action space for a topology with `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    pub fn new(node_count: usize) -> Self {
        assert!(node_count > 0, "action space needs at least one node");
        Self { node_count }
    }

    /// Number of discrete actions (`node_count + 1`).
    pub fn len(&self) -> usize {
        self.node_count + 1
    }

    /// `false` — the space always contains at least reject.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of placeable nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Index of the reject action.
    pub fn reject_index(&self) -> usize {
        self.node_count
    }

    /// Decodes an action index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn decode(&self, index: usize) -> PlacementAction {
        assert!(
            index < self.len(),
            "action index {index} out of range (len {})",
            self.len()
        );
        if index == self.node_count {
            PlacementAction::Reject
        } else {
            PlacementAction::Place(NodeId(index))
        }
    }

    /// Encodes a placement action as an index.
    pub fn encode(&self, action: PlacementAction) -> usize {
        match action {
            PlacementAction::Place(node) => {
                assert!(node.0 < self.node_count, "node {node} out of range");
                node.0
            }
            PlacementAction::Reject => self.node_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let space = ActionSpace::new(5);
        assert_eq!(space.len(), 6);
        for i in 0..space.len() {
            let a = space.decode(i);
            assert_eq!(space.encode(a), i);
        }
    }

    #[test]
    fn last_action_is_reject() {
        let space = ActionSpace::new(3);
        assert_eq!(space.decode(3), PlacementAction::Reject);
        assert_eq!(space.reject_index(), 3);
        assert_eq!(space.decode(0), PlacementAction::Place(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_decode_panics() {
        let _ = ActionSpace::new(2).decode(5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_encode_panics() {
        let _ = ActionSpace::new(2).encode(PlacementAction::Place(NodeId(7)));
    }
}
