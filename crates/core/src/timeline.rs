//! The discrete-event timeline: a millisecond-resolution clock
//! ([`SimTime`]), the engine's event vocabulary ([`SimEvent`]), and a
//! deterministic priority queue ([`EventQueue`]).
//!
//! # Ordering guarantees
//!
//! Events pop in ascending `(time, kind_rank, sequence_id)` order:
//!
//! 1. **`time`** — the millisecond timestamp the event was scheduled for.
//! 2. **`kind_rank`** — a total order over event kinds at the *same*
//!    timestamp, chosen to mirror the slot engine's phase order so a
//!    slot-boundary schedule reproduces the slot loop exactly:
//!    [`SimEvent::FlowDeparture`] (0) < [`SimEvent::Network`] (1) <
//!    [`SimEvent::RetireCheck`] (2) < [`SimEvent::FlowArrival`] (3) <
//!    [`SimEvent::PolicyDecision`] (4).
//! 3. **`sequence_id`** — a monotone insertion counter breaking every
//!    remaining tie, so events of one kind at one timestamp pop in the
//!    order they were scheduled (arrivals keep trace order, a timeline's
//!    network events keep their declared order).
//!
//! Billing is deliberately *not* an event: the engine bills every
//! completed slot lazily before touching any event at a later timestamp,
//! which is what makes a long idle stretch cost O(slots billed) instead
//! of O(heap traffic) — see `docs/timeline.md` for the engine-side
//! contract and how to add new event kinds.

use edgenet::view::NetworkEvent;
use sfc::request::{Request, RequestId};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A point on the simulation clock, in integer milliseconds.
///
/// Slots are spans of `slot_ms` milliseconds: slot `s` covers
/// `[s·slot_ms, (s+1)·slot_ms)`. The slot engine only ever produces
/// boundary times; the sparse engine may schedule anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the clock.
    pub const ZERO: SimTime = SimTime(0);

    /// A time from an absolute millisecond count.
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms)
    }

    /// The boundary that starts slot `slot` when slots last `slot_ms` ms.
    pub fn from_slot(slot: u64, slot_ms: u64) -> Self {
        SimTime(slot.saturating_mul(slot_ms))
    }

    /// Absolute milliseconds since the origin.
    pub fn ms(self) -> u64 {
        self.0
    }

    /// Index of the slot containing this instant (boundaries belong to
    /// the slot they start).
    pub fn slot(self, slot_ms: u64) -> u64 {
        debug_assert!(slot_ms > 0, "slots must have positive length");
        self.0 / slot_ms.max(1)
    }

    /// This time advanced by `delay_ms`.
    pub fn plus_ms(self, delay_ms: u64) -> Self {
        SimTime(self.0.saturating_add(delay_ms))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// The kind of a [`SimEvent`], in rank order (the same-timestamp
/// tiebreak). The discriminant IS the documented `kind_rank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimEventKind {
    /// A flow reaches the end of its holding time.
    FlowDeparture = 0,
    /// A network change (failure, recovery, latency/capacity shift).
    Network = 1,
    /// Re-examine idle instances against the retirement grace period.
    RetireCheck = 2,
    /// A request arrives and is staged for placement.
    FlowArrival = 3,
    /// The policy decides one staged arrival's placement episode.
    PolicyDecision = 4,
}

impl SimEventKind {
    /// The documented same-timestamp rank (lower pops first).
    pub fn rank(self) -> u8 {
        self as u8
    }
}

/// One schedulable occurrence on the timeline.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A flow reaches the end of its holding time and releases its
    /// instances. Stale duplicates (e.g. from a re-placed flow) are
    /// ignored by the engine via the flow's recorded departure time.
    FlowDeparture {
        /// The departing flow's request id.
        request: RequestId,
    },
    /// A network change to apply. Same-timestamp network events are
    /// drained as one batch, exactly like the slot engine's per-slot
    /// event list.
    Network(NetworkEvent),
    /// Re-examine idle instances against the retirement grace period.
    /// Checks are cheap idempotent sweeps; duplicates are harmless.
    RetireCheck,
    /// A request arrives. Same-timestamp arrivals are staged together so
    /// speculative batch assembly can group them into one forward pass.
    FlowArrival(Request),
    /// Run the placement episode for staged arrival `row`.
    PolicyDecision {
        /// Index into the currently staged arrival group.
        row: usize,
    },
}

impl SimEvent {
    /// This event's kind (and therefore its same-timestamp rank).
    pub fn kind(&self) -> SimEventKind {
        match self {
            SimEvent::FlowDeparture { .. } => SimEventKind::FlowDeparture,
            SimEvent::Network(_) => SimEventKind::Network,
            SimEvent::RetireCheck => SimEventKind::RetireCheck,
            SimEvent::FlowArrival(_) => SimEventKind::FlowArrival,
            SimEvent::PolicyDecision { .. } => SimEventKind::PolicyDecision,
        }
    }
}

/// A queue entry; ordering compares only the `(time, rank, seq)` key —
/// `seq` is unique per queue, so the order is total and deterministic.
#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    rank: u8,
    seq: u64,
    event: SimEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.time == other.time && self.rank == other.rank
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.rank, self.seq).cmp(&(other.time, other.rank, other.seq))
    }
}

/// A binary-heap event queue with the deterministic
/// `(time, kind_rank, sequence_id)` pop order and a clock that advances
/// to each popped event's timestamp.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The queue's current time: the timestamp of the last popped event
    /// (time never moves backwards).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped over the queue's lifetime (the engine's
    /// events-processed meter).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the queue's past — scheduling behind the
    /// clock would silently reorder history and break determinism.
    pub fn schedule_at(&mut self, at: SimTime, event: SimEvent) {
        assert!(
            at >= self.now,
            "cannot schedule {:?} at {at} — the clock is already at {}",
            event.kind(),
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            time: at,
            rank: event.kind().rank(),
            seq,
            event,
        }));
    }

    /// Schedules `event` `delay_ms` milliseconds after the queue's
    /// current time — the canonical way to express relative deadlines
    /// (departures, grace periods) without tracking the clock yourself.
    ///
    /// # Examples
    ///
    /// ```
    /// use mano::timeline::{EventQueue, SimEvent, SimTime};
    /// use sfc::request::RequestId;
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule_at(SimTime::from_ms(5_000), SimEvent::RetireCheck);
    /// // Relative: 2 s after the queue's current time (still 0 ms).
    /// q.schedule_in(2_000, SimEvent::FlowDeparture { request: RequestId(7) });
    ///
    /// // The departure pops first (earlier absolute time) and the clock
    /// // follows it.
    /// let (t, ev) = q.pop().expect("two events queued");
    /// assert_eq!(t, SimTime::from_ms(2_000));
    /// assert!(matches!(ev, SimEvent::FlowDeparture { .. }));
    /// assert_eq!(q.now(), SimTime::from_ms(2_000));
    ///
    /// // Relative scheduling now measures from the advanced clock.
    /// q.schedule_in(500, SimEvent::RetireCheck);
    /// assert_eq!(q.pop().expect("retire check").0, SimTime::from_ms(2_500));
    /// ```
    pub fn schedule_in(&mut self, delay_ms: u64, event: SimEvent) {
        self.schedule_at(self.now.plus_ms(delay_ms), event);
    }

    /// The `(time, kind)` key of the next event, without popping it.
    pub fn peek(&self) -> Option<(SimTime, SimEventKind)> {
        self.heap.peek().map(|Reverse(s)| (s.time, s.event.kind()))
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, SimEvent)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.time;
        self.popped += 1;
        Some((s.time, s.event))
    }

    /// Pops the next event only if it matches `(time, kind)` exactly —
    /// the group-draining primitive (all same-timestamp network events,
    /// all same-timestamp arrivals).
    pub fn pop_if(&mut self, time: SimTime, kind: SimEventKind) -> Option<SimEvent> {
        match self.peek() {
            Some((t, k)) if t == time && k == kind => self.pop().map(|(_, ev)| ev),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_rank_then_seq_order() {
        let mut q = EventQueue::new();
        // Same timestamp, inserted in deliberately shuffled kind order.
        q.schedule_at(SimTime::from_ms(10), SimEvent::PolicyDecision { row: 0 });
        q.schedule_at(SimTime::from_ms(10), SimEvent::RetireCheck);
        q.schedule_at(
            SimTime::from_ms(10),
            SimEvent::FlowDeparture {
                request: RequestId(1),
            },
        );
        // Earlier timestamp beats every rank.
        q.schedule_at(SimTime::from_ms(5), SimEvent::RetireCheck);
        let kinds: Vec<(u64, SimEventKind)> = std::iter::from_fn(|| q.pop())
            .map(|(t, ev)| (t.ms(), ev.kind()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (5, SimEventKind::RetireCheck),
                (10, SimEventKind::FlowDeparture),
                (10, SimEventKind::RetireCheck),
                (10, SimEventKind::PolicyDecision),
            ]
        );
    }

    #[test]
    fn same_key_pops_in_insertion_order() {
        let mut q = EventQueue::new();
        for row in 0..5 {
            q.schedule_at(SimTime::from_ms(3), SimEvent::PolicyDecision { row });
        }
        let rows: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                SimEvent::PolicyDecision { row } => row,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(rows, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_if_drains_only_the_matching_group() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ms(7), SimEvent::RetireCheck);
        q.schedule_at(SimTime::from_ms(7), SimEvent::RetireCheck);
        q.schedule_at(SimTime::from_ms(7), SimEvent::PolicyDecision { row: 0 });
        let mut drained = 0;
        while q
            .pop_if(SimTime::from_ms(7), SimEventKind::RetireCheck)
            .is_some()
        {
            drained += 1;
        }
        assert_eq!(drained, 2);
        assert_eq!(q.len(), 1, "the decision stays queued");
    }

    #[test]
    fn clock_follows_pops_and_counts_events() {
        let mut q = EventQueue::new();
        q.schedule_in(100, SimEvent::RetireCheck);
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ms(100));
        assert_eq!(q.now(), t);
        assert_eq!(q.popped(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ms(50), SimEvent::RetireCheck);
        q.pop();
        q.schedule_at(SimTime::from_ms(10), SimEvent::RetireCheck);
    }

    #[test]
    fn slot_helpers_round_trip() {
        let t = SimTime::from_slot(7, 5_000);
        assert_eq!(t.ms(), 35_000);
        assert_eq!(t.slot(5_000), 7);
        assert_eq!(SimTime::from_ms(35_001).slot(5_000), 7);
        assert_eq!(SimTime::from_ms(39_999).slot(5_000), 7);
        assert_eq!(SimTime::from_ms(40_000).slot(5_000), 8);
    }
}
