//! Golden slot-equivalence suite: every scenario family used by the
//! figure binaries runs through BOTH engines — the paper's slotted loop
//! ([`Simulation::run_trace_slotted`]) and the discrete-event queue on
//! its slot-boundary compatibility schedule ([`Simulation::run_trace`])
//! — and must produce a bit-identical [`RunSummary`] plus a bit-identical
//! per-slot [`SlotRecord`] stream.
//!
//! This is the contract that let `exper`, the `fig*` binaries and the
//! `BENCH_*` reports migrate to the event engine without output drift.
//! Scenario families mirror the figure binaries' constructors (same
//! topology, capacity, workload and failure knobs) with horizons trimmed
//! so the suite stays test-pyramid friendly; `FAST=1` trims further.

use mano::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::dqn::DqnConfig;
use rl::qnet::QNetworkConfig;
use rl::schedule::EpsilonSchedule;
use sfc::chain::{ChainCatalog, ChainId, ChainSpec};
use sfc::vnf::VnfCatalog;
use workload::pattern::LoadPattern;

fn fast_mode() -> bool {
    std::env::var_os("FAST").is_some_and(|v| v == "1")
}

fn scaled(full: u64, fast: u64) -> u64 {
    if fast_mode() {
        fast
    } else {
        full
    }
}

/// Runs `scenario` through both engines with freshly built policies and
/// asserts the summary and the whole slot-record stream match bit for bit.
fn assert_engines_match(
    label: &str,
    scenario: &Scenario,
    catalogs: Option<(VnfCatalog, ChainCatalog)>,
    mut make_policy: impl FnMut() -> Box<dyn PlacementPolicy>,
) {
    let build = |scenario: &Scenario| match &catalogs {
        Some((vnfs, chains)) => Simulation::with_catalogs(
            scenario,
            RewardConfig::default(),
            vnfs.clone(),
            chains.clone(),
        ),
        None => Simulation::new(scenario, RewardConfig::default()),
    };

    let mut slot_policy = make_policy();
    let mut slot_sim = build(scenario);
    let mut slot_summary = slot_sim.run_slotted(slot_policy.as_mut(), 7);

    let mut event_policy = make_policy();
    let mut event_sim = build(scenario);
    let mut event_summary = event_sim.run(event_policy.as_mut(), 7);

    // Wall-clock decision timing is legitimately non-deterministic.
    slot_summary.mean_decision_time_us = 0.0;
    event_summary.mean_decision_time_us = 0.0;
    assert_eq!(slot_summary, event_summary, "{label}: RunSummary diverged");

    let slot_records = slot_sim.metrics().slots();
    let event_records = event_sim.metrics().slots();
    assert_eq!(
        slot_records.len(),
        event_records.len(),
        "{label}: slot-record counts diverged"
    );
    for (a, b) in slot_records.iter().zip(event_records) {
        assert_eq!(a, b, "{label}: record for slot {} diverged", a.slot);
    }
}

/// The fig2/3/4 load-sweep family (`bench::bench_scenario`).
fn bench_family(rate: f64) -> Scenario {
    let mut s = Scenario::default_metro().with_arrival_rate(rate);
    s.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    s.horizon_slots = scaled(120, 24);
    s
}

#[test]
fn load_sweep_scenarios_are_engine_equivalent() {
    for rate in [2.0, 6.0] {
        let scenario = bench_family(rate);
        assert_engines_match(
            &format!("bench_scenario({rate}) first-fit"),
            &scenario,
            None,
            || Box::new(FirstFitPolicy),
        );
        assert_engines_match(
            &format!("bench_scenario({rate}) weighted-greedy"),
            &scenario,
            None,
            || Box::<WeightedGreedyPolicy>::default(),
        );
    }
}

#[test]
fn rng_heavy_policy_is_engine_equivalent() {
    // RandomPolicy consumes the decision rng every step, so any drift in
    // the engines' rng draw order shows up immediately.
    let scenario = bench_family(4.0);
    assert_engines_match("bench_scenario(4.0) random", &scenario, None, || {
        Box::new(RandomPolicy)
    });
}

#[test]
fn scalability_scenarios_are_engine_equivalent() {
    // fig5's size sweep: metro rings of growing site counts.
    for sites in [4usize, 8] {
        let mut scenario = Scenario::default_metro().with_arrival_rate(6.0);
        scenario.topology = TopologySpec::Metro { sites };
        scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
        scenario.horizon_slots = scaled(100, 20);
        assert_engines_match(&format!("fig5 sites={sites}"), &scenario, None, || {
            Box::<WeightedGreedyPolicy>::default()
        });
    }
}

#[test]
fn synthetic_chain_catalog_is_engine_equivalent() {
    // fig6's chain-length sweep: custom catalogs through `with_catalogs`.
    let vnfs = VnfCatalog::standard();
    let order = ["nat", "firewall", "load-balancer"];
    let chains: Vec<ChainSpec> = (1..=order.len())
        .map(|len| {
            let seq = order[..len]
                .iter()
                .map(|n| vnfs.by_name(n).expect("standard catalog").id)
                .collect();
            ChainSpec::new(
                ChainId(len - 1),
                format!("len-{len}"),
                seq,
                40.0 + 25.0 * len as f64,
                0.05,
                10.0,
            )
        })
        .collect();
    let chains = ChainCatalog::new(chains, &vnfs);

    let mut scenario = Scenario::default_metro().with_arrival_rate(5.0);
    scenario.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    scenario.horizon_slots = scaled(100, 20);
    scenario.workload.chain_mix = vec![1.0; 3];
    assert_engines_match(
        "fig6 synthetic chains",
        &scenario,
        Some((vnfs, chains)),
        || Box::new(FirstFitPolicy),
    );
}

#[test]
fn dynamic_load_scenarios_are_engine_equivalent() {
    // fig7's non-stationary workloads: diurnal wave and flash crowd.
    let mut diurnal = Scenario::default_metro();
    diurnal.topology_builder.edge_capacity = edgenet::node::Resources::new(32.0, 128.0);
    diurnal.horizon_slots = scaled(160, 30);
    diurnal.workload.pattern = LoadPattern::Diurnal {
        base: 6.0,
        amplitude: 4.0,
        period: scaled(80, 15),
        phase: 0,
    };
    assert_engines_match("fig7 diurnal", &diurnal, None, || {
        Box::<WeightedGreedyPolicy>::default()
    });

    let mut flash = diurnal.clone();
    flash.workload.pattern = LoadPattern::FlashCrowd {
        base: 4.0,
        spike_rate: 14.0,
        spike_start: scaled(50, 10),
        spike_duration: scaled(30, 6),
    };
    assert_engines_match("fig7 flash crowd", &flash, None, || {
        Box::new(FirstFitPolicy)
    });
}

#[test]
fn optgap_scenario_is_engine_equivalent() {
    // fig8's tiny comparator topology (3 edge sites + cloud).
    let mut scenario = Scenario::default_metro().with_arrival_rate(3.0);
    scenario.topology = TopologySpec::Metro { sites: 3 };
    scenario.horizon_slots = scaled(100, 20);
    scenario.workload.chain_mix = vec![1.0, 1.0];
    assert_engines_match("fig8 tiny", &scenario, None, || Box::new(FirstFitPolicy));
}

#[test]
fn stochastic_failure_scenarios_are_engine_equivalent() {
    // fig12's resilience sweep: stochastic per-node failures + recovery
    // (the PR 3 event schedule) must disrupt, re-place and recover
    // identically under both engines.
    for failure_rate in [0.01, 0.05] {
        let mut scenario = bench_family(6.0).with_failures(failure_rate, 20.0);
        scenario.horizon_slots = scaled(120, 24);
        assert_engines_match(
            &format!("fig12 failures={failure_rate}"),
            &scenario,
            None,
            || Box::<WeightedGreedyPolicy>::default(),
        );
    }
}

#[test]
fn batched_inference_is_engine_equivalent_and_fires() {
    // PR 5's speculative batched inference: the event engine groups
    // same-timestamp arrivals into the batch the slot loop built per
    // slot, so a frozen DQN must produce identical output AND still
    // serve decisions from batched forwards.
    let mut scenario = Scenario::small_test();
    scenario.horizon_slots = scaled(50, 25);
    let probe = Simulation::new(&scenario, RewardConfig::default());
    let state_dim = probe.encoder.dim();
    let action_count = probe.action_space.len();
    drop(probe);
    let config = DrlManagerConfig {
        dqn: DqnConfig {
            network: QNetworkConfig::Standard { hidden: vec![16] },
            epsilon: EpsilonSchedule::Constant(0.0),
            ..DqnConfig::default()
        },
        label: "drl".into(),
    };
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let mut template = DrlPolicy::new(config, state_dim, action_count, &mut rng);
    template.set_training(false);

    let mut slot_policy = template.clone();
    let mut slot_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut slot_summary = slot_sim.run_slotted(&mut slot_policy, 7);

    let mut event_policy = template.clone();
    let mut event_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut event_summary = event_sim.run(&mut event_policy, 7);

    slot_summary.mean_decision_time_us = 0.0;
    event_summary.mean_decision_time_us = 0.0;
    assert_eq!(slot_summary, event_summary, "DRL run diverged");
    assert_eq!(slot_sim.metrics().slots(), event_sim.metrics().slots());
    assert!(
        event_sim.batched_decisions() > 0,
        "the event engine never served a batched decision"
    );
    assert_eq!(
        slot_sim.batched_decisions(),
        event_sim.batched_decisions(),
        "engines disagreed on how many decisions the batch served"
    );
}

#[test]
fn chained_runs_stay_engine_equivalent() {
    // `exper` chains multiple passes on one simulation (training then
    // eval); state carried across run boundaries — live flows, pending
    // departures, instance ages — must migrate identically.
    let scenario = bench_family(5.0);

    let mut slot_policy = WeightedGreedyPolicy::default();
    let mut slot_sim = Simulation::new(&scenario, RewardConfig::default());
    let _ = slot_sim.run_slotted(&mut slot_policy, 1);
    let mut slot_summary = slot_sim.run_slotted(&mut slot_policy, 2);

    let mut event_policy = WeightedGreedyPolicy::default();
    let mut event_sim = Simulation::new(&scenario, RewardConfig::default());
    let _ = event_sim.run(&mut event_policy, 1);
    let mut event_summary = event_sim.run(&mut event_policy, 2);

    for (a, b) in slot_sim
        .metrics()
        .slots()
        .iter()
        .zip(event_sim.metrics().slots())
    {
        assert_eq!(a, b, "chained: record for slot {} diverged", a.slot);
    }
    slot_summary.mean_decision_time_us = 0.0;
    event_summary.mean_decision_time_us = 0.0;
    assert_eq!(slot_summary, event_summary, "chained RunSummary diverged");
}
