//! Engine-level guarantees of the batched decision-inference path: a run
//! whose greedy decisions are served from per-slot batched forwards must
//! be bit-identical to the sequential per-decision run, for both the DQN
//! and the REINFORCE manager, while actually exercising the batch.

use mano::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::dqn::DqnConfig;
use rl::qnet::QNetworkConfig;
use rl::reinforce::ReinforceConfig;
use rl::schedule::EpsilonSchedule;

/// A multi-arrival scenario (Poisson λ=2 over 4 sites) so slots routinely
/// carry batches worth assembling.
fn scenario() -> Scenario {
    let mut s = Scenario::small_test();
    s.horizon_slots = 50;
    s
}

fn drl_pair(scenario: &Scenario) -> (DrlPolicy, DrlPolicy) {
    let probe = Simulation::new(scenario, RewardConfig::default());
    let state_dim = probe.encoder.dim();
    let action_count = probe.action_space.len();
    drop(probe);
    let config = DrlManagerConfig {
        dqn: DqnConfig {
            network: QNetworkConfig::Standard { hidden: vec![16] },
            epsilon: EpsilonSchedule::Constant(0.0),
            ..DqnConfig::default()
        },
        label: "drl".into(),
    };
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let mut batched = DrlPolicy::new(config, state_dim, action_count, &mut rng);
    batched.set_training(false);
    let mut sequential = batched.clone();
    sequential.set_batched_inference(false);
    (batched, sequential)
}

fn run(scenario: &Scenario, policy: &mut dyn PlacementPolicy) -> (RunSummary, u64) {
    let mut sim = Simulation::new(scenario, RewardConfig::default());
    let mut summary = sim.run(policy, 7);
    // Wall-clock decision timing is legitimately non-deterministic.
    summary.mean_decision_time_us = 0.0;
    (summary, sim.batched_decisions())
}

#[test]
fn dqn_batched_run_is_bit_identical_to_sequential() {
    let scenario = scenario();
    let (mut batched, mut sequential) = drl_pair(&scenario);
    let (summary_batched, hits) = run(&scenario, &mut batched);
    let (summary_sequential, no_hits) = run(&scenario, &mut sequential);
    assert!(
        hits > 0,
        "the batched path never fired — the test exercises nothing"
    );
    assert_eq!(no_hits, 0, "disabled batching must not serve batched rows");
    assert_eq!(
        summary_batched, summary_sequential,
        "batched inference changed the run"
    );
}

#[test]
fn pg_batched_run_is_bit_identical_to_sequential() {
    let scenario = scenario();
    let probe = Simulation::new(&scenario, RewardConfig::default());
    let state_dim = probe.encoder.dim();
    let action_count = probe.action_space.len();
    drop(probe);
    let config = PgManagerConfig {
        reinforce: ReinforceConfig {
            hidden: vec![16],
            ..ReinforceConfig::default()
        },
        label: "pg".into(),
    };
    let mut rng = StdRng::seed_from_u64(0xBA7D);
    let mut batched = PgPolicy::new(config, state_dim, action_count, &mut rng);
    batched.set_training(false);
    let mut sequential = batched.clone();
    sequential.set_batched_inference(false);
    let (summary_batched, hits) = run(&scenario, &mut batched);
    let (summary_sequential, no_hits) = run(&scenario, &mut sequential);
    assert!(hits > 0);
    assert_eq!(no_hits, 0);
    assert_eq!(summary_batched, summary_sequential);
}

#[test]
fn training_mode_never_uses_the_batched_path() {
    // Exploration draws from the decision rng stream; batching a training
    // policy would desynchronize it. The policy must refuse to batch.
    let scenario = scenario();
    let (mut policy, _) = drl_pair(&scenario);
    policy.set_training(true);
    assert!(!policy.supports_greedy_batch());
    let (_, hits) = run(&scenario, &mut policy);
    assert_eq!(hits, 0, "training run served decisions from a batch");
}

#[test]
fn heuristics_fall_back_without_batching() {
    let scenario = scenario();
    let mut policy = FirstFitPolicy;
    let (summary, hits) = run(&scenario, &mut policy);
    assert_eq!(hits, 0);
    assert!(summary.total_arrivals > 0);
}
