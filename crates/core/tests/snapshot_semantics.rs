//! The `DecisionSemantics::SlotSnapshot` contract, pinned end to end:
//!
//! * **Joint apply never oversubscribes.** Every decision in a slot's
//!   wavefront is planned against the same frozen slot-start snapshot;
//!   the apply phase re-checks feasibility per step and converts
//!   oversubscription into rejections, so node capacity is never
//!   exceeded no matter how many planned placements collide.
//! * **Conflicts resolve in arrival order.** When k of n colliding
//!   requests fit, the FIRST k (by arrival/insertion order) are
//!   admitted and the tail is rejected — deterministically.
//! * **Rerun / batching / engine invariance.** Snapshot runs are
//!   bit-identical across reruns, with batched wavefront forwards vs
//!   per-row decides, and across the slotted and event engines.
//!
//! The serving layer's cross-simulation parity tests build on these
//! guarantees (see `crates/serve/tests/serve_parity.rs`).

use edgenet::node::{NodeId, Resources};
use mano::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::dqn::DqnConfig;
use rl::qnet::QNetworkConfig;
use rl::schedule::EpsilonSchedule;
use sfc::chain::{ChainCatalog, ChainId, ChainSpec};
use sfc::request::{Request, RequestId};
use sfc::vnf::{VnfCatalog, VnfType, VnfTypeId};

/// One resource-hog VNF sized so the conflict arithmetic is exact:
/// demand (16, 64) against edge capacity (32, 128) fits exactly two
/// instances per node, and `service_rate * max_util = 10 * 0.8 = 8 rps`
/// exactly matches one flow's 8 rps — so instances can never be shared
/// and every admission needs a fresh instance.
fn hog_catalogs() -> (VnfCatalog, ChainCatalog) {
    let vnf = VnfType::new(VnfTypeId(0), "hog", Resources::new(16.0, 64.0), 10.0, 1.0);
    let vnfs = VnfCatalog::new(vec![vnf]);
    let chains = ChainCatalog::new(
        vec![ChainSpec::new(
            ChainId(0),
            "hog-chain",
            vec![VnfTypeId(0)],
            100.0,
            0.01,
            8.0,
        )],
        &vnfs,
    );
    (vnfs, chains)
}

fn hog_scenario() -> Scenario {
    let mut s = Scenario::small_test();
    s.topology_builder.edge_capacity = Resources::new(32.0, 128.0);
    s.workload.chain_mix = vec![1.0];
    s.max_instance_utilization = 0.8;
    s.horizon_slots = 4;
    s
}

fn hog_sim(scenario: &Scenario) -> Simulation {
    let (vnfs, chains) = hog_catalogs();
    Simulation::with_catalogs(scenario, RewardConfig::default(), vnfs, chains)
}

/// Always places at node 0 when the snapshot says it is feasible —
/// guaranteeing that colliding wavefronts all target the same node.
struct PinToZero;

impl PlacementPolicy for PinToZero {
    fn name(&self) -> String {
        "pin-zero".into()
    }

    fn decide(&mut self, ctx: &DecisionContext, _rng: &mut StdRng) -> PlacementAction {
        if ctx.mask[0] {
            PlacementAction::Place(NodeId(0))
        } else {
            PlacementAction::Reject
        }
    }
}

#[test]
fn joint_apply_admits_exactly_what_fits_and_rejects_the_rest() {
    let scenario = hog_scenario();
    let mut sim = hog_sim(&scenario);
    sim.set_decision_semantics(DecisionSemantics::SlotSnapshot);
    let mut policy = PinToZero;
    let mut rng = StdRng::seed_from_u64(7);

    // Five identical slot-0 arrivals, all pinned to node 0, where only
    // two hog instances fit: the snapshot plans Place(0) for all five
    // (the frozen slot-start state says node 0 is free), and the joint
    // apply must admit exactly two and reject three.
    let arrivals: Vec<Request> = (0..5)
        .map(|i| Request::new(RequestId(i), ChainId(0), NodeId(0), 0, 2))
        .collect();
    let record = sim.advance_slot(&arrivals, &mut policy, &mut rng);

    assert_eq!(record.arrivals, 5);
    assert_eq!(record.accepted, 2, "exactly two hog instances fit node 0");
    assert_eq!(
        record.rejected, 3,
        "the oversubscribed tail must be rejected"
    );

    // Node 0 is exactly full — never oversubscribed.
    let util = sim
        .ledger()
        .utilization_of(NodeId(0))
        .expect("node 0 exists");
    assert!(
        (util - 1.0).abs() < 1e-9,
        "node 0 should be exactly full, got {util}"
    );
}

#[test]
fn conflicts_resolve_in_arrival_order() {
    // Same collision through the event engine, with telemetry attached:
    // the FIRST two request ids (arrival order) must be the admitted
    // ones — conflict resolution is positional, not value-dependent.
    let scenario = hog_scenario();
    let mut sim = hog_sim(&scenario);
    let mut policy = PinToZero;
    let mut sink = TelemetrySink::new();

    let arrivals: Vec<TimedArrival> = (0..5)
        .map(|i| TimedArrival {
            at: SimTime::from_ms(0),
            request: Request::new(RequestId(i), ChainId(0), NodeId(0), 0, 2),
        })
        .collect();
    sim.drive(
        RunInput::Events(&arrivals),
        &mut policy,
        RunOptions::new().snapshot().with_telemetry(&mut sink),
    );

    let mut flows: Vec<FlowRecord> = sink.recent_flows().cloned().collect();
    flows.sort_by_key(|f| f.id);
    assert_eq!(flows.len(), 5, "every arrival opens a flow record");
    for flow in &flows[..2] {
        assert!(
            flow.placed_ms.is_some(),
            "request {:?} arrived first and fits — must be admitted",
            flow.id
        );
        assert_eq!(flow.outcome, Some(FlowOutcome::Completed));
    }
    for flow in &flows[2..] {
        assert_eq!(
            flow.outcome,
            Some(FlowOutcome::Rejected),
            "request {:?} is past the capacity cliff — must be rejected",
            flow.id
        );
        assert!(flow.placed_ms.is_none());
    }
}

#[test]
fn snapshot_engine_equivalence_and_rerun_determinism() {
    // A frozen DRL policy through both engines under SlotSnapshot, run
    // twice each: all four summaries (and the slot-record streams) must
    // be bit-identical.
    let mut scenario = Scenario::small_test();
    scenario.horizon_slots = 40;
    let policy = frozen_drl(&scenario);

    let run = |opts: RunOptions| {
        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let mut worker = policy.clone();
        let mut summary = sim.drive(RunInput::Generated, &mut worker, opts.with_seed_offset(3));
        summary.mean_decision_time_us = 0.0;
        (summary, sim.metrics().slots().to_vec())
    };

    let (event_a, slots_event_a) = run(RunOptions::new().snapshot());
    let (event_b, slots_event_b) = run(RunOptions::new().snapshot());
    let (slotted, slots_slotted) = run(RunOptions::new().slotted().snapshot());

    assert_eq!(event_a, event_b, "snapshot reruns diverged");
    assert_eq!(slots_event_a, slots_event_b);
    assert_eq!(event_a, slotted, "event vs slotted diverged under snapshot");
    assert_eq!(slots_event_a, slots_slotted);
}

#[test]
fn wavefront_batching_matches_per_row_decides() {
    // The fused wavefront forward is a pure row function: planning the
    // same snapshot with `greedy_batch` (batched inference on) and with
    // per-row `decide` calls (batched inference off) must produce
    // bit-identical runs.
    let mut scenario = Scenario::small_test();
    scenario.horizon_slots = 40;
    let policy = frozen_drl(&scenario);

    let run = |batched: bool| {
        let mut worker = policy.clone();
        worker.set_batched_inference(batched);
        let mut result = evaluate_policy_with_semantics(
            &scenario,
            RewardConfig::default(),
            &mut worker,
            9,
            DecisionSemantics::SlotSnapshot,
        );
        result.summary.mean_decision_time_us = 0.0;
        result.summary
    };

    assert_eq!(run(true), run(false), "fused wavefront changed a decision");
}

fn frozen_drl(scenario: &Scenario) -> DrlPolicy {
    let probe = Simulation::new(scenario, RewardConfig::default());
    let state_dim = probe.encoder.dim();
    let action_count = probe.action_space.len();
    drop(probe);
    let config = DrlManagerConfig {
        dqn: DqnConfig {
            network: QNetworkConfig::Standard { hidden: vec![16] },
            epsilon: EpsilonSchedule::Constant(0.0),
            ..DqnConfig::default()
        },
        label: "drl".into(),
    };
    let mut rng = StdRng::seed_from_u64(0x5107);
    let mut policy = DrlPolicy::new(config, state_dim, action_count, &mut rng);
    policy.set_training(false);
    policy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random collision storms — varying wave sizes, sources and
    /// durations — never leave any node above 100% utilization after a
    /// snapshot slot, and identical reruns produce identical records.
    #[test]
    fn joint_apply_never_oversubscribes(
        seed in 0u64..1_000,
        waves in proptest::collection::vec(0usize..9, 1..5),
    ) {
        let mut scenario = hog_scenario();
        scenario.horizon_slots = waves.len() as u64 + 2;
        let node_count = {
            let probe = hog_sim(&scenario);
            probe.action_space.len() - 1
        };

        let run = |waves: &[usize]| {
            let mut sim = hog_sim(&scenario);
            sim.set_decision_semantics(DecisionSemantics::SlotSnapshot);
            let mut policy = FirstFitPolicy;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut next_id = 0u64;
            let mut records = Vec::new();
            for (slot, &n) in waves.iter().enumerate() {
                let arrivals: Vec<Request> = (0..n)
                    .map(|k| {
                        let id = next_id + k as u64;
                        Request::new(
                            RequestId(id),
                            ChainId(0),
                            NodeId(k % 4),
                            slot as u64,
                            1 + (k % 3) as u32,
                        )
                    })
                    .collect();
                next_id += n as u64;
                records.push(sim.advance_slot(&arrivals, &mut policy, &mut rng));
                for node in 0..node_count {
                    let util = sim
                        .ledger()
                        .utilization_of(NodeId(node))
                        .expect("node exists");
                    assert!(
                        util <= 1.0 + 1e-9,
                        "node {node} oversubscribed at {util} after slot {slot}"
                    );
                }
            }
            records
        };

        let first = run(&waves);
        let second = run(&waves);
        prop_assert_eq!(first, second, "snapshot reruns diverged");
    }
}
