//! Regression suite for the slot-quantization bug the event engine
//! exposed: the paper's slotted accounting rounds every holding time up
//! to whole slots, so a flow that really lives for *half* a slot still
//! bills one full slot of traffic. The sparse event engine
//! ([`Simulation::run_events`] + [`Request::duration_ms`]) makes sub-slot
//! lifetimes explicit and bills them pro rata; slot-compatibility mode
//! deliberately keeps the old rounding so the figure suite stays
//! bit-identical with the paper's loop.

use mano::prelude::*;
use sfc::chain::ChainId;
use sfc::request::{Request, RequestId};
use workload::trace::Trace;

fn scenario() -> Scenario {
    let mut s = Scenario::small_test();
    s.horizon_slots = 8;
    s
}

/// Four boundary-aligned arrivals, one per edge site, so at least some
/// flows route across nodes and the traffic term cannot be vacuously 0.
fn boundary_requests() -> Vec<Request> {
    (0..4u64)
        .map(|i| {
            Request::new(
                RequestId(i),
                ChainId((i % 4) as usize),
                edgenet::node::NodeId(i as usize),
                0,
                1, // rounded-up lifetime: the slot consumers' view
            )
        })
        .collect()
}

fn zeroed(mut summary: RunSummary) -> RunSummary {
    summary.mean_decision_time_us = 0.0;
    summary
}

#[test]
fn slot_compat_keeps_the_full_slot_rounding() {
    // The pinned legacy behavior: without an explicit `duration_ms`, a
    // one-slot flow bills one whole slot of traffic on BOTH engines —
    // bit-identically. This is the rounding the equivalence suite relies
    // on; the corrected accounting below is opt-in via `run_events`.
    let scenario = scenario();
    let trace = Trace {
        requests: boundary_requests(),
        horizon_slots: scenario.horizon_slots,
    };

    let mut slot_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = FirstFitPolicy;
    let slot_summary = zeroed(slot_sim.run_trace_slotted(&trace, &mut policy, 0));

    let mut event_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = FirstFitPolicy;
    let event_summary = zeroed(event_sim.run_trace(&trace, &mut policy, 0));

    assert_eq!(slot_summary, event_summary);
    assert_eq!(slot_sim.metrics().slots(), event_sim.metrics().slots());

    let first = &event_sim.metrics().slots()[0];
    assert_eq!(first.accepted, 4, "empty network accepts all four");
    assert!(
        first.traffic_cost > 0.0,
        "at least one flow must route across nodes"
    );
    assert_eq!(
        first.active_flows, 4,
        "slot accounting keeps sub-slot flows alive to the slot's end"
    );
}

#[test]
fn sparse_mode_bills_sub_slot_flows_pro_rata() {
    // The same four flows, now declaring that they really only live for
    // half a slot. The sparse engine departs them mid-slot and bills the
    // occupied fraction: exactly half the compat run's slot-0 traffic.
    let scenario = scenario();
    let slot_ms = Simulation::new(&scenario, RewardConfig::default()).slot_ms();

    let mut compat_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = FirstFitPolicy;
    let trace = Trace {
        requests: boundary_requests(),
        horizon_slots: scenario.horizon_slots,
    };
    let _ = compat_sim.run_trace(&trace, &mut policy, 0);
    let compat_first = compat_sim.metrics().slots()[0].clone();

    let arrivals: Vec<TimedArrival> = boundary_requests()
        .into_iter()
        .map(|r| TimedArrival {
            at: SimTime::ZERO,
            request: r.with_duration_ms(slot_ms / 2),
        })
        .collect();
    let mut sparse_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = FirstFitPolicy;
    let _ = sparse_sim.run_events(&arrivals, &mut policy, 0, scenario.horizon_slots);
    let sparse_first = sparse_sim.metrics().slots()[0].clone();

    assert_eq!(sparse_first.accepted, 4);
    assert!(compat_first.traffic_cost > 0.0);
    assert!(
        (sparse_first.traffic_cost - 0.5 * compat_first.traffic_cost).abs() < 1e-12,
        "half-slot lifetimes must bill exactly half the slot's traffic \
         (sparse {} vs compat {})",
        sparse_first.traffic_cost,
        compat_first.traffic_cost
    );
    assert_eq!(
        sparse_first.active_flows, 0,
        "sub-slot flows are gone before the slot-end snapshot"
    );
    // Total across the run, not just slot 0: the correction must lower
    // the bill, never shift it into later slots.
    let total =
        |sim: &Simulation| -> f64 { sim.metrics().slots().iter().map(|r| r.traffic_cost).sum() };
    assert!(total(&sparse_sim) < total(&compat_sim));
}

#[test]
fn mid_slot_arrival_prorates_its_first_slot() {
    // A flow arriving 2/5 of the way into slot 0 and living exactly to
    // the slot-2 boundary owes 3/5 of a slot of traffic in slot 0 and a
    // full slot in slot 1.
    let scenario = scenario();
    let slot_ms = Simulation::new(&scenario, RewardConfig::default()).slot_ms();

    let request = Request::new(
        RequestId(0),
        ChainId(1),
        edgenet::node::NodeId(1),
        0,
        2, // rounded-up lifetime for slot consumers
    )
    .with_duration_ms(slot_ms * 8 / 5);
    let arrivals = [TimedArrival {
        at: SimTime::from_ms(slot_ms * 2 / 5),
        request,
    }];

    let mut sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = FirstFitPolicy;
    let _ = sim.run_events(&arrivals, &mut policy, 0, scenario.horizon_slots);
    let records = sim.metrics().slots();

    assert_eq!(records[0].accepted, 1);
    assert!(
        records[1].traffic_cost > 0.0,
        "the flow must route across nodes for this check to bite"
    );
    assert!(
        (records[0].traffic_cost - 0.6 * records[1].traffic_cost).abs() < 1e-12,
        "slot 0 must bill the occupied fraction (got {} vs full-slot {})",
        records[0].traffic_cost,
        records[1].traffic_cost
    );
    // The boundary-aligned departure itself accrues nothing extra.
    assert_eq!(records[2].traffic_cost, 0.0);
    assert_eq!(records[2].active_flows, 0);
}
