//! JSON emitter schema test: a `BENCH_*.json` written by the report
//! layer must round-trip through the vendored serde_json stand-in with
//! every schema field present and stable.

use mano::prelude::*;

fn sample_report() -> BenchReport {
    let scenario = Scenario::small_test();
    let mut cells = Vec::new();
    for (pi, policy) in ["first-fit", "greedy-latency"].iter().enumerate() {
        for seed in [100u64, 101, 102] {
            let mut p: Box<dyn PlacementPolicy> = if pi == 0 {
                Box::new(FirstFitPolicy)
            } else {
                Box::new(GreedyLatencyPolicy)
            };
            let mut result = evaluate_policy(&scenario, RewardConfig::default(), p.as_mut(), seed);
            result.summary.mean_decision_time_us = 0.0;
            cells.push(BenchCell {
                scenario: "small".into(),
                policy: policy.to_string(),
                x: 2.0,
                seed,
                summary: result.summary,
            });
        }
    }
    let aggregates = group_aggregates(&cells);
    let slots: u64 = cells.iter().map(|c| c.summary.slots).sum();
    BenchReport {
        name: "schema_test".into(),
        threads: 2,
        wall_clock_secs: 0.5,
        slots_simulated: slots,
        throughput_slots_per_sec: slots as f64 / 0.5,
        fingerprint: String::new(),
        cells,
        aggregates,
    }
}

#[test]
fn bench_json_schema_fields_present_and_stable() {
    let dir = std::env::temp_dir().join("bench_json_schema_test");
    let _ = std::fs::remove_dir_all(&dir);
    let report = sample_report();
    let path = report.write_to(&dir).expect("write BENCH json");
    assert_eq!(path.file_name().unwrap(), "BENCH_schema_test.json");

    let text = std::fs::read_to_string(&path).expect("read back");
    let doc = serde_json::from_str(&text).expect("well-formed JSON");

    // Top-level schema.
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_u64()),
        Some(BENCH_SCHEMA_VERSION)
    );
    assert_eq!(
        doc.get("name").and_then(|v| v.as_str()),
        Some("schema_test")
    );
    assert_eq!(doc.get("threads").and_then(|v| v.as_u64()), Some(2));
    assert!(doc
        .get("wall_clock_secs")
        .and_then(|v| v.as_f64())
        .is_some());
    assert!(doc.get("slots_simulated").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(
        doc.get("throughput_slots_per_sec")
            .and_then(|v| v.as_f64())
            .unwrap()
            > 0.0
    );

    // Cell schema: every cell has coordinates + the full summary.
    let cells = doc.get("cells").and_then(|v| v.as_array()).expect("cells");
    assert_eq!(cells.len(), 6);
    for cell in cells {
        for key in ["scenario", "policy", "x", "seed", "summary"] {
            assert!(cell.get(key).is_some(), "cell missing `{key}`");
        }
        let summary = cell.get("summary").unwrap();
        for key in [
            "slots",
            "total_arrivals",
            "acceptance_ratio",
            "mean_admission_latency_ms",
            "p95_admission_latency_ms",
            "total_cost_usd",
            "mean_utilization",
        ] {
            assert!(summary.get(key).is_some(), "summary missing `{key}`");
        }
    }

    // Aggregate schema: per-group seeds count and mean/std/ci95 bands for
    // every tracked metric.
    let aggregates = doc
        .get("aggregates")
        .and_then(|v| v.as_array())
        .expect("aggregates");
    assert_eq!(aggregates.len(), 2);
    for agg in aggregates {
        let inner = agg.get("aggregate").expect("aggregate body");
        assert_eq!(inner.get("seeds").and_then(|v| v.as_u64()), Some(3));
        let metrics = inner.get("metrics").expect("metrics map");
        for (name, _) in SUMMARY_METRICS {
            let stats = metrics
                .get(name)
                .unwrap_or_else(|| panic!("band for `{name}`"));
            for key in ["mean", "std", "ci95"] {
                assert!(stats.get(key).and_then(|v| v.as_f64()).is_some());
            }
        }
    }

    // Parse-back: the typed report survives the file round-trip.
    let parsed = BenchReport::from_json(&doc).expect("typed parse");
    assert_eq!(parsed, report);

    // Stability: re-serializing the parsed report reproduces the document
    // byte for byte (CI diffs these files across commits).
    assert_eq!(
        serde_json::to_string_pretty(&parsed.to_json()),
        serde_json::to_string_pretty(&report.to_json())
    );

    let _ = std::fs::remove_dir_all(&dir);
}
