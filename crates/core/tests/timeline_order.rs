//! Property tests for the event timeline's determinism guarantees:
//! arbitrary interleavings of `schedule_at`/`schedule_in` with colliding
//! timestamps pop in the documented `(time, kind_rank, sequence_id)`
//! order, and a sparse run's summary depends only on the schedule's
//! content, not on the order arrivals were inserted into the queue.

use mano::prelude::*;
use proptest::prelude::*;
use sfc::chain::ChainId;
use sfc::request::{Request, RequestId};

/// A schedulable op the property generates: `(use_schedule_in, time, kind)`
/// — `use_schedule_in` as 0/1. All three payload-carrying kinds are
/// exercised; the payload encodes the insertion index so ties can be
/// checked for sequence order. Times come from a tiny range so collisions
/// are the common case.
fn op_strategy() -> impl Strategy<Value = (u8, u64, u8)> {
    (0u8..2, 0u64..6, 0u8..3)
}

fn tagged_event(kind: u8, tag: usize) -> (SimEventKind, SimEvent) {
    match kind {
        0 => (
            SimEventKind::FlowDeparture,
            SimEvent::FlowDeparture {
                request: RequestId(tag as u64),
            },
        ),
        1 => (
            SimEventKind::FlowArrival,
            SimEvent::FlowArrival(Request::new(
                RequestId(tag as u64),
                ChainId(0),
                edgenet::node::NodeId(0),
                0,
                1,
            )),
        ),
        _ => (
            SimEventKind::PolicyDecision,
            SimEvent::PolicyDecision { row: tag },
        ),
    }
}

fn tag_of(event: &SimEvent) -> usize {
    match event {
        SimEvent::FlowDeparture { request } => request.0 as usize,
        SimEvent::FlowArrival(request) => request.id.0 as usize,
        SimEvent::PolicyDecision { row } => *row,
        other => panic!("untagged event popped: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Schedule a batch, pop part of it, schedule more (clamped to the
    /// advanced clock), then drain — the pop sequence must match a model
    /// that repeatedly removes the minimum `(time, kind_rank, seq)`.
    #[test]
    fn pops_follow_time_rank_seq_order(
        first in proptest::collection::vec(op_strategy(), 1..20),
        second in proptest::collection::vec(op_strategy(), 0..20),
        pops_between in 0usize..10,
    ) {
        let mut queue = EventQueue::new();
        // Model: (time, rank, seq) per insertion, keyed by tag.
        let mut model: Vec<(u64, u8, usize)> = Vec::new();

        let mut insert = |queue: &mut EventQueue, use_in: u8, t: u64, kind: u8| {
            let tag = model.len();
            let (expected_kind, event) = tagged_event(kind, tag);
            // Both forms resolve to now + t; offsetting from the clock
            // keeps the past-scheduling panic (its own test below) out.
            let at = queue.now().plus_ms(t);
            if use_in == 1 {
                queue.schedule_in(t, event);
            } else {
                queue.schedule_at(at, event);
            }
            model.push((at.ms(), expected_kind.rank(), tag));
        };

        for &(use_in, t, kind) in &first {
            insert(&mut queue, use_in, t, kind);
        }

        let mut popped: Vec<usize> = Vec::new();
        for _ in 0..pops_between.min(queue.len()) {
            let (_, event) = queue.pop().expect("queue non-empty");
            popped.push(tag_of(&event));
        }
        for &(use_in, t, kind) in &second {
            insert(&mut queue, use_in, t, kind);
        }
        while let Some((_, event)) = queue.pop() {
            popped.push(tag_of(&event));
        }

        // Replay the model: the first batch alone for the interleaved
        // pops, then everything remaining.
        let mut expected: Vec<usize> = Vec::new();
        let mut pending: Vec<(u64, u8, usize)> = model[..first.len()].to_vec();
        for _ in 0..popped.len().min(pops_between.min(first.len())) {
            let min = pending.iter().copied().min().expect("pending non-empty");
            pending.retain(|&e| e != min);
            expected.push(min.2);
        }
        pending.extend_from_slice(&model[first.len()..]);
        while let Some(min) = pending.iter().copied().min() {
            pending.retain(|&e| e != min);
            expected.push(min.2);
        }

        prop_assert_eq!(popped, expected);
    }

    /// Arrivals with pairwise-distinct timestamps produce the same run no
    /// matter what order they are handed to `run_events` in: the queue's
    /// `(time, kind_rank, seq)` order makes insertion order irrelevant
    /// whenever timestamps don't collide.
    #[test]
    fn run_summary_invariant_to_insertion_order(rotation in 0usize..17, seed in 0u64..100) {
        let mut scenario = Scenario::small_test();
        scenario.seed = seed;
        scenario.horizon_slots = 20;
        let slot_ms = 5000;

        let arrivals: Vec<TimedArrival> = (0..17u64)
            .map(|i| TimedArrival {
                // Distinct ms offsets scattered across slots 0..17.
                at: SimTime::from_ms(i * slot_ms + (i * 977) % slot_ms),
                request: Request::new(
                    RequestId(i),
                    ChainId((i % 4) as usize),
                    edgenet::node::NodeId((i % 4) as usize),
                    0, // rewritten from `at` by run_events
                    1 + (i % 5) as u32,
                ),
            })
            .collect();
        let mut rotated = arrivals.clone();
        rotated.rotate_left(rotation);

        let run = |schedule: &[TimedArrival]| {
            let mut sim = Simulation::new(&scenario, RewardConfig::default());
            let mut policy = FirstFitPolicy;
            let mut summary = sim.run_events(schedule, &mut policy, 3, scenario.horizon_slots);
            summary.mean_decision_time_us = 0.0;
            (summary, sim.metrics().slots().to_vec())
        };

        let (summary_sorted, records_sorted) = run(&arrivals);
        let (summary_rotated, records_rotated) = run(&rotated);
        prop_assert_eq!(summary_sorted, summary_rotated);
        prop_assert_eq!(records_sorted, records_rotated);
    }
}

#[test]
#[should_panic(expected = "cannot schedule")]
fn scheduling_behind_the_clock_panics() {
    let mut queue = EventQueue::new();
    queue.schedule_at(SimTime::from_ms(10), SimEvent::RetireCheck);
    let _ = queue.pop();
    queue.schedule_at(SimTime::from_ms(5), SimEvent::RetireCheck);
}
