//! Telemetry subsystem contract tests:
//!
//! * attaching a [`TelemetrySink`] is pure observation — the
//!   [`RunSummary`] is bit-identical with and without one, on healthy
//!   and failure-injected scenarios, slot-compat and sparse alike;
//! * every flow record respects the lifecycle funnel
//!   `requested ≤ placed ≤ active ≤ torn_down` (property-tested over
//!   random scenarios);
//! * streaming metrics retention reproduces the full-mode summary
//!   exactly on counts/sums and within histogram tolerance on latency
//!   quantiles;
//! * [`RunInput::Stream`] is observationally identical to the same
//!   arrivals materialized as [`RunInput::Events`];
//! * mixing slot-compat billing onto a simulation that already ran
//!   sparse is an enforced error, not a doc warning.

use mano::prelude::*;
use proptest::prelude::*;

fn zeroed(mut summary: RunSummary) -> RunSummary {
    // Wall-clock decision timing is legitimately non-deterministic.
    summary.mean_decision_time_us = 0.0;
    summary
}

/// Runs `scenario` twice through [`Simulation::drive`] — once bare, once
/// with a telemetry sink — and asserts bit-identical summaries. Returns
/// the populated sink for further inspection.
fn run_with_and_without_telemetry(
    scenario: &Scenario,
    sparse: bool,
) -> (RunSummary, TelemetrySink) {
    let opts = || {
        if sparse {
            RunOptions::new().sparse()
        } else {
            RunOptions::new()
        }
    };

    let mut bare_sim = Simulation::new(scenario, RewardConfig::default());
    let mut bare_policy = FirstFitPolicy;
    let bare = zeroed(bare_sim.drive(RunInput::Generated, &mut bare_policy, opts()));

    let mut sink = TelemetrySink::new();
    let mut obs_sim = Simulation::new(scenario, RewardConfig::default());
    let mut obs_policy = FirstFitPolicy;
    let observed = zeroed(obs_sim.drive(
        RunInput::Generated,
        &mut obs_policy,
        opts().with_telemetry(&mut sink),
    ));

    assert_eq!(
        bare, observed,
        "attaching a TelemetrySink changed the RunSummary"
    );
    (observed, sink)
}

#[test]
fn telemetry_is_bit_identical_on_healthy_scenario() {
    let scenario = Scenario::small_test();
    let (summary, sink) = run_with_and_without_telemetry(&scenario, false);

    let totals = sink.totals();
    assert_eq!(totals.requested, summary.total_arrivals);
    assert_eq!(totals.placed, summary.total_accepted);
    assert_eq!(
        totals.rejected + totals.replacement_rejected,
        summary.total_rejected
    );
    // Every opened record is eventually closed or still in flight.
    assert_eq!(
        totals.closed() + sink.open_flows() as u64,
        totals.requested + totals.replacements_requested
    );
    // One snapshot per billed slot (ring capacity exceeds the horizon here).
    assert_eq!(
        sink.snapshots().count() as u64 + sink.dropped_snapshots(),
        summary.slots
    );
    assert_eq!(sink.admission_latency().count(), totals.placed);
}

#[test]
fn telemetry_is_bit_identical_under_failures() {
    let scenario = Scenario::small_test().with_failures(0.05, 6.0);
    let (summary, sink) = run_with_and_without_telemetry(&scenario, false);
    assert!(
        summary.downtime_slots > 0,
        "failure scenario saw no downtime"
    );

    let totals = sink.totals();
    assert_eq!(totals.disrupted, summary.flows_disrupted);
    assert_eq!(
        totals.closed() + sink.open_flows() as u64,
        totals.requested + totals.replacements_requested
    );
    for record in sink.recent_flows() {
        assert!(record.funnel_ordered(), "funnel violated: {record:?}");
    }
}

#[test]
fn telemetry_is_bit_identical_on_sparse_billing() {
    let scenario = Scenario::small_test();
    let (_, sink) = run_with_and_without_telemetry(&scenario, true);
    for record in sink.recent_flows() {
        assert!(record.funnel_ordered(), "funnel violated: {record:?}");
    }
}

#[test]
fn csv_exports_are_rectangular() {
    let scenario = Scenario::small_test();
    let (_, sink) = run_with_and_without_telemetry(&scenario, false);

    let flows = sink.flows_csv();
    let mut lines = flows.lines();
    let header_cols = lines.next().expect("flows header").split(',').count();
    let mut rows = 0;
    for line in lines {
        assert_eq!(line.split(',').count(), header_cols, "ragged flows row");
        rows += 1;
    }
    assert_eq!(rows, sink.recent_flows().count());

    let snapshots = sink.snapshots_csv();
    let mut lines = snapshots.lines();
    let header_cols = lines.next().expect("snapshots header").split(',').count();
    for line in lines {
        assert_eq!(line.split(',').count(), header_cols, "ragged snapshot row");
    }

    // The JSON digest stays O(1) in trace length.
    let json = sink.to_json().to_string();
    assert!(json.len() < 4096, "telemetry digest grew with the trace");
}

#[test]
fn streaming_metrics_match_full_mode() {
    let scenario = Scenario::small_test().with_failures(0.03, 5.0);

    let mut full_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut full_policy = FirstFitPolicy;
    let full = zeroed(full_sim.drive(RunInput::Generated, &mut full_policy, RunOptions::new()));

    let mut stream_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut stream_policy = FirstFitPolicy;
    let streaming = zeroed(stream_sim.drive(
        RunInput::Generated,
        &mut stream_policy,
        RunOptions::new().with_streaming_metrics(),
    ));
    assert!(stream_sim.metrics().is_streaming());
    assert!(
        stream_sim.metrics().slots().is_empty(),
        "streaming mode must not retain per-slot records"
    );

    // Counts and slot-derived sums fold in the same order → exact.
    assert_eq!(full.slots, streaming.slots);
    assert_eq!(full.total_arrivals, streaming.total_arrivals);
    assert_eq!(full.total_accepted, streaming.total_accepted);
    assert_eq!(full.total_rejected, streaming.total_rejected);
    assert_eq!(full.acceptance_ratio, streaming.acceptance_ratio);
    assert_eq!(full.sla_violation_ratio, streaming.sla_violation_ratio);
    assert_eq!(full.total_cost_usd, streaming.total_cost_usd);
    assert_eq!(full.mean_slot_cost_usd, streaming.mean_slot_cost_usd);
    assert_eq!(full.mean_utilization, streaming.mean_utilization);
    assert_eq!(full.mean_active_flows, streaming.mean_active_flows);
    assert_eq!(full.mean_live_instances, streaming.mean_live_instances);
    assert_eq!(full.flows_disrupted, streaming.flows_disrupted);
    assert_eq!(
        full.replacement_success_rate,
        streaming.replacement_success_rate
    );
    assert_eq!(full.downtime_slots, streaming.downtime_slots);

    // Latency mean differs only in summation order; quantiles come from
    // a log-spaced histogram with ≈2% relative bin width.
    let close = |a: f64, b: f64, rel: f64| (a - b).abs() <= rel * a.abs().max(b.abs()).max(1e-9);
    assert!(
        close(
            full.mean_admission_latency_ms,
            streaming.mean_admission_latency_ms,
            1e-9
        ),
        "means diverged: {} vs {}",
        full.mean_admission_latency_ms,
        streaming.mean_admission_latency_ms
    );
    for (name, a, b) in [
        (
            "p50",
            full.p50_admission_latency_ms,
            streaming.p50_admission_latency_ms,
        ),
        (
            "p95",
            full.p95_admission_latency_ms,
            streaming.p95_admission_latency_ms,
        ),
    ] {
        assert!(close(a, b, 0.05), "{name} diverged: {a} vs {b}");
    }
}

#[test]
fn stream_input_matches_materialized_events() {
    let scenario = Scenario::small_test();
    let slot_ms = (scenario.slot_seconds * 1000.0).round() as u64;
    let horizon = scenario.horizon_slots;
    let sites: Vec<edgenet::node::NodeId> = (0..4).map(edgenet::node::NodeId).collect();

    let mut profile = workload::metro::MetroProfile::default_city(42);
    profile.base_rate = 2.0;
    profile.mean_duration_ms = 4.0 * slot_ms as f64;

    let materialized: Vec<TimedArrival> = profile
        .stream(&sites, horizon, slot_ms)
        .map(TimedArrival::from)
        .collect();
    assert!(!materialized.is_empty(), "metro profile generated no load");

    let mut events_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut events_policy = FirstFitPolicy;
    let from_events = zeroed(events_sim.drive(
        RunInput::Events(&materialized),
        &mut events_policy,
        RunOptions::new().sparse().with_horizon(horizon),
    ));

    let mut stream = profile
        .stream(&sites, horizon, slot_ms)
        .map(TimedArrival::from);
    let mut stream_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut stream_policy = FirstFitPolicy;
    let from_stream = zeroed(stream_sim.drive(
        RunInput::Stream(&mut stream),
        &mut stream_policy,
        RunOptions::new().sparse().with_horizon(horizon),
    ));

    assert_eq!(
        from_events, from_stream,
        "lazy stream input diverged from the materialized schedule"
    );
    for (a, b) in events_sim
        .metrics()
        .slots()
        .iter()
        .zip(stream_sim.metrics().slots())
    {
        assert_eq!(a, b, "slot record diverged at slot {}", a.slot);
    }
}

#[test]
fn legacy_wrappers_match_drive() {
    let scenario = Scenario::small_test();

    let mut wrapper_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut wrapper_policy = FirstFitPolicy;
    let via_wrapper = zeroed(wrapper_sim.run(&mut wrapper_policy, 3));

    let mut drive_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut drive_policy = FirstFitPolicy;
    let via_drive = zeroed(drive_sim.drive(
        RunInput::Generated,
        &mut drive_policy,
        RunOptions::new().with_seed_offset(3),
    ));
    assert_eq!(via_wrapper, via_drive, "run() drifted from drive()");

    let mut slotted_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut slotted_policy = FirstFitPolicy;
    let via_slotted = zeroed(slotted_sim.run_slotted(&mut slotted_policy, 3));

    let mut oracle_sim = Simulation::new(&scenario, RewardConfig::default());
    let mut oracle_policy = FirstFitPolicy;
    let via_oracle = zeroed(oracle_sim.drive(
        RunInput::Generated,
        &mut oracle_policy,
        RunOptions::new().slotted().with_seed_offset(3),
    ));
    assert_eq!(
        via_slotted, via_oracle,
        "run_slotted() drifted from drive(..slotted())"
    );
    assert_eq!(via_wrapper, via_oracle, "engines drifted from each other");
}

#[test]
#[should_panic(expected = "cannot mix")]
fn slot_compat_after_sparse_is_rejected() {
    let scenario = Scenario::small_test();
    let mut sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = FirstFitPolicy;
    let _ = sim.drive(
        RunInput::Events(&[]),
        &mut policy,
        RunOptions::new().sparse().with_horizon(4),
    );
    // Sparse billing has already diverged from whole-slot accounting;
    // this must panic rather than silently mix the two.
    let _ = sim.drive(RunInput::Generated, &mut policy, RunOptions::new());
}

#[test]
#[should_panic(expected = "slotted oracle")]
fn slotted_oracle_rejects_telemetry() {
    let scenario = Scenario::small_test();
    let mut sim = Simulation::new(&scenario, RewardConfig::default());
    let mut policy = FirstFitPolicy;
    let mut sink = TelemetrySink::new();
    let _ = sim.drive(
        RunInput::Generated,
        &mut policy,
        RunOptions::new().slotted().with_telemetry(&mut sink),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The funnel invariant `requested ≤ placed ≤ active ≤ torn_down`
    /// holds for every record under arbitrary load, seeds and failure
    /// injection, and closed records always carry an outcome.
    #[test]
    fn funnel_order_holds_over_random_scenarios(
        seed in 0u64..500,
        rate in 0.5f64..6.0,
        horizon in 8u64..48,
        failures in proptest::bool::ANY,
    ) {
        let mut scenario = Scenario::small_test().with_arrival_rate(rate);
        scenario.seed = seed;
        scenario.horizon_slots = horizon;
        if failures {
            scenario = scenario.with_failures(0.04, 4.0);
        }

        let mut sink = TelemetrySink::new();
        let mut sim = Simulation::new(&scenario, RewardConfig::default());
        let mut policy = FirstFitPolicy;
        let _ = sim.drive(
            RunInput::Generated,
            &mut policy,
            RunOptions::new().with_telemetry(&mut sink),
        );

        for record in sink.recent_flows() {
            prop_assert!(record.funnel_ordered(), "funnel violated: {record:?}");
            prop_assert!(
                record.outcome.is_some(),
                "closed record without outcome: {record:?}"
            );
        }
        let totals = sink.totals();
        prop_assert_eq!(
            totals.closed() + sink.open_flows() as u64,
            totals.requested + totals.replacements_requested
        );
    }
}
