//! # sweep — the sharded sweep execution protocol
//!
//! `exper` fans a (scenario × policy × seed) grid across *threads*; this
//! crate is the contract that fans it across *processes* (and, later,
//! hosts) without giving up the byte-identical-output guarantee. It holds
//! only protocol types and pure functions — no process spawning, no
//! event loops — mirroring the serverless-sweep split where the runtime
//! (local `Command` fleet today, remote workers tomorrow) stays out of
//! the core crate:
//!
//! * [`plan`] — pure, deterministic shard planning over global cell
//!   indices: [`plan::ShardPlan`] carries a schema version, the grid's
//!   structural fingerprint, the `shard_id`/`shard_of` coordinate and its
//!   half-open [`plan::CellRange`]s, serialized via `serde_json`.
//! * [`fragment`] — the partitioned output contract: one worker writes
//!   one `BENCH_<name>.shard<K>of<N>.json` [`fragment::ShardFragment`]
//!   holding its `(global index, cell)` pairs plus the same version +
//!   fingerprint stamps.
//! * [`merge`] — [`merge::merge_fragments`]: validates versions and
//!   fingerprints, re-keys every cell by global index, recomputes the
//!   aggregates through the same reduction as an in-process run, and
//!   returns a report whose canonical JSON is **byte-identical** to the
//!   single-process `ExperimentGrid::run` output for *any* partition and
//!   any completion order.
//!
//! # Determinism contract
//!
//! A cell is a pure function of (scenario, policy factory, seed), and the
//! merge is keyed by global grid index — never by shard id, completion
//! order, or fragment-internal order. Process boundaries therefore add
//! nothing observable: `merge(fragments).canonical_json()` equals
//! `grid.run().canonical_json()` byte for byte (measurement metadata —
//! wall clock, threads, derived throughput — is scrubbed to zero in the
//! canonical form on both sides). See `docs/sweep.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fragment;
pub mod merge;
pub mod plan;

/// Convenient glob-import of the protocol surface.
pub mod prelude {
    pub use crate::fragment::{
        fragment, fragment_file_name, load_fragment, shards_dir, ShardFragment,
    };
    pub use crate::merge::{merge_fragments, MergeError};
    pub use crate::plan::{plan, CellRange, ShardPlan, SWEEP_SCHEMA_VERSION};
}
