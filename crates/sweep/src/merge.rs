//! The deterministic merge: fragments in, a byte-identical report out.
//!
//! Validation is strict — a merge that silently tolerated a stale or
//! foreign fragment would produce a *plausible* report with wrong cells,
//! which is worse than no report. Every fragment must carry the current
//! schema version and the expected grid name + fingerprint, and the
//! fragments together must cover every global cell index exactly once.

use crate::fragment::ShardFragment;
use crate::plan::SWEEP_SCHEMA_VERSION;
use mano::report::{group_aggregates, BenchCell, BenchReport};

/// Why a set of fragments cannot be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// A fragment was produced by a different protocol version.
    SchemaVersion {
        /// The offending fragment's shard id.
        shard_id: usize,
        /// The version it carries.
        found: u64,
    },
    /// A fragment belongs to a different grid.
    GridName {
        /// The offending fragment's shard id.
        shard_id: usize,
        /// The grid name it carries.
        found: String,
    },
    /// A fragment was executed against a structurally different grid
    /// (stale registry, different FAST mode, different seeds, …).
    Fingerprint {
        /// The offending fragment's shard id.
        shard_id: usize,
        /// The fingerprint it carries.
        found: String,
    },
    /// Fragments disagree on the total shard count.
    ShardCount {
        /// The offending fragment's shard id.
        shard_id: usize,
        /// The shard count it carries.
        found: usize,
        /// The shard count of the first fragment.
        expected: usize,
    },
    /// A cell index lies outside the grid.
    CellOutOfRange {
        /// The offending global cell index.
        index: usize,
        /// The grid's cell count.
        cell_count: usize,
    },
    /// Two fragments (or one fragment twice) delivered the same cell.
    DuplicateCell {
        /// The duplicated global cell index.
        index: usize,
    },
    /// Coverage is incomplete — some shards are missing or ran short.
    MissingCells {
        /// How many global indices no fragment delivered.
        missing: usize,
        /// The grid's cell count.
        cell_count: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::SchemaVersion { shard_id, found } => write!(
                f,
                "shard {shard_id}: schema version {found} != expected {SWEEP_SCHEMA_VERSION}"
            ),
            MergeError::GridName { shard_id, found } => {
                write!(f, "shard {shard_id}: fragment belongs to grid {found:?}")
            }
            MergeError::Fingerprint { shard_id, found } => write!(
                f,
                "shard {shard_id}: grid fingerprint {found:?} does not match the \
                 current grid (stale fragment? different FAST mode?)"
            ),
            MergeError::ShardCount {
                shard_id,
                found,
                expected,
            } => write!(
                f,
                "shard {shard_id}: claims {found} total shards, other fragments claim {expected}"
            ),
            MergeError::CellOutOfRange { index, cell_count } => {
                write!(f, "cell index {index} outside grid of {cell_count} cells")
            }
            MergeError::DuplicateCell { index } => {
                write!(f, "cell index {index} delivered by more than one fragment")
            }
            MergeError::MissingCells {
                missing,
                cell_count,
            } => write!(
                f,
                "{missing} of {cell_count} cells missing — not every shard landed"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges shard fragments back into one [`BenchReport`] whose canonical
/// JSON is byte-identical to the single-process `ExperimentGrid::run`
/// output — for any partition of the cells into fragments, delivered in
/// any order, with any internal cell order.
///
/// Cells land in index-addressed slots (the cross-process extension of
/// the in-process index-keyed reduction) and the aggregates are
/// recomputed from the re-keyed cells through the same
/// [`group_aggregates`] walk an in-process run uses. Measurement
/// metadata (`threads`, `wall_clock_secs`, `throughput_slots_per_sec`)
/// is set to zero — the canonical form; whoever wants wall-clock numbers
/// reads them from the driver's own log/series, not from the merged
/// deterministic payload.
///
/// # Errors
///
/// Rejects mismatched schema versions, grid names, fingerprints and
/// shard counts, and any coverage defect (out-of-range, duplicate, or
/// missing cells). See [`MergeError`].
pub fn merge_fragments(
    grid_name: &str,
    grid_fingerprint: &str,
    cell_count: usize,
    fragments: &[ShardFragment],
) -> Result<BenchReport, MergeError> {
    let expected_shards = fragments.first().map(|f| f.shard_of);
    let mut slots: Vec<Option<BenchCell>> = (0..cell_count).map(|_| None).collect();
    for frag in fragments {
        if frag.schema_version != SWEEP_SCHEMA_VERSION {
            return Err(MergeError::SchemaVersion {
                shard_id: frag.shard_id,
                found: frag.schema_version,
            });
        }
        if frag.grid_name != grid_name {
            return Err(MergeError::GridName {
                shard_id: frag.shard_id,
                found: frag.grid_name.clone(),
            });
        }
        if frag.grid_fingerprint != grid_fingerprint {
            return Err(MergeError::Fingerprint {
                shard_id: frag.shard_id,
                found: frag.grid_fingerprint.clone(),
            });
        }
        if let Some(expected) = expected_shards {
            if frag.shard_of != expected {
                return Err(MergeError::ShardCount {
                    shard_id: frag.shard_id,
                    found: frag.shard_of,
                    expected,
                });
            }
        }
        for (index, cell) in &frag.cells {
            let slot = slots.get_mut(*index).ok_or(MergeError::CellOutOfRange {
                index: *index,
                cell_count,
            })?;
            if slot.is_some() {
                return Err(MergeError::DuplicateCell { index: *index });
            }
            *slot = Some(cell.clone());
        }
    }
    let missing = slots.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(MergeError::MissingCells {
            missing,
            cell_count,
        });
    }
    let cells: Vec<BenchCell> = slots.into_iter().map(|s| s.expect("checked")).collect();
    let slots_simulated: u64 = cells.iter().map(|c| c.summary.slots).sum();
    let aggregates = group_aggregates(&cells);
    Ok(BenchReport {
        name: grid_name.to_string(),
        threads: 0,
        wall_clock_secs: 0.0,
        slots_simulated,
        throughput_slots_per_sec: 0.0,
        fingerprint: grid_fingerprint.to_string(),
        cells,
        aggregates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::fragment;
    use mano::metrics::RunSummary;

    fn cell(index: usize) -> (usize, BenchCell) {
        (
            index,
            BenchCell {
                scenario: "s0".into(),
                policy: format!("p{}", index / 2),
                x: 1.0,
                seed: index as u64,
                summary: RunSummary {
                    slots: 10,
                    total_arrivals: 100,
                    total_accepted: 90,
                    total_rejected: 10,
                    acceptance_ratio: 0.9,
                    sla_violation_ratio: 0.05,
                    mean_admission_latency_ms: 25.0 + index as f64,
                    p50_admission_latency_ms: 20.0,
                    p95_admission_latency_ms: 60.0,
                    total_cost_usd: 5.0,
                    mean_slot_cost_usd: 0.5,
                    mean_utilization: 0.4,
                    mean_active_flows: 30.0,
                    mean_live_instances: 12.0,
                    mean_decision_time_us: 0.0,
                    flows_disrupted: 3,
                    replacement_success_rate: 2.0 / 3.0,
                    downtime_slots: 7,
                },
            },
        )
    }

    #[test]
    fn merge_rekeys_any_delivery_order() {
        let a = fragment("g", "fp", 1, 2, vec![cell(3), cell(2)]);
        let b = fragment("g", "fp", 0, 2, vec![cell(1), cell(0)]);
        let merged = merge_fragments("g", "fp", 4, &[a, b]).unwrap();
        assert_eq!(merged.cells.len(), 4);
        let lats: Vec<f64> = merged
            .cells
            .iter()
            .map(|c| c.summary.mean_admission_latency_ms)
            .collect();
        assert_eq!(lats, vec![25.0, 26.0, 27.0, 28.0]);
        assert_eq!(merged.aggregates.len(), 2, "recomputed per (policy) group");
        assert_eq!(merged.slots_simulated, 40);
        assert_eq!(merged.threads, 0, "canonical metadata");
        assert_eq!(merged.wall_clock_secs, 0.0);
    }

    #[test]
    fn schema_version_mismatch_rejected() {
        let mut f = fragment("g", "fp", 0, 1, vec![cell(0)]);
        f.schema_version = SWEEP_SCHEMA_VERSION + 1;
        assert_eq!(
            merge_fragments("g", "fp", 1, &[f]),
            Err(MergeError::SchemaVersion {
                shard_id: 0,
                found: SWEEP_SCHEMA_VERSION + 1
            })
        );
    }

    #[test]
    fn fingerprint_and_name_mismatches_rejected() {
        let f = fragment("g", "stale-fp", 0, 1, vec![cell(0)]);
        assert!(matches!(
            merge_fragments("g", "fp", 1, std::slice::from_ref(&f)),
            Err(MergeError::Fingerprint { .. })
        ));
        assert!(matches!(
            merge_fragments("other", "stale-fp", 1, &[f]),
            Err(MergeError::GridName { .. })
        ));
    }

    #[test]
    fn coverage_defects_rejected() {
        let dup = vec![
            fragment("g", "fp", 0, 2, vec![cell(0), cell(1)]),
            fragment("g", "fp", 1, 2, vec![cell(1)]),
        ];
        assert_eq!(
            merge_fragments("g", "fp", 2, &dup),
            Err(MergeError::DuplicateCell { index: 1 })
        );
        let short = vec![fragment("g", "fp", 0, 2, vec![cell(0)])];
        assert_eq!(
            merge_fragments("g", "fp", 3, &short),
            Err(MergeError::MissingCells {
                missing: 2,
                cell_count: 3
            })
        );
        let oob = vec![fragment("g", "fp", 0, 1, vec![cell(5)])];
        assert_eq!(
            merge_fragments("g", "fp", 2, &oob),
            Err(MergeError::CellOutOfRange {
                index: 5,
                cell_count: 2
            })
        );
        let counts = vec![
            fragment("g", "fp", 0, 2, vec![cell(0)]),
            fragment("g", "fp", 1, 3, vec![cell(1)]),
        ];
        assert!(matches!(
            merge_fragments("g", "fp", 2, &counts),
            Err(MergeError::ShardCount { .. })
        ));
    }

    #[test]
    fn errors_render_human_messages() {
        let e = MergeError::MissingCells {
            missing: 2,
            cell_count: 8,
        };
        assert!(e.to_string().contains("2 of 8 cells missing"));
    }
}
