//! Partitioned output fragments: one worker's share of a grid run.
//!
//! A worker executes exactly its shard's cells and writes ONE fragment —
//! `shards/BENCH_<name>.shard<K>of<N>.json` under the results directory —
//! carrying `(global index, cell)` pairs plus the schema version and grid
//! fingerprint the merge validates. Fragments are a partitioned key
//! layout: the file name alone identifies the (grid, shard) coordinate,
//! so a driver (or a human) can see at a glance which shards have landed.

use crate::plan::SWEEP_SCHEMA_VERSION;
use mano::report::{cell_from_json, cell_json, BenchCell};
use serde_json::Value;
use std::io;
use std::path::{Path, PathBuf};

/// One shard's executed cells, keyed by global grid index.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFragment {
    /// Protocol version ([`SWEEP_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Registry name of the grid.
    pub grid_name: String,
    /// Structural fingerprint of the grid the worker executed.
    pub grid_fingerprint: String,
    /// Which shard this fragment is, `0..shard_of`.
    pub shard_id: usize,
    /// Total shards of the run this fragment belongs to.
    pub shard_of: usize,
    /// `(global cell index, cell)` pairs. Order inside the fragment is
    /// irrelevant — the merge re-keys by index.
    pub cells: Vec<(usize, BenchCell)>,
}

/// The partitioned file name of a fragment:
/// `BENCH_<name>.shard<K>of<N>.json` (shard ids are zero-based).
pub fn fragment_file_name(grid_name: &str, shard_id: usize, shard_of: usize) -> String {
    format!("BENCH_{grid_name}.shard{shard_id}of{shard_of}.json")
}

/// The shard-fragment directory under a results directory.
pub fn shards_dir(results_dir: &Path) -> PathBuf {
    results_dir.join("shards")
}

impl ShardFragment {
    /// This fragment's [`fragment_file_name`].
    pub fn file_name(&self) -> String {
        fragment_file_name(&self.grid_name, self.shard_id, self.shard_of)
    }

    /// Serializes the fragment (the on-disk form).
    pub fn to_json(&self) -> Value {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|(index, cell)| {
                let mut m = serde_json::Map::new();
                m.insert("index", Value::from(*index as u64));
                m.insert("cell", cell_json(cell));
                Value::Object(m)
            })
            .collect();
        let mut m = serde_json::Map::new();
        m.insert("schema_version", Value::from(self.schema_version));
        m.insert("grid_name", Value::from(self.grid_name.as_str()));
        m.insert(
            "grid_fingerprint",
            Value::from(self.grid_fingerprint.as_str()),
        );
        m.insert("shard_id", Value::from(self.shard_id as u64));
        m.insert("shard_of", Value::from(self.shard_of as u64));
        m.insert("cells", Value::Array(cells));
        Value::Object(m)
    }

    /// Parses a fragment back from [`ShardFragment::to_json`] output.
    /// The JSON round-trip is exact (cells carry `f64` bit patterns
    /// through the deterministic writer), which is what lets a merged
    /// report match an in-process run byte for byte.
    pub fn from_json(v: &Value) -> Option<Self> {
        let u = |k: &str| v.get(k).and_then(Value::as_u64);
        let cells = v
            .get("cells")?
            .as_array()?
            .iter()
            .map(|c| {
                Some((
                    c.get("index")?.as_u64()? as usize,
                    cell_from_json(c.get("cell")?)?,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            schema_version: u("schema_version")?,
            grid_name: v.get("grid_name")?.as_str()?.to_string(),
            grid_fingerprint: v.get("grid_fingerprint")?.as_str()?.to_string(),
            shard_id: u("shard_id")? as usize,
            shard_of: u("shard_of")? as usize,
            cells,
        })
    }

    /// Writes the fragment into `shards/` under `results_dir` (created if
    /// missing) and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, results_dir: &Path) -> io::Result<PathBuf> {
        let path = shards_dir(results_dir).join(self.file_name());
        mano::report::write_lines(&path, &[serde_json::to_string_pretty(&self.to_json())])?;
        Ok(path)
    }
}

/// Builds a fragment around executed cells, stamped with the current
/// protocol version.
pub fn fragment(
    grid_name: impl Into<String>,
    grid_fingerprint: impl Into<String>,
    shard_id: usize,
    shard_of: usize,
    cells: Vec<(usize, BenchCell)>,
) -> ShardFragment {
    ShardFragment {
        schema_version: SWEEP_SCHEMA_VERSION,
        grid_name: grid_name.into(),
        grid_fingerprint: grid_fingerprint.into(),
        shard_id,
        shard_of,
        cells,
    }
}

/// Loads and parses one fragment file, if present and well-formed.
pub fn load_fragment(path: &Path) -> Option<ShardFragment> {
    let text = std::fs::read_to_string(path).ok()?;
    ShardFragment::from_json(&serde_json::from_str(&text).ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mano::metrics::RunSummary;

    fn cell(index: usize) -> (usize, BenchCell) {
        (
            index,
            BenchCell {
                scenario: format!("s{}", index / 4),
                policy: format!("p{}", index % 2),
                x: 1.5 + index as f64,
                seed: 100 + index as u64,
                summary: RunSummary {
                    slots: 10,
                    total_arrivals: 40 + index as u64,
                    total_accepted: 30,
                    total_rejected: 10 + index as u64,
                    acceptance_ratio: 0.75,
                    sla_violation_ratio: 0.05,
                    mean_admission_latency_ms: 25.0 + index as f64 * 0.125,
                    p50_admission_latency_ms: 20.0,
                    p95_admission_latency_ms: 60.0,
                    total_cost_usd: 5.0,
                    mean_slot_cost_usd: 0.5,
                    mean_utilization: 0.4,
                    mean_active_flows: 30.0,
                    mean_live_instances: 12.0,
                    mean_decision_time_us: 0.0,
                    flows_disrupted: 3,
                    replacement_success_rate: 2.0 / 3.0,
                    downtime_slots: 7,
                },
            },
        )
    }

    #[test]
    fn file_name_is_the_partitioned_key() {
        assert_eq!(
            fragment_file_name("fig2_load", 1, 4),
            "BENCH_fig2_load.shard1of4.json"
        );
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let f = fragment("unit", "unit-feed", 2, 3, vec![cell(5), cell(3)]);
        let text = serde_json::to_string_pretty(&f.to_json());
        let parsed = ShardFragment::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn write_and_load_under_shards_dir() {
        let dir = std::env::temp_dir().join(format!("sweep_fragment_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let f = fragment("unit", "unit-feed", 0, 2, vec![cell(0)]);
        let path = f.write_to(&dir).unwrap();
        assert!(path.starts_with(shards_dir(&dir)));
        assert_eq!(load_fragment(&path).unwrap(), f);
        assert_eq!(load_fragment(&dir.join("missing.json")), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
