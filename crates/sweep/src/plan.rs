//! Deterministic shard planning over global grid-cell indices.
//!
//! A plan is a pure function of `(cell_count, shard_of)`: contiguous
//! balanced blocks, the first `cell_count % shard_of` shards one cell
//! longer. Every worker can therefore recompute the whole plan locally
//! from the registry grid — no coordinator state to ship — and the plan
//! document itself is still serializable (schema-versioned, fingerprint-
//! stamped) so a future multi-host driver can hand shards out explicitly.

use serde_json::Value;

/// Version stamp of the sweep protocol's serialized artifacts (shard
/// plans and output fragments). Bump on breaking changes so stale
/// workers and merges are rejected instead of silently mis-merged.
pub const SWEEP_SCHEMA_VERSION: u64 = 1;

/// A half-open range `[start, end)` of global grid-cell indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRange {
    /// First global cell index of the range.
    pub start: usize,
    /// One past the last global cell index of the range.
    pub end: usize,
}

impl CellRange {
    /// Number of cells in the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range covers no cells.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The work order for one shard of a grid: which global cells to run,
/// plus everything the merge needs to refuse a mismatched fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Protocol version ([`SWEEP_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Registry name of the grid (`BENCH_<name>.json`).
    pub grid_name: String,
    /// Structural fingerprint of the grid (`ExperimentGrid::auto_fingerprint`);
    /// the merge rejects fragments whose fingerprint differs.
    pub grid_fingerprint: String,
    /// This shard's id, `0..shard_of`.
    pub shard_id: usize,
    /// Total number of shards in the plan.
    pub shard_of: usize,
    /// The global cell indices this shard executes. The planner emits at
    /// most one contiguous range per shard; the contract allows several
    /// (e.g. a striding planner later) and the merge never assumes
    /// contiguity.
    pub cell_ranges: Vec<CellRange>,
}

impl ShardPlan {
    /// All global cell indices of this shard, ascending within each range.
    pub fn cell_indices(&self) -> Vec<usize> {
        self.cell_ranges
            .iter()
            .flat_map(|r| r.start..r.end)
            .collect()
    }

    /// Number of cells this shard executes.
    pub fn cell_count(&self) -> usize {
        self.cell_ranges.iter().map(CellRange::len).sum()
    }

    /// Serializes the plan (the wire/disk form).
    pub fn to_json(&self) -> Value {
        let ranges: Vec<Value> = self
            .cell_ranges
            .iter()
            .map(|r| {
                let mut m = serde_json::Map::new();
                m.insert("start", Value::from(r.start as u64));
                m.insert("end", Value::from(r.end as u64));
                Value::Object(m)
            })
            .collect();
        let mut m = serde_json::Map::new();
        m.insert("schema_version", Value::from(self.schema_version));
        m.insert("grid_name", Value::from(self.grid_name.as_str()));
        m.insert(
            "grid_fingerprint",
            Value::from(self.grid_fingerprint.as_str()),
        );
        m.insert("shard_id", Value::from(self.shard_id as u64));
        m.insert("shard_of", Value::from(self.shard_of as u64));
        m.insert("cell_ranges", Value::Array(ranges));
        Value::Object(m)
    }

    /// Parses a plan back from [`ShardPlan::to_json`] output.
    pub fn from_json(v: &Value) -> Option<Self> {
        let u = |k: &str| v.get(k).and_then(Value::as_u64);
        let cell_ranges = v
            .get("cell_ranges")?
            .as_array()?
            .iter()
            .map(|r| {
                Some(CellRange {
                    start: r.get("start")?.as_u64()? as usize,
                    end: r.get("end")?.as_u64()? as usize,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            schema_version: u("schema_version")?,
            grid_name: v.get("grid_name")?.as_str()?.to_string(),
            grid_fingerprint: v.get("grid_fingerprint")?.as_str()?.to_string(),
            shard_id: u("shard_id")? as usize,
            shard_of: u("shard_of")? as usize,
            cell_ranges,
        })
    }
}

/// Plans `cell_count` cells across `shard_of` shards: contiguous balanced
/// blocks in grid-index order, deterministically — same inputs, same plan,
/// on every process that computes it. Shards beyond the cell count get an
/// empty range list (they run nothing but still write a fragment, so the
/// merge's coverage check stays uniform).
///
/// # Panics
///
/// Panics if `shard_of == 0`.
pub fn plan(
    grid_name: &str,
    grid_fingerprint: &str,
    cell_count: usize,
    shard_of: usize,
) -> Vec<ShardPlan> {
    assert!(shard_of > 0, "need at least one shard");
    let base = cell_count / shard_of;
    let extra = cell_count % shard_of;
    let mut start = 0usize;
    (0..shard_of)
        .map(|shard_id| {
            let len = base + usize::from(shard_id < extra);
            let range = CellRange {
                start,
                end: start + len,
            };
            start = range.end;
            ShardPlan {
                schema_version: SWEEP_SCHEMA_VERSION,
                grid_name: grid_name.to_string(),
                grid_fingerprint: grid_fingerprint.to_string(),
                shard_id,
                shard_of,
                cell_ranges: if range.is_empty() {
                    vec![]
                } else {
                    vec![range]
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_every_cell_exactly_once() {
        for (cells, shards) in [(0, 1), (1, 4), (7, 3), (24, 4), (10, 10), (5, 8)] {
            let plans = plan("g", "fp", cells, shards);
            assert_eq!(plans.len(), shards);
            let mut seen = vec![false; cells];
            for (k, p) in plans.iter().enumerate() {
                assert_eq!(p.shard_id, k);
                assert_eq!(p.shard_of, shards);
                assert_eq!(p.schema_version, SWEEP_SCHEMA_VERSION);
                for i in p.cell_indices() {
                    assert!(!seen[i], "cell {i} planned twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "plan left cells unassigned");
        }
    }

    #[test]
    fn plan_is_balanced_within_one_cell() {
        let plans = plan("g", "fp", 23, 5);
        let counts: Vec<usize> = plans.iter().map(ShardPlan::cell_count).collect();
        assert_eq!(counts, vec![5, 5, 5, 4, 4]);
    }

    #[test]
    fn plan_is_deterministic() {
        assert_eq!(plan("g", "fp", 17, 4), plan("g", "fp", 17, 4));
    }

    #[test]
    fn plan_json_roundtrip_is_exact() {
        for p in plan("fig2_load", "fig2_load-00ff", 24, 3) {
            let text = serde_json::to_string_pretty(&p.to_json());
            let parsed = ShardPlan::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn oversharded_plan_has_empty_tail_shards() {
        let plans = plan("g", "fp", 2, 5);
        assert_eq!(plans[0].cell_count(), 1);
        assert_eq!(plans[1].cell_count(), 1);
        for p in &plans[2..] {
            assert_eq!(p.cell_count(), 0);
            assert!(p.cell_ranges.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = plan("g", "fp", 4, 0);
    }
}
