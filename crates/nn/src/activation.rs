//! Element-wise activation functions and their derivatives.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// An element-wise activation function.
///
/// Derivatives are expressed in terms of the *pre-activation* input `z`,
/// which is what the MLP caches during the forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Activation {
    /// `f(z) = z` — used on output layers (Q-values are unbounded).
    Identity,
    /// `f(z) = max(0, z)`.
    #[default]
    Relu,
    /// `f(z) = max(alpha * z, z)` for small positive `alpha`.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn apply(self, z: &Matrix) -> Matrix {
        match self {
            Activation::Identity => z.clone(),
            Activation::Relu => z.map(|v| if v > 0.0 { v } else { 0.0 }),
            Activation::LeakyRelu(alpha) => z.map(move |v| if v > 0.0 { v } else { alpha * v }),
            Activation::Tanh => z.map(f32::tanh),
            Activation::Sigmoid => z.map(sigmoid),
        }
    }

    /// Applies the activation to one scalar — the same expression per
    /// variant as the matrix forms, so fused kernels built on it are
    /// bit-identical to `apply`/`apply_assign`.
    #[inline]
    pub fn apply_scalar(self, v: f32) -> f32 {
        match self {
            Activation::Identity => v,
            Activation::Relu => {
                if v > 0.0 {
                    v
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(alpha) => {
                if v > 0.0 {
                    v
                } else {
                    alpha * v
                }
            }
            Activation::Tanh => v.tanh(),
            Activation::Sigmoid => sigmoid(v),
        }
    }

    /// Applies the activation element-wise in place (no allocation).
    pub fn apply_assign(self, z: &mut Matrix) {
        match self {
            Activation::Identity => {}
            Activation::Relu => z.map_assign(|v| if v > 0.0 { v } else { 0.0 }),
            Activation::LeakyRelu(alpha) => {
                z.map_assign(move |v| if v > 0.0 { v } else { alpha * v })
            }
            Activation::Tanh => z.map_assign(f32::tanh),
            Activation::Sigmoid => z.map_assign(sigmoid),
        }
    }

    /// Applies the activation into `out`, reusing `out`'s allocation and
    /// leaving the pre-activation `z` intact (the training forward pass
    /// needs both). Fused single pass: `f(z)` writes straight into `out`
    /// instead of copy-then-transform.
    pub fn apply_into(self, z: &Matrix, out: &mut Matrix) {
        out.reset_for_overwrite(z.rows(), z.cols());
        let zs = z.as_slice();
        let os = out.as_mut_slice();
        match self {
            Activation::Identity => os.copy_from_slice(zs),
            Activation::Relu => {
                for (o, &v) in os.iter_mut().zip(zs.iter()) {
                    *o = if v > 0.0 { v } else { 0.0 };
                }
            }
            Activation::LeakyRelu(alpha) => {
                for (o, &v) in os.iter_mut().zip(zs.iter()) {
                    *o = if v > 0.0 { v } else { alpha * v };
                }
            }
            Activation::Tanh => {
                for (o, &v) in os.iter_mut().zip(zs.iter()) {
                    *o = v.tanh();
                }
            }
            Activation::Sigmoid => {
                for (o, &v) in os.iter_mut().zip(zs.iter()) {
                    *o = sigmoid(v);
                }
            }
        }
    }

    /// Writes `upstream ⊙ f'(z)` into `out` — the fused first step of the
    /// backward pass, replacing the old materialize-derivative-then-hadamard
    /// pair. Each element computes the identical `upstream * f'(z)` product,
    /// so results are bit-identical to the two-step form.
    ///
    /// # Panics
    ///
    /// Panics if `z` and `upstream` shapes differ.
    pub fn derivative_mul_into(self, z: &Matrix, upstream: &Matrix, out: &mut Matrix) {
        assert_eq!(
            z.shape(),
            upstream.shape(),
            "derivative_mul_into shape mismatch"
        );
        out.reset_for_overwrite(z.rows(), z.cols());
        let zs = z.as_slice();
        let us = upstream.as_slice();
        let os = out.as_mut_slice();
        match self {
            Activation::Identity => {
                for (o, &u) in os.iter_mut().zip(us.iter()) {
                    *o = u * 1.0;
                }
            }
            Activation::Relu => {
                for ((o, &u), &zv) in os.iter_mut().zip(us.iter()).zip(zs.iter()) {
                    *o = u * if zv > 0.0 { 1.0 } else { 0.0 };
                }
            }
            Activation::LeakyRelu(alpha) => {
                for ((o, &u), &zv) in os.iter_mut().zip(us.iter()).zip(zs.iter()) {
                    *o = u * if zv > 0.0 { 1.0 } else { alpha };
                }
            }
            Activation::Tanh => {
                for ((o, &u), &zv) in os.iter_mut().zip(us.iter()).zip(zs.iter()) {
                    let t = zv.tanh();
                    *o = u * (1.0 - t * t);
                }
            }
            Activation::Sigmoid => {
                for ((o, &u), &zv) in os.iter_mut().zip(us.iter()).zip(zs.iter()) {
                    let s = sigmoid(zv);
                    *o = u * (s * (1.0 - s));
                }
            }
        }
    }

    /// Derivative `f'(z)` element-wise, given the pre-activation `z`.
    pub fn derivative(self, z: &Matrix) -> Matrix {
        match self {
            Activation::Identity => Matrix::full(z.rows(), z.cols(), 1.0),
            Activation::Relu => z.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::LeakyRelu(alpha) => z.map(move |v| if v > 0.0 { 1.0 } else { alpha }),
            Activation::Tanh => z.map(|v| {
                let t = v.tanh();
                1.0 - t * t
            }),
            Activation::Sigmoid => z.map(|v| {
                let s = sigmoid(v);
                s * (1.0 - s)
            }),
        }
    }

    /// Short lowercase name (used in config summaries).
    pub fn name(self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::LeakyRelu(_) => "leaky_relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
        }
    }
}

#[inline]
fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        // Numerically stable branch for large negative v.
        let e = v.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_derivative_numerically(act: Activation, points: &[f32]) {
        let eps = 1e-3f32;
        for &p in points {
            let z = Matrix::row_vector(&[p]);
            let analytic = act.derivative(&z).get(0, 0);
            let plus = act.apply(&Matrix::row_vector(&[p + eps])).get(0, 0);
            let minus = act.apply(&Matrix::row_vector(&[p - eps])).get(0, 0);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "{}: derivative at {p} analytic={analytic} numeric={numeric}",
                act.name()
            );
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let z = Matrix::row_vector(&[-2.0, 0.0, 3.0]);
        assert_eq!(
            Activation::Relu.apply(&z),
            Matrix::row_vector(&[0.0, 0.0, 3.0])
        );
    }

    #[test]
    fn leaky_relu_keeps_small_slope() {
        let z = Matrix::row_vector(&[-10.0, 10.0]);
        let out = Activation::LeakyRelu(0.01).apply(&z);
        assert!((out.get(0, 0) + 0.1).abs() < 1e-6);
        assert!((out.get(0, 1) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_saturates_and_is_stable() {
        let z = Matrix::row_vector(&[-100.0, 0.0, 100.0]);
        let out = Activation::Sigmoid.apply(&z);
        assert!(out.get(0, 0) < 1e-6);
        assert!((out.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(out.get(0, 2) > 1.0 - 1e-6);
        assert!(!out.has_non_finite());
    }

    #[test]
    fn tanh_is_odd() {
        let z = Matrix::row_vector(&[1.3]);
        let nz = Matrix::row_vector(&[-1.3]);
        let a = Activation::Tanh.apply(&z).get(0, 0);
        let b = Activation::Tanh.apply(&nz).get(0, 0);
        assert!((a + b).abs() < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        // Avoid the ReLU kink at 0 where the derivative is undefined.
        check_derivative_numerically(Activation::Identity, &[-1.0, 0.5, 2.0]);
        check_derivative_numerically(Activation::Relu, &[-1.5, -0.3, 0.4, 2.0]);
        check_derivative_numerically(Activation::LeakyRelu(0.05), &[-1.5, 0.7]);
        check_derivative_numerically(Activation::Tanh, &[-2.0, -0.1, 0.0, 1.0]);
        check_derivative_numerically(Activation::Sigmoid, &[-3.0, 0.0, 3.0]);
    }

    #[test]
    fn identity_derivative_is_one() {
        let z = Matrix::row_vector(&[5.0, -5.0]);
        assert_eq!(
            Activation::Identity.derivative(&z),
            Matrix::row_vector(&[1.0, 1.0])
        );
    }
}
