//! Numerical gradient checking.
//!
//! Backprop bugs are silent — the network still trains, just badly. Every
//! layer/loss combination in this crate is validated against central finite
//! differences, both in unit tests and in property tests.

use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::tensor::Matrix;

/// Result of comparing analytic and numeric gradients.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference across all checked parameters.
    pub max_abs_diff: f32,
    /// Largest relative difference (`|a-n| / max(1e-6, |a|+|n|)`).
    pub max_rel_diff: f32,
    /// Number of parameters checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// `true` if both error measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_diff < tol || self.max_rel_diff < tol
    }
}

/// Compares analytic parameter gradients of `net` against central finite
/// differences for the scalar loss `loss(net(x), target)`.
///
/// Checks every parameter if the network is small, otherwise a strided
/// subset (bounded work for property tests).
///
/// # Panics
///
/// Panics on shape mismatches between `x`, `target` and the network.
pub fn check_mlp_gradients(
    net: &mut Mlp,
    x: &Matrix,
    target: &Matrix,
    loss: Loss,
    eps: f32,
) -> GradCheckReport {
    // Analytic pass.
    let pred = net.forward_train(x);
    let (_, grad_out) = loss.evaluate(&pred, target);
    net.backward(&grad_out);
    let analytic: Vec<(Matrix, Matrix)> = net.drain_gradients();

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut checked = 0usize;

    let total_params: usize = net.param_count();
    let stride = (total_params / 512).max(1);
    let mut flat_index = 0usize;

    for (layer_idx, grads) in analytic.iter().enumerate() {
        for which in 0..2usize {
            // Gradient matrices share their parameter's shape.
            let shape = if which == 0 {
                grads.0.shape()
            } else {
                grads.1.shape()
            };
            for r in 0..shape.0 {
                for c in 0..shape.1 {
                    flat_index += 1;
                    if !flat_index.is_multiple_of(stride) {
                        continue;
                    }
                    let a = if which == 0 {
                        grads.0.get(r, c)
                    } else {
                        grads.1.get(r, c)
                    };
                    let numeric = {
                        let plus =
                            perturbed_loss(net, layer_idx, which, r, c, eps, x, target, loss);
                        let minus =
                            perturbed_loss(net, layer_idx, which, r, c, -eps, x, target, loss);
                        (plus - minus) / (2.0 * eps)
                    };
                    let abs = (a - numeric).abs();
                    let rel = abs / (a.abs() + numeric.abs()).max(1e-6);
                    max_abs = max_abs.max(abs);
                    max_rel = max_rel.max(rel);
                    checked += 1;
                }
            }
        }
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
        checked,
    }
}

#[allow(clippy::too_many_arguments)] // internal helper; the coordinates are irreducible
fn perturbed_loss(
    net: &mut Mlp,
    layer: usize,
    which: usize,
    r: usize,
    c: usize,
    eps: f32,
    x: &Matrix,
    target: &Matrix,
    loss: Loss,
) -> f32 {
    net.perturb_parameter(layer, which, r, c, eps);
    let pred = net.forward(x);
    let (l, _) = loss.evaluate(&pred, target);
    net.perturb_parameter(layer, which, r, c, -eps);
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::MlpConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(config: MlpConfig, loss: Loss, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(&config, &mut rng);
        use rand::Rng as _;
        let x = Matrix::from_fn(3, config.input_dim, |_, _| rng.gen_range(-1.0..1.0));
        let t = Matrix::from_fn(3, config.output_dim, |_, _| rng.gen_range(-1.0..1.0));
        let report = check_mlp_gradients(&mut net, &x, &t, loss, 1e-2);
        assert!(
            report.passes(2e-2),
            "gradcheck failed for {:?}/{:?}: {:?}",
            config.hidden_activation,
            loss,
            report
        );
        assert!(report.checked > 0);
    }

    #[test]
    fn tanh_mse_gradients_match() {
        check(
            MlpConfig::new(4, &[8, 6], 3).hidden_activation(Activation::Tanh),
            Loss::Mse,
            1,
        );
    }

    #[test]
    fn sigmoid_mse_gradients_match() {
        check(
            MlpConfig::new(3, &[5], 2).hidden_activation(Activation::Sigmoid),
            Loss::Mse,
            2,
        );
    }

    #[test]
    fn leaky_relu_huber_gradients_match() {
        check(
            MlpConfig::new(5, &[10], 4).hidden_activation(Activation::LeakyRelu(0.05)),
            Loss::Huber(1.0),
            3,
        );
    }

    #[test]
    fn linear_net_gradients_match() {
        check(MlpConfig::new(4, &[], 2), Loss::Mse, 4);
    }

    #[test]
    fn deep_network_gradients_match() {
        check(
            MlpConfig::new(3, &[6, 6, 6, 6], 2).hidden_activation(Activation::Tanh),
            Loss::Mse,
            5,
        );
    }
}
