//! Dense row-major 2-D matrix — the only tensor shape the library needs.
//!
//! All neural-network data in this crate is batched 2-D: `rows` = batch size
//! (or input dimension for weights), `cols` = feature dimension. Keeping a
//! single concrete shape keeps every operation allocation-explicit and easy
//! to audit, which matters more here than n-d generality.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use nn::tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a generator called as `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies the rows at `indices` into a new matrix (gather).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other` rows, cache friendly.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ * other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn tmatmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "tmatmul shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            let b_row = &other.data[r * other.cols..(r + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place element-wise `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Copy scaled by a scalar.
    pub fn scale(&self, factor: f32) -> Matrix {
        self.map(|v| v * factor)
    }

    /// In-place scale by a scalar.
    pub fn scale_assign(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "broadcast bias must be a row vector");
        assert_eq!(
            bias.cols, self.cols,
            "broadcast bias has {} cols, expected {}",
            bias.cols, self.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums every row into a `1 x cols` vector.
    pub fn col_sum(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Applies `f` element-wise into a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_assign<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Index and value of the maximum element of row `r`.
    ///
    /// Ties resolve to the lowest index; NaN entries are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or the matrix has no columns.
    pub fn row_argmax(&self, r: usize) -> (usize, f32) {
        let row = self.row(r);
        assert!(!row.is_empty(), "row_argmax on matrix with zero columns");
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, &v) in row.iter().enumerate() {
            if v > best.1 {
                best = (i, v);
            }
        }
        best
    }

    /// Maximum value of row `r` (skipping NaN).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or the matrix has no columns.
    pub fn row_max(&self, r: usize) -> f32 {
        self.row_argmax(r).1
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Matrix, f: F) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch: {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::full(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn tmatmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 1.5, 0.0], &[-1.0, 1.0, 2.0]]);
        assert_eq!(a.tmatmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.5, 2.0, -1.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!(
            a.add(&b),
            Matrix::from_rows(&[&[11.0, 22.0], &[33.0, 44.0]])
        );
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[9.0, 18.0], &[27.0, 36.0]]));
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[&[10.0, 40.0], &[90.0, 160.0]])
        );
    }

    #[test]
    fn broadcast_and_col_sum() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 100.0]);
        assert_eq!(
            a.add_row_broadcast(&bias),
            Matrix::from_rows(&[&[11.0, 102.0], &[13.0, 104.0]])
        );
        assert_eq!(a.col_sum(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let a = Matrix::from_rows(&[&[1.0, 5.0, 5.0, 0.0]]);
        assert_eq!(a.row_argmax(0), (1, 5.0));
    }

    #[test]
    fn gather_rows_copies_selected() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g, Matrix::from_rows(&[&[2.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    fn norm_and_finiteness() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!(!a.has_non_finite());
        let bad = Matrix::from_rows(&[&[f32::NAN]]);
        assert!(bad.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn scale_and_add_scaled_assign() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
        let mut b = Matrix::from_rows(&[&[1.0, 1.0]]);
        b.add_scaled_assign(&a, 0.5);
        assert_eq!(b, Matrix::from_rows(&[&[1.5, 0.0]]));
    }
}
