//! Dense row-major 2-D matrix — the only tensor shape the library needs.
//!
//! All neural-network data in this crate is batched 2-D: `rows` = batch size
//! (or input dimension for weights), `cols` = feature dimension. Keeping a
//! single concrete shape keeps every operation allocation-explicit and easy
//! to audit, which matters more here than n-d generality.
//!
//! Every product has two forms: an allocating method (`matmul`) and an
//! `*_into` variant writing into a caller-owned buffer whose allocation is
//! reused across calls. Both run the same blocked, branch-free kernels with
//! unrolled [`slice::chunks_exact`] accumulators that auto-vectorize; the
//! per-output-element accumulation order is identical to the historical
//! naive loops (kept in [`reference`]), so results are bit-identical.

use serde::{Deserialize, Serialize};

/// Number of `k` (contraction) indices processed per block in
/// [`Matrix::matmul_into`] / [`Matrix::tmatmul_into`]: keeps the streamed
/// panel of the right-hand operand hot in L1 across output rows while
/// preserving ascending-`k` accumulation per output element.
const K_BLOCK: usize = 64;

/// Tile shape of the register-blocked micro-kernel in
/// [`Matrix::matmul_into`]: [`ROW_TILE`] rows × [`J_TILE`] columns of
/// accumulators live in registers across the whole `k` sweep (16 ×
/// 8-lane vectors under AVX2, 8 × 16-lane under AVX-512 — enabled by the
/// workspace-level `target-cpu=native` build), so each loaded `b`
/// element feeds [`ROW_TILE`] multiply-add lanes and every accumulator
/// is stored exactly once instead of once per `k`. On narrower ISAs the
/// tile spills and merely matches the axpy path — correct either way.
const J_TILE: usize = 16;

/// Row depth of the micro-kernel tile (see [`J_TILE`]).
const ROW_TILE: usize = 8;

/// `out[j] += a * b[j]` over two equal-length slices, eight lanes per
/// iteration. Each output lane is independent, so the unroll reassociates
/// nothing — results are bit-identical to the scalar loop.
#[inline]
fn axpy(out: &mut [f32], b: &[f32], a: f32) {
    debug_assert_eq!(out.len(), b.len());
    let mut o_chunks = out.chunks_exact_mut(8);
    let mut b_chunks = b.chunks_exact(8);
    for (o, bv) in o_chunks.by_ref().zip(b_chunks.by_ref()) {
        o[0] += a * bv[0];
        o[1] += a * bv[1];
        o[2] += a * bv[2];
        o[3] += a * bv[3];
        o[4] += a * bv[4];
        o[5] += a * bv[5];
        o[6] += a * bv[6];
        o[7] += a * bv[7];
    }
    for (o, &bv) in o_chunks
        .into_remainder()
        .iter_mut()
        .zip(b_chunks.remainder())
    {
        *o += a * bv;
    }
}

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use nn::tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the natural initial state for reusable
    /// scratch buffers, which take their shape on first write.
    fn default() -> Self {
        Self {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a generator called as `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes to `rows x cols` and zero-fills, reusing the existing
    /// allocation whenever capacity allows. The workhorse of the
    /// accumulating `*_into` kernels: a long-lived scratch matrix never
    /// reallocates once it has seen its steady-state shape.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Reshapes to `rows x cols` for a kernel that overwrites **every**
    /// element: when the element count already matches (the steady state)
    /// the stale contents are kept as-is, skipping `reset_zeroed`'s dead
    /// memset; on a size change it zero-extends like `reset_zeroed`.
    pub fn reset_for_overwrite(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        if self.data.len() != len {
            self.data.clear();
            self.data.resize(len, 0.0);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Overwrites every element with `value` (shape unchanged).
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Becomes a copy of `other`, reusing the existing allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.data.clear();
        self.data.extend_from_slice(&other.data);
        self.rows = other.rows;
        self.cols = other.cols;
    }

    /// Becomes the `1 x n` row vector `values`, reusing the allocation.
    pub fn set_row_vector(&mut self, values: &[f32]) {
        self.data.clear();
        self.data.extend_from_slice(values);
        self.rows = 1;
        self.cols = values.len();
    }

    /// Clears to `0 x cols`, reserving room for `rows` rows of upcoming
    /// [`Matrix::push_row`] calls. Row-append assembly avoids the dead
    /// zero-fill of `reset_zeroed` when every row is about to be written
    /// (the replay minibatch gather).
    pub fn begin_rows(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.reserve(rows * cols);
        self.rows = 0;
        self.cols = cols;
    }

    /// Appends one row (started with [`Matrix::begin_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies the rows at `indices` into a new matrix (gather).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::default();
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Copies the rows at `indices` into `out` (gather), reusing `out`'s
    /// allocation — the batch-assembly primitive of the replay hot path.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &r in indices {
            out.data.extend_from_slice(self.row(r));
        }
        out.rows = indices.len();
        out.cols = self.cols;
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self * other` written into `out` (allocation-free
    /// once `out` has capacity).
    ///
    /// Blocked i-k-j kernel: `k` is tiled so the touched panel of `other`
    /// stays in L1 across output rows, and the inner `j` loop is the
    /// unrolled branch-free [`axpy`]. Zero `a` scalars skip their whole
    /// `axpy` — one predictable scalar branch per `k`, hoisted entirely
    /// outside the vector loop. The hotpath microbench keeps this: encoder
    /// states are one-hot-heavy (~half zeros) and ReLU activations zero
    /// another half, so the skip roughly halves the work on real inputs
    /// (skipping is bit-safe: adding `0·b` changes no finite accumulator;
    /// `0·±inf`/`0·NaN` terms are skipped rather than propagated, matching
    /// the historical kernel's own skip). Per output element the surviving
    /// `k` terms accumulate in ascending order, so on finite inputs the
    /// result is bit-identical to [`reference::matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.cols);
        out.reset_zeroed(m, n);
        // Batched inputs go through the register-tiled micro-kernel;
        // whatever it cannot tile (row tail, column tail, single-row
        // calls) falls through to the k-blocked axpy kernel. Both paths
        // accumulate every output element over ascending `k`, so the
        // split is invisible in the bits.
        let tiled_rows = if n >= J_TILE { m - m % ROW_TILE } else { 0 };
        let tiled_cols = if tiled_rows > 0 { n - n % J_TILE } else { 0 };
        let mut j = 0;
        while j < tiled_cols {
            let mut i = 0;
            while i < tiled_rows {
                self.matmul_tile::<ROW_TILE>(other, out, i, j);
                i += ROW_TILE;
            }
            j += J_TILE;
        }
        self.matmul_axpy_ranged(other, out, 0..tiled_rows, tiled_cols..n);
        self.matmul_axpy_ranged(other, out, tiled_rows..m, 0..n);
    }

    /// The shared accumulation core of one `R`-row × [`J_TILE`]-column
    /// micro-kernel tile: the `R * J_TILE` accumulators stay in registers
    /// across the whole ascending-`k` sweep and each streamed `b` element
    /// feeds all `R` rows. The loop is deliberately branch-free — no zero
    /// skip: lanes whose `a` is zero contribute `±0·b` terms, which are
    /// bit-level no-ops on the (never `-0.0`) accumulators for finite
    /// `b`, so results stay bit-identical to the per-row zero-skip of the
    /// axpy kernel while the dense inner loop vectorizes cleanly. Both
    /// the plain and the fused tile apply their own store epilogue to the
    /// returned accumulators, so the hot loop cannot diverge between
    /// them.
    #[inline]
    fn matmul_tile_acc<const R: usize>(
        &self,
        other: &Matrix,
        i: usize,
        j: usize,
    ) -> [[f32; J_TILE]; R] {
        let (k, n) = (self.cols, other.cols);
        let a_rows: [&[f32]; R] = std::array::from_fn(|r| &self.data[(i + r) * k..(i + r + 1) * k]);
        let mut acc = [[0.0f32; J_TILE]; R];
        // Indexing by `kk` keeps the R row reads and the `b` tile visibly in
        // lockstep on the same contraction index; an iterator chain over R
        // slices plus the strided `b` walk would obscure that.
        #[allow(clippy::needless_range_loop)]
        for kk in 0..k {
            let b_tile: &[f32; J_TILE] = other.data[kk * n + j..kk * n + j + J_TILE]
                .try_into()
                .expect("tile width is J_TILE");
            for r in 0..R {
                let ar = a_rows[r][kk];
                for t in 0..J_TILE {
                    acc[r][t] += ar * b_tile[t];
                }
            }
        }
        acc
    }

    /// One plain tile of the product: [`Matrix::matmul_tile_acc`] stored
    /// once.
    #[inline]
    fn matmul_tile<const R: usize>(&self, other: &Matrix, out: &mut Matrix, i: usize, j: usize) {
        let n = other.cols;
        let acc = self.matmul_tile_acc::<R>(other, i, j);
        for (r, acc_row) in acc.iter().enumerate() {
            let start = (i + r) * n + j;
            out.data[start..start + J_TILE].copy_from_slice(acc_row);
        }
    }

    /// Fused inference product: `out = f(self * other + bias)`, with
    /// `bias` a `1 x n` row broadcast over output rows and `f` an
    /// element-wise epilogue (the layer activation). Exactly the
    /// arithmetic of [`Matrix::matmul_into`] followed by
    /// [`Matrix::add_row_broadcast_assign`] and an element-wise map —
    /// identical operations per element in identical order, so results
    /// are bit-identical — but the epilogue runs while each micro-kernel
    /// tile is still in registers, sparing the batched forward two full
    /// read-modify-write passes over the output.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows` or `bias` is not `1 x n`.
    pub fn matmul_bias_map_into<F: Fn(f32) -> f32 + Copy>(
        &self,
        other: &Matrix,
        bias: &Matrix,
        f: F,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.cols);
        assert_eq!(
            bias.shape(),
            (1, n),
            "bias must be 1x{n}, got {}x{}",
            bias.rows,
            bias.cols
        );
        out.reset_zeroed(m, n);
        let tiled_rows = if n >= J_TILE { m - m % ROW_TILE } else { 0 };
        let tiled_cols = if tiled_rows > 0 { n - n % J_TILE } else { 0 };
        let bias_row = bias.row(0);
        let mut j = 0;
        while j < tiled_cols {
            let mut i = 0;
            while i < tiled_rows {
                self.matmul_tile_fused::<ROW_TILE, F>(other, bias_row, f, out, i, j);
                i += ROW_TILE;
            }
            j += J_TILE;
        }
        // Tails: plain ranged products, then the same bias + epilogue per
        // element (the order each element experiences is unchanged).
        self.matmul_axpy_ranged(other, out, 0..tiled_rows, tiled_cols..n);
        self.matmul_axpy_ranged(other, out, tiled_rows..m, 0..n);
        let mut finish = |rows: std::ops::Range<usize>, cols: std::ops::Range<usize>| {
            for i in rows {
                let row = &mut out.data[i * n + cols.start..i * n + cols.end];
                for (o, &b) in row.iter_mut().zip(bias_row[cols.clone()].iter()) {
                    *o = f(*o + b);
                }
            }
        };
        finish(0..tiled_rows, tiled_cols..n);
        finish(tiled_rows..m, 0..n);
    }

    /// One fused tile of the product: [`Matrix::matmul_tile_acc`] with
    /// the bias + epilogue applied as the tile leaves its registers.
    #[inline]
    fn matmul_tile_fused<const R: usize, F: Fn(f32) -> f32 + Copy>(
        &self,
        other: &Matrix,
        bias_row: &[f32],
        f: F,
        out: &mut Matrix,
        i: usize,
        j: usize,
    ) {
        let n = other.cols;
        let acc = self.matmul_tile_acc::<R>(other, i, j);
        let bias_tile: &[f32; J_TILE] = bias_row[j..j + J_TILE]
            .try_into()
            .expect("tile width is J_TILE");
        for (r, acc_row) in acc.iter().enumerate() {
            let start = (i + r) * n + j;
            for (o, (&v, &b)) in out.data[start..start + J_TILE]
                .iter_mut()
                .zip(acc_row.iter().zip(bias_tile.iter()))
            {
                *o = f(v + b);
            }
        }
    }

    /// The k-blocked axpy kernel over a row/column sub-range of the
    /// product (the pre-tiling `matmul_into` body, column-ranged so it
    /// can finish what the micro-kernel left). Zero `a` scalars skip
    /// their whole axpy; per output element the surviving `k` terms
    /// accumulate in ascending order.
    fn matmul_axpy_ranged(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) {
        if rows.is_empty() || cols.is_empty() {
            return;
        }
        let (k, n) = (self.cols, other.cols);
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + K_BLOCK).min(k);
            for i in rows.clone() {
                let a_block = &self.data[i * k + k0..i * k + k1];
                let out_row = &mut out.data[i * n + cols.start..i * n + cols.end];
                for (kk, &a) in (k0..k1).zip(a_block.iter()) {
                    if a != 0.0 {
                        axpy(
                            out_row,
                            &other.data[kk * n + cols.start..kk * n + cols.end],
                            a,
                        );
                    }
                }
            }
            k0 = k1;
        }
    }

    /// Matrix product `selfᵀ * other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn tmatmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.tmatmul_into(other, &mut out);
        out
    }

    /// `selfᵀ * other` written into `out`. The training-GEMM twin of
    /// [`Matrix::matmul_into`]: output tiles of [`ROW_TILE`] ×
    /// [`J_TILE`] accumulators live in registers across the whole
    /// contraction (over `self`'s *rows*, so both per-step operand slices
    /// are contiguous), and whatever the micro-kernel cannot tile — row
    /// tail, column tail, outputs narrower than a tile — falls through to
    /// the historical k-blocked zero-skip [`axpy`] kernel, column-ranged.
    /// Both paths accumulate every output element over ascending `r`, so
    /// on finite inputs the split is invisible in the bits and the result
    /// stays bit-identical to [`reference::tmatmul`] (the tile's dense
    /// `±0·b` terms are no-ops on the never-`-0.0` accumulators; see
    /// [`Matrix::matmul_tile_acc`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn tmatmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "tmatmul shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (c1, c2) = (self.cols, other.cols);
        out.reset_zeroed(c1, c2);
        let tiled_rows = if c2 >= J_TILE { c1 - c1 % ROW_TILE } else { 0 };
        let tiled_cols = if tiled_rows > 0 { c2 - c2 % J_TILE } else { 0 };
        let mut j = 0;
        while j < tiled_cols {
            let mut i = 0;
            while i < tiled_rows {
                self.tmatmul_tile::<ROW_TILE>(other, out, i, j);
                i += ROW_TILE;
            }
            j += J_TILE;
        }
        self.tmatmul_axpy_ranged(other, out, 0..tiled_rows, tiled_cols..c2);
        self.tmatmul_axpy_ranged(other, out, tiled_rows..c1, 0..c2);
    }

    /// One register tile of `selfᵀ * other`: `R` output rows (contraction
    /// column indices `i..i+R` of `self`) × [`J_TILE`] output columns.
    /// Each contraction step `r` reads `R` contiguous `a` scalars and one
    /// contiguous [`J_TILE`]-wide `b` tile, feeding all `R * J_TILE`
    /// register accumulators — dense, branch-free, ascending `r` per
    /// element (the bit-identity argument of [`Matrix::matmul_tile_acc`]).
    #[inline]
    fn tmatmul_tile<const R: usize>(&self, other: &Matrix, out: &mut Matrix, i: usize, j: usize) {
        let (r_total, c1, c2) = (self.rows, self.cols, other.cols);
        let mut acc = [[0.0f32; J_TILE]; R];
        for r in 0..r_total {
            let a_vals: &[f32; R] = self.data[r * c1 + i..r * c1 + i + R]
                .try_into()
                .expect("tile depth is R");
            let b_tile: &[f32; J_TILE] = other.data[r * c2 + j..r * c2 + j + J_TILE]
                .try_into()
                .expect("tile width is J_TILE");
            for (acc_row, &a) in acc.iter_mut().zip(a_vals.iter()) {
                for t in 0..J_TILE {
                    acc_row[t] += a * b_tile[t];
                }
            }
        }
        for (rr, acc_row) in acc.iter().enumerate() {
            let start = (i + rr) * c2 + j;
            out.data[start..start + J_TILE].copy_from_slice(acc_row);
        }
    }

    /// The pre-tiling `tmatmul_into` body over a row/column sub-range of
    /// the output: the contraction runs over `self`'s rows in `K_BLOCK`
    /// blocks (ascending within and across blocks) with the unrolled
    /// [`axpy`] inner loop, and zero `a` scalars skip their whole `axpy`
    /// — in the backward pass `self` is the layer input, whose ReLU zeros
    /// make the skip a measured win on the untiled shapes.
    fn tmatmul_axpy_ranged(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) {
        if rows.is_empty() || cols.is_empty() {
            return;
        }
        let (r_total, c1, c2) = (self.rows, self.cols, other.cols);
        let mut r0 = 0;
        while r0 < r_total {
            let r1 = (r0 + K_BLOCK).min(r_total);
            for r in r0..r1 {
                let a_row = &self.data[r * c1 + rows.start..r * c1 + rows.end];
                let b_row = &other.data[r * c2 + cols.start..r * c2 + cols.end];
                for (i, &a) in rows.clone().zip(a_row.iter()) {
                    if a != 0.0 {
                        let out_row = &mut out.data[i * c2 + cols.start..i * c2 + cols.end];
                        axpy(out_row, b_row, a);
                    }
                }
            }
            r0 = r1;
        }
    }

    /// Matrix product `self * otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_t_into(other, &mut out);
        out
    }

    /// `self * otherᵀ` written into `out`. Register-tiled like the other
    /// training GEMMs: [`ROW_TILE`] rows of `self` are dotted against
    /// [`J_TILE`] rows of `other` simultaneously, every `b` element
    /// gathered per contraction step feeding [`ROW_TILE`] accumulator
    /// lanes. Each output element keeps a single accumulator over
    /// ascending `k` — the tile is dense (no zero skip; `±0·b` adds are
    /// no-ops on the never-`-0.0` accumulators for finite `b`, see
    /// [`Matrix::matmul_tile_acc`]) — so on finite inputs every element
    /// is bit-identical to [`reference::matmul_t`]; `0·±inf`/`0·NaN`
    /// terms are skipped rather than propagated (a diverged network is
    /// caught by the `has_non_finite` tripwires, not by kernel NaN flow).
    /// Row/column tails fall back to the historical zero-skip dot kernel,
    /// ranged — in the backward pass `self` is dL/dz, which the
    /// selected-action loss and ReLU derivatives leave mostly zero, so
    /// the skip still pays on the untiled shapes.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.rows);
        out.reset_for_overwrite(m, n);
        let tiled_rows = if n >= J_TILE { m - m % ROW_TILE } else { 0 };
        let tiled_cols = if tiled_rows > 0 { n - n % J_TILE } else { 0 };
        let mut j = 0;
        while j < tiled_cols {
            let mut i = 0;
            while i < tiled_rows {
                self.matmul_t_tile::<ROW_TILE>(other, out, i, j);
                i += ROW_TILE;
            }
            j += J_TILE;
        }
        self.matmul_t_dot_ranged(other, out, 0..tiled_rows, tiled_cols..n);
        self.matmul_t_dot_ranged(other, out, tiled_rows..m, 0..n);
    }

    /// One register tile of `self * otherᵀ`: `R` rows of `self` against
    /// [`J_TILE`] rows of `other`, all `R * J_TILE` dot accumulators held
    /// across the ascending-`k` sweep. The per-step gather of the
    /// [`J_TILE`] `b` scalars (one per `other` row) is the transpose-free
    /// price; each gathered value then feeds `R` multiply-add lanes.
    #[inline]
    fn matmul_t_tile<const R: usize>(&self, other: &Matrix, out: &mut Matrix, i: usize, j: usize) {
        let (k, n) = (self.cols, other.rows);
        let a_rows: [&[f32]; R] = std::array::from_fn(|r| &self.data[(i + r) * k..(i + r + 1) * k]);
        let b_rows: [&[f32]; J_TILE] =
            std::array::from_fn(|t| &other.data[(j + t) * k..(j + t + 1) * k]);
        let mut acc = [[0.0f32; J_TILE]; R];
        for kk in 0..k {
            let b_vals: [f32; J_TILE] = std::array::from_fn(|t| b_rows[t][kk]);
            for (acc_row, a_row) in acc.iter_mut().zip(a_rows.iter()) {
                let a = a_row[kk];
                for t in 0..J_TILE {
                    acc_row[t] += a * b_vals[t];
                }
            }
        }
        for (rr, acc_row) in acc.iter().enumerate() {
            let start = (i + rr) * n + j;
            out.data[start..start + J_TILE].copy_from_slice(acc_row);
        }
    }

    /// The pre-tiling `matmul_t_into` body over a row/column sub-range of
    /// the output: four independent zero-skip dot chains per column
    /// block, then a scalar-column tail, each accumulator ascending `k`.
    fn matmul_t_dot_ranged(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) {
        if rows.is_empty() || cols.is_empty() {
            return;
        }
        let (k, n) = (self.cols, other.rows);
        for i in rows {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut j = cols.start;
            while j + 4 <= cols.end {
                let b0 = &other.data[j * k..(j + 1) * k];
                let b1 = &other.data[(j + 1) * k..(j + 2) * k];
                let b2 = &other.data[(j + 2) * k..(j + 3) * k];
                let b3 = &other.data[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (kk, &a) in a_row.iter().enumerate() {
                    if a != 0.0 {
                        s0 += a * b0[kk];
                        s1 += a * b1[kk];
                        s2 += a * b2[kk];
                        s3 += a * b3[kk];
                    }
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            while j < cols.end {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    if a != 0.0 {
                        acc += a * b;
                    }
                }
                out_row[j] = acc;
                j += 1;
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::default();
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-owned buffer (allocation-free once warm).
    /// Materializing a weight transpose turns the backward pass's
    /// `grad · Wᵀ` into a vectorizable row-streaming matmul — a few
    /// microseconds of copying that unlocks the fast kernel.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset_for_overwrite(self.cols, self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place element-wise `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Copy scaled by a scalar.
    pub fn scale(&self, factor: f32) -> Matrix {
        self.map(|v| v * factor)
    }

    /// In-place scale by a scalar.
    pub fn scale_assign(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_assign(bias);
        out
    }

    /// In-place bias broadcast: adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols`.
    pub fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "broadcast bias must be a row vector");
        assert_eq!(
            bias.cols, self.cols,
            "broadcast bias has {} cols, expected {}",
            bias.cols, self.cols
        );
        if self.cols == 0 {
            return;
        }
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in row.iter_mut().zip(bias.data.iter()) {
                *v += b;
            }
        }
    }

    /// Sums every row into a `1 x cols` vector.
    pub fn col_sum(&self) -> Matrix {
        let mut out = Matrix::default();
        self.col_sum_into(&mut out);
        out
    }

    /// Sums every row into `out` as a `1 x cols` vector, reusing `out`'s
    /// allocation. Rows accumulate in ascending order (bit-identical to
    /// [`Matrix::col_sum`]).
    pub fn col_sum_into(&self, out: &mut Matrix) {
        out.reset_zeroed(1, self.cols);
        if self.cols == 0 {
            return;
        }
        for row in self.data.chunks_exact(self.cols) {
            for (o, &v) in out.data.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Applies `f` element-wise into a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_assign<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Index and value of the maximum element of row `r`.
    ///
    /// Ties resolve to the lowest index; NaN entries are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or the matrix has no columns.
    pub fn row_argmax(&self, r: usize) -> (usize, f32) {
        let row = self.row(r);
        assert!(!row.is_empty(), "row_argmax on matrix with zero columns");
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, &v) in row.iter().enumerate() {
            if v > best.1 {
                best = (i, v);
            }
        }
        best
    }

    /// Maximum value of row `r` (skipping NaN).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or the matrix has no columns.
    pub fn row_max(&self, r: usize) -> f32 {
        self.row_argmax(r).1
    }

    /// Argmax of every row into a caller-owned buffer (cleared first):
    /// `out[r]` is the column index of row `r`'s maximum, ties resolving
    /// to the lowest index (the [`Matrix::row_argmax`] rule). The batched
    /// decision-selection form of the per-row call.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no columns.
    pub fn argmax_rows_into(&self, out: &mut Vec<usize>) {
        assert!(
            self.cols > 0,
            "argmax_rows_into on matrix with zero columns"
        );
        out.clear();
        out.reserve(self.rows);
        for r in 0..self.rows {
            out.push(self.row_argmax(r).0);
        }
    }

    /// Argmax of every row under a row-major validity mask, into a
    /// caller-owned buffer (cleared first). `masks` holds `rows * cols`
    /// entries (`masks[r * cols + c]` gates element `(r, c)`); `out[r]` is
    /// `None` when row `r` is fully masked.
    ///
    /// Selection rule: masked entries are skipped; walking the row left to
    /// right, a value becomes the new best only when *strictly greater*
    /// than the current best, so ties resolve to the lowest valid index.
    /// This is exactly the rule single-state masked action selection uses,
    /// which is what makes batched and per-row selection bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `masks.len() != rows * cols`.
    pub fn masked_argmax_rows_into(&self, masks: &[bool], out: &mut Vec<Option<usize>>) {
        assert_eq!(
            masks.len(),
            self.rows * self.cols,
            "masks length {} != rows*cols {}",
            masks.len(),
            self.rows * self.cols
        );
        out.clear();
        out.reserve(self.rows);
        for (row, mask) in self
            .data
            .chunks_exact(self.cols.max(1))
            .zip(masks.chunks_exact(self.cols.max(1)))
        {
            out.push(masked_row_best(row, mask).map(|(i, _)| i));
        }
        // chunks_exact yields nothing for a zero-column matrix; rows of
        // width zero are all "fully masked".
        if self.cols == 0 {
            out.resize(self.rows, None);
        }
    }

    /// Maximum of every row under a row-major validity mask, into a
    /// caller-owned buffer (cleared first); `None` marks a fully-masked
    /// row. Same selection rule as [`Matrix::masked_argmax_rows_into`].
    ///
    /// # Panics
    ///
    /// Panics if `masks.len() != rows * cols`.
    pub fn masked_max_rows_into(&self, masks: &[bool], out: &mut Vec<Option<f32>>) {
        assert_eq!(
            masks.len(),
            self.rows * self.cols,
            "masks length {} != rows*cols {}",
            masks.len(),
            self.rows * self.cols
        );
        out.clear();
        out.reserve(self.rows);
        for (row, mask) in self
            .data
            .chunks_exact(self.cols.max(1))
            .zip(masks.chunks_exact(self.cols.max(1)))
        {
            out.push(masked_row_best(row, mask).map(|(_, v)| v));
        }
        if self.cols == 0 {
            out.resize(self.rows, None);
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Matrix, f: F) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch: {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

/// Best `(index, value)` of one masked row: masked entries are skipped and
/// a value only displaces the incumbent when strictly greater, so ties
/// resolve to the lowest valid index. Shared by the batched row reductions
/// so the argmax and max variants cannot drift apart.
fn masked_row_best(row: &[f32], mask: &[bool]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    for (i, (&v, &ok)) in row.iter().zip(mask.iter()).enumerate() {
        if !ok {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// The pre-optimization kernels, preserved verbatim as the bit-exactness
/// oracle for the blocked kernels above.
///
/// Golden-equality tests and the `hotpath` benchmark's baseline both build
/// on these: the tests assert the optimized kernels reproduce them bit for
/// bit, and the benchmark measures how much faster the optimized path is
/// against the same arithmetic performed the old allocate-per-call way
/// (naive i-k-j loops with the dense-hostile `a == 0.0` skip branch).
pub mod reference {
    use super::Matrix;

    /// Naive `a * b` with the historical zero-skip branch.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for (k, &av) in a.row(i).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k).to_vec();
                for (o, &bv) in out.row_mut(i).iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Naive `aᵀ * b` with the historical zero-skip branch.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != b.rows()`.
    pub fn tmatmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "tmatmul shape mismatch");
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for r in 0..a.rows() {
            let a_row = a.row(r).to_vec();
            let b_row = b.row(r).to_vec();
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in out.row_mut(i).iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Naive `a * bᵀ` as a row-by-row dot product.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.cols()`.
    pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_t shape mismatch");
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0f32;
                for (&av, &bv) in a.row(i).iter().zip(b.row(j).iter()) {
                    acc += av * bv;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Allocating bias broadcast, as the pre-optimization forward pass
    /// performed it.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x a.cols()`.
    pub fn add_row_broadcast(a: &Matrix, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows(), 1, "broadcast bias must be a row vector");
        assert_eq!(bias.cols(), a.cols(), "broadcast bias width mismatch");
        let mut out = a.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c) + bias.get(0, c);
                out.set(r, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::full(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn tmatmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 1.5, 0.0], &[-1.0, 1.0, 2.0]]);
        assert_eq!(a.tmatmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.5, 2.0, -1.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!(
            a.add(&b),
            Matrix::from_rows(&[&[11.0, 22.0], &[33.0, 44.0]])
        );
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[9.0, 18.0], &[27.0, 36.0]]));
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[&[10.0, 40.0], &[90.0, 160.0]])
        );
    }

    #[test]
    fn broadcast_and_col_sum() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 100.0]);
        assert_eq!(
            a.add_row_broadcast(&bias),
            Matrix::from_rows(&[&[11.0, 102.0], &[13.0, 104.0]])
        );
        assert_eq!(a.col_sum(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let a = Matrix::from_rows(&[&[1.0, 5.0, 5.0, 0.0]]);
        assert_eq!(a.row_argmax(0), (1, 5.0));
    }

    #[test]
    fn argmax_rows_matches_per_row_argmax() {
        let a = Matrix::from_rows(&[&[1.0, 5.0, 5.0], &[9.0, 2.0, 3.0], &[0.0, 0.0, 7.0]]);
        let mut out = Vec::new();
        a.argmax_rows_into(&mut out);
        assert_eq!(out, vec![1, 0, 2]);
        // Buffer is cleared on reuse.
        a.argmax_rows_into(&mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn masked_argmax_rows_skips_invalid_and_ties_low() {
        let a = Matrix::from_rows(&[&[1.0, 9.0, 7.0], &[4.0, 4.0, 4.0], &[5.0, 6.0, 7.0]]);
        let masks = [
            true, false, true, // best valid: 7.0 at 2
            true, true, true, // tie -> lowest index
            false, false, false, // fully masked
        ];
        let mut out = Vec::new();
        a.masked_argmax_rows_into(&masks, &mut out);
        assert_eq!(out, vec![Some(2), Some(0), None]);
        let mut maxes = Vec::new();
        a.masked_max_rows_into(&masks, &mut maxes);
        assert_eq!(maxes, vec![Some(7.0), Some(4.0), None]);
    }

    #[test]
    #[should_panic(expected = "masks length")]
    fn masked_argmax_rows_rejects_bad_mask_length() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let mut out = Vec::new();
        a.masked_argmax_rows_into(&[true], &mut out);
    }

    #[test]
    fn gather_rows_copies_selected() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g, Matrix::from_rows(&[&[2.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    fn norm_and_finiteness() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!(!a.has_non_finite());
        let bad = Matrix::from_rows(&[&[f32::NAN]]);
        assert!(bad.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn scale_and_add_scaled_assign() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
        let mut b = Matrix::from_rows(&[&[1.0, 1.0]]);
        b.add_scaled_assign(&a, 0.5);
        assert_eq!(b, Matrix::from_rows(&[&[1.5, 0.0]]));
    }
}
