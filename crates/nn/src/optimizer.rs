//! First-order gradient optimizers (SGD+momentum, RMSProp, Adam).
//!
//! Optimizers keep per-parameter state keyed by a stable slot index supplied
//! by the network (two slots per dense layer: weights then bias). This keeps
//! the optimizer decoupled from network structure while remaining
//! serialization-friendly.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Optimizer configuration (the algorithm and its hyperparameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerConfig {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient in `[0, 1)`; `0.0` is plain SGD.
        momentum: f32,
    },
    /// RMSProp as used by the original DQN paper.
    RmsProp {
        /// Learning rate.
        lr: f32,
        /// Decay rate of the squared-gradient moving average.
        rho: f32,
        /// Numerical-stability constant.
        eps: f32,
    },
    /// Adam (Kingma & Ba).
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical-stability constant.
        eps: f32,
    },
}

impl OptimizerConfig {
    /// Adam with standard defaults and the given learning rate.
    pub fn adam(lr: f32) -> Self {
        OptimizerConfig::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// RMSProp with DQN-paper defaults and the given learning rate.
    pub fn rmsprop(lr: f32) -> Self {
        OptimizerConfig::RmsProp {
            lr,
            rho: 0.95,
            eps: 1e-6,
        }
    }

    /// Plain SGD with the given learning rate.
    pub fn sgd(lr: f32) -> Self {
        OptimizerConfig::Sgd { lr, momentum: 0.0 }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        match *self {
            OptimizerConfig::Sgd { lr, .. }
            | OptimizerConfig::RmsProp { lr, .. }
            | OptimizerConfig::Adam { lr, .. } => lr,
        }
    }

    /// Builds the stateful optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive or decay factors are out
    /// of range.
    pub fn build(self) -> Optimizer {
        match self {
            OptimizerConfig::Sgd { lr, momentum } => {
                assert!(lr > 0.0, "learning rate must be positive");
                assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
            }
            OptimizerConfig::RmsProp { lr, rho, eps } => {
                assert!(lr > 0.0, "learning rate must be positive");
                assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
                assert!(eps > 0.0, "eps must be positive");
            }
            OptimizerConfig::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                assert!(lr > 0.0, "learning rate must be positive");
                assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0,1)");
                assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0,1)");
                assert!(eps > 0.0, "eps must be positive");
            }
        }
        Optimizer {
            config: self,
            slots: Vec::new(),
            step: 0,
        }
    }
}

/// Stateful optimizer; one instance per trained network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Optimizer {
    config: OptimizerConfig,
    slots: Vec<SlotState>,
    step: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SlotState {
    /// First moment / momentum buffer.
    m: Matrix,
    /// Second moment buffer (unused by SGD).
    v: Matrix,
}

impl Optimizer {
    /// The optimizer's configuration.
    pub fn config(&self) -> OptimizerConfig {
        self.config
    }

    /// Number of update steps applied so far (per [`Optimizer::begin_step`]).
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Marks the start of an update step; call once per batch before
    /// updating the slots of that batch. Required for Adam bias correction.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Computes and applies the update for parameter `slot` in place.
    ///
    /// # Panics
    ///
    /// Panics if `param` and `grad` shapes differ, or if a slot is reused
    /// with a different shape.
    pub fn update(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(
            param.shape(),
            grad.shape(),
            "optimizer update shape mismatch"
        );
        while self.slots.len() <= slot {
            self.slots.push(SlotState {
                m: Matrix::zeros(param.rows(), param.cols()),
                v: Matrix::zeros(param.rows(), param.cols()),
            });
        }
        let state = &mut self.slots[slot];
        assert_eq!(
            state.m.shape(),
            param.shape(),
            "optimizer slot {slot} shape changed"
        );
        match self.config {
            OptimizerConfig::Sgd { lr, momentum } => {
                if momentum == 0.0 {
                    param.add_scaled_assign(grad, -lr);
                } else {
                    // m ← momentum*m + grad ; p ← p - lr*m
                    // (momentum flushed like the Adam/RMSProp moments —
                    // see `flush_subnormal`.)
                    state.m.scale_assign(momentum);
                    state.m.add_scaled_assign(grad, 1.0);
                    for m in state.m.as_mut_slice() {
                        *m = flush_subnormal(*m);
                    }
                    param.add_scaled_assign(&state.m, -lr);
                }
            }
            OptimizerConfig::RmsProp { lr, rho, eps } => {
                // Lockstep iterators instead of indexing: the bounds checks
                // on four distinct slices defeated auto-vectorization of
                // the sqrt/div pipeline. The iterator form itself changes
                // no arithmetic; the only deliberate numeric change in this
                // optimizer is the sub-normal moment flush (see
                // `flush_subnormal`).
                let (mp, gp, vp) = (
                    param.as_mut_slice(),
                    grad.as_slice(),
                    state.v.as_mut_slice(),
                );
                for ((p, &g), v) in mp.iter_mut().zip(gp.iter()).zip(vp.iter_mut()) {
                    *v = flush_subnormal(rho * *v + (1.0 - rho) * g * g);
                    *p -= lr * g / (v.sqrt() + eps);
                }
            }
            OptimizerConfig::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let t = self.step.max(1) as f32;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                let (mp, gp) = (param.as_mut_slice(), grad.as_slice());
                let (mm, vv) = (state.m.as_mut_slice(), state.v.as_mut_slice());
                // Lockstep iterators (see RmsProp above): no arithmetic
                // change beyond the documented sub-normal flush, and the
                // per-element sqrt/div now vectorizes.
                for (((p, &g), m), v) in mp
                    .iter_mut()
                    .zip(gp.iter())
                    .zip(mm.iter_mut())
                    .zip(vv.iter_mut())
                {
                    *m = flush_subnormal(beta1 * *m + (1.0 - beta1) * g);
                    *v = flush_subnormal(beta2 * *v + (1.0 - beta2) * g * g);
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *p -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }
}

/// Flushes sub-normal moment values to zero (NaN/inf pass through).
///
/// Zero-gradient parameters — ReLU-dead units, unselected action columns —
/// decay their moments geometrically (`m ← β·m`), and once `m` drops below
/// `f32::MIN_POSITIVE` every subsequent multiply hits the CPU's sub-normal
/// microcode path, slowing the whole update by an order of magnitude
/// (measured 20-30x on long training runs). Flushing is deterministic and
/// value-safe: a sub-normal moment contributes at most
/// `lr · 1.2e-38 / eps ≈ 1e-33` to a parameter update, far below half an
/// ulp of any parameter a training run produces.
#[inline]
fn flush_subnormal(x: f32) -> f32 {
    if x.abs() < f32::MIN_POSITIVE {
        0.0
    } else {
        x
    }
}

/// Scales a set of gradients in place so their global L2 norm does not
/// exceed `max_norm`. Returns the pre-clip norm.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_global_norm(grads: &mut [&mut Matrix], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total: f32 = grads
        .iter()
        .map(|g| {
            let n = g.frobenius_norm();
            n * n
        })
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            g.scale_assign(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descend(config: OptimizerConfig, iterations: usize) -> f32 {
        // Minimize f(x) = x^2 starting from x=5; gradient 2x.
        let mut opt = config.build();
        let mut x = Matrix::row_vector(&[5.0]);
        for _ in 0..iterations {
            let grad = x.scale(2.0);
            opt.begin_step();
            opt.update(0, &mut x, &grad);
        }
        x.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = quadratic_descend(OptimizerConfig::sgd(0.1), 100);
        assert!(x.abs() < 1e-3, "sgd final x = {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let x = quadratic_descend(
            OptimizerConfig::Sgd {
                lr: 0.05,
                momentum: 0.9,
            },
            200,
        );
        assert!(x.abs() < 1e-2, "momentum final x = {x}");
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let x = quadratic_descend(OptimizerConfig::rmsprop(0.05), 500);
        assert!(x.abs() < 0.05, "rmsprop final x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = quadratic_descend(OptimizerConfig::adam(0.2), 300);
        assert!(x.abs() < 1e-2, "adam final x = {x}");
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, Adam's first step is ≈ lr regardless of
        // gradient scale.
        let mut opt = OptimizerConfig::adam(0.1).build();
        let mut x = Matrix::row_vector(&[1.0]);
        let grad = Matrix::row_vector(&[1234.0]);
        opt.begin_step();
        opt.update(0, &mut x, &grad);
        assert!((x.get(0, 0) - (1.0 - 0.1)).abs() < 1e-3);
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = OptimizerConfig::Sgd {
            lr: 0.1,
            momentum: 0.9,
        }
        .build();
        let mut a = Matrix::row_vector(&[1.0]);
        let mut b = Matrix::row_vector(&[1.0]);
        let ga = Matrix::row_vector(&[1.0]);
        let gb = Matrix::row_vector(&[0.0]);
        opt.begin_step();
        opt.update(0, &mut a, &ga);
        opt.update(1, &mut b, &gb);
        assert!(a.get(0, 0) < 1.0);
        assert_eq!(b.get(0, 0), 1.0); // zero grad, zero momentum -> unchanged
    }

    #[test]
    fn clip_reduces_large_gradients() {
        let mut g1 = Matrix::row_vector(&[3.0, 0.0]);
        let mut g2 = Matrix::row_vector(&[0.0, 4.0]);
        let pre = clip_global_norm(&mut [&mut g1, &mut g2], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = (g1.frobenius_norm().powi(2) + g2.frobenius_norm().powi(2)).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut g = Matrix::row_vector(&[0.1, 0.1]);
        let before = g.clone();
        clip_global_norm(&mut [&mut g], 10.0);
        assert_eq!(g, before);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_rejected() {
        let _ = OptimizerConfig::sgd(0.0).build();
    }
}
