//! Loss functions returning `(scalar_loss, gradient_wrt_prediction)`.
//!
//! DQN training regresses only the Q-value of the *taken* action, so besides
//! the full-matrix losses there are masked variants that compute loss and
//! gradient on one selected column per row, leaving every other entry with
//! zero gradient.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Loss function selector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error, `mean((pred - target)^2) / 2`.
    Mse,
    /// Huber loss with the given `delta`; quadratic near zero, linear in the
    /// tails. The standard DQN choice (`delta = 1.0`) — bounds gradient
    /// magnitude against outlier TD errors.
    Huber(f32),
}

impl Default for Loss {
    fn default() -> Self {
        Loss::Huber(1.0)
    }
}

impl Loss {
    /// Loss and gradient over the full prediction matrix.
    ///
    /// The gradient is normalized by the number of rows (batch size) so that
    /// learning rates are batch-size independent.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an empty batch.
    pub fn evaluate(self, prediction: &Matrix, target: &Matrix) -> (f32, Matrix) {
        assert_eq!(prediction.shape(), target.shape(), "loss shape mismatch");
        assert!(prediction.rows() > 0, "loss on empty batch");
        let n = prediction.rows() as f32;
        let mut total = 0.0f64;
        let mut grad = Matrix::zeros(prediction.rows(), prediction.cols());
        for r in 0..prediction.rows() {
            for c in 0..prediction.cols() {
                let e = prediction.get(r, c) - target.get(r, c);
                let (l, g) = self.pointwise(e);
                total += l as f64;
                grad.set(r, c, g / n);
            }
        }
        ((total / n as f64) as f32, grad)
    }

    /// Loss and gradient on one selected column per row.
    ///
    /// `selected[r]` is the column of row `r` that participates; all other
    /// entries of the gradient are zero. `targets[r]` is the regression
    /// target for that entry. This is exactly the DQN update, where the
    /// selected column is the action taken in the transition.
    ///
    /// Optional `weights` (importance-sampling weights from prioritized
    /// replay) scale each row's loss and gradient.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the batch size, a column index is out
    /// of range, or the batch is empty.
    pub fn evaluate_selected(
        self,
        prediction: &Matrix,
        selected: &[usize],
        targets: &[f32],
        weights: Option<&[f32]>,
    ) -> (f32, Matrix) {
        let mut grad = Matrix::default();
        let l = self.evaluate_selected_into(prediction, selected, targets, weights, &mut grad);
        (l, grad)
    }

    /// [`Loss::evaluate_selected`] writing the gradient into a caller-owned
    /// buffer (allocation-free once the buffer is warm). Returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the batch size, a column index is out
    /// of range, or the batch is empty.
    pub fn evaluate_selected_into(
        self,
        prediction: &Matrix,
        selected: &[usize],
        targets: &[f32],
        weights: Option<&[f32]>,
        grad: &mut Matrix,
    ) -> f32 {
        let n = prediction.rows();
        assert!(n > 0, "loss on empty batch");
        assert_eq!(selected.len(), n, "selected length must equal batch size");
        assert_eq!(targets.len(), n, "targets length must equal batch size");
        if let Some(w) = weights {
            assert_eq!(w.len(), n, "weights length must equal batch size");
        }
        let mut total = 0.0f64;
        grad.reset_zeroed(n, prediction.cols());
        for r in 0..n {
            let c = selected[r];
            assert!(
                c < prediction.cols(),
                "selected column {c} out of range in row {r}"
            );
            let w = weights.map_or(1.0, |w| w[r]);
            let e = prediction.get(r, c) - targets[r];
            let (l, g) = self.pointwise(e);
            total += (w * l) as f64;
            grad.set(r, c, w * g / n as f32);
        }
        (total / n as f64) as f32
    }

    /// Per-element loss value and dL/de for error `e = pred - target`.
    #[inline]
    pub fn pointwise(self, e: f32) -> (f32, f32) {
        match self {
            Loss::Mse => (0.5 * e * e, e),
            Loss::Huber(delta) => {
                debug_assert!(delta > 0.0, "huber delta must be positive");
                if e.abs() <= delta {
                    (0.5 * e * e, e)
                } else {
                    (delta * (e.abs() - 0.5 * delta), delta * e.signum())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]);
        let (loss, grad) = Loss::Mse.evaluate(&p, &p);
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(&[&[3.0]]);
        let t = Matrix::from_rows(&[&[1.0]]);
        let (loss, grad) = Loss::Mse.evaluate(&p, &t);
        assert!((loss - 2.0).abs() < 1e-6); // 0.5 * (3-1)^2
        assert!((grad.get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn huber_matches_mse_inside_delta() {
        let (l_h, g_h) = Loss::Huber(1.0).pointwise(0.5);
        let (l_m, g_m) = Loss::Mse.pointwise(0.5);
        assert_eq!(l_h, l_m);
        assert_eq!(g_h, g_m);
    }

    #[test]
    fn huber_gradient_is_clipped_outside_delta() {
        let (_, g) = Loss::Huber(1.0).pointwise(10.0);
        assert_eq!(g, 1.0);
        let (_, g) = Loss::Huber(1.0).pointwise(-10.0);
        assert_eq!(g, -1.0);
    }

    #[test]
    fn huber_is_continuous_at_delta() {
        let delta = 1.0;
        let (inside, _) = Loss::Huber(delta).pointwise(delta - 1e-4);
        let (outside, _) = Loss::Huber(delta).pointwise(delta + 1e-4);
        assert!((inside - outside).abs() < 1e-3);
    }

    #[test]
    fn selected_loss_only_grads_chosen_column() {
        let p = Matrix::from_rows(&[&[1.0, 5.0, 3.0], &[2.0, 0.0, -1.0]]);
        let (_, grad) = Loss::Mse.evaluate_selected(&p, &[1, 2], &[4.0, 0.0], None);
        // Row 0: only column 1 non-zero; row 1: only column 2 non-zero.
        assert_eq!(grad.get(0, 0), 0.0);
        assert!(grad.get(0, 1) != 0.0);
        assert_eq!(grad.get(0, 2), 0.0);
        assert_eq!(grad.get(1, 0), 0.0);
        assert_eq!(grad.get(1, 1), 0.0);
        assert!(grad.get(1, 2) != 0.0);
    }

    #[test]
    fn selected_loss_batch_normalization() {
        // Two identical rows should give same loss as one row.
        let p1 = Matrix::from_rows(&[&[2.0, 0.0]]);
        let p2 = Matrix::from_rows(&[&[2.0, 0.0], &[2.0, 0.0]]);
        let (l1, _) = Loss::Mse.evaluate_selected(&p1, &[0], &[0.0], None);
        let (l2, _) = Loss::Mse.evaluate_selected(&p2, &[0, 0], &[0.0, 0.0], None);
        assert!((l1 - l2).abs() < 1e-6);
    }

    #[test]
    fn importance_weights_scale_gradient() {
        let p = Matrix::from_rows(&[&[2.0]]);
        let (_, g_unweighted) = Loss::Mse.evaluate_selected(&p, &[0], &[0.0], None);
        let (_, g_weighted) = Loss::Mse.evaluate_selected(&p, &[0], &[0.0], Some(&[0.5]));
        assert!((g_weighted.get(0, 0) - 0.5 * g_unweighted.get(0, 0)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = Loss::Mse.evaluate(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn selected_column_out_of_range_panics() {
        let p = Matrix::zeros(1, 2);
        let _ = Loss::Mse.evaluate_selected(&p, &[5], &[0.0], None);
    }
}
