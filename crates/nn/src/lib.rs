//! # nn — minimal neural-network substrate for deep RL
//!
//! A from-scratch, dependency-light neural network library sized exactly for
//! the needs of the DRL-based VNF manager in this workspace: batched dense
//! networks (MLPs) with explicit backprop, the DQN-style *selected-output*
//! loss, SGD/RMSProp/Adam optimizers, gradient clipping, and numerical
//! gradient checking.
//!
//! Design points:
//!
//! * **Single tensor shape.** Everything is a row-major 2-D [`tensor::Matrix`];
//!   batches are rows. No autograd graph — gradients are computed by the
//!   layers themselves, which keeps the hot path allocation-predictable.
//! * **Determinism.** All randomness flows through caller-provided
//!   [`rand::Rng`] values; the same seed reproduces the same network and the
//!   same training trajectory bit-for-bit.
//! * **Verified backprop.** [`gradcheck`] compares every layer/loss
//!   combination against central finite differences; the test suite gates on
//!   it.
//!
//! # Examples
//!
//! ```
//! use nn::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let config = MlpConfig::new(2, &[16], 1).hidden_activation(Activation::Tanh);
//! let mut model = TrainableMlp::new(&config, OptimizerConfig::adam(0.01), Loss::Mse, None, &mut rng);
//!
//! // Fit y = x0 + x1 on a tiny batch.
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
//! let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[2.0]]);
//! let mut loss = f32::MAX;
//! for _ in 0..500 {
//!     loss = model.step(&x, &y);
//! }
//! assert!(loss < 0.01);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod activation;
pub mod gradcheck;
pub mod init;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optimizer;
pub mod tensor;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::init::Init;
    pub use crate::linear::Dense;
    pub use crate::loss::Loss;
    pub use crate::mlp::{Mlp, MlpConfig, TrainableMlp, Workspace};
    pub use crate::optimizer::{Optimizer, OptimizerConfig};
    pub use crate::tensor::Matrix;
}
