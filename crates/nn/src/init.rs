//! Weight initialization schemes.
//!
//! Deterministic given a seeded RNG — every experiment in this workspace is
//! reproducible from a `u64` seed.

use crate::tensor::Matrix;
use rand::Rng;

/// Weight initialization scheme for a dense layer with `fan_in` inputs and
/// `fan_out` outputs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize, Default)]
pub enum Init {
    /// All weights equal to the given constant (mostly for tests).
    Constant(f32),
    /// Uniform in `[-limit, limit]`.
    Uniform(f32),
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// The default for tanh/sigmoid networks.
    XavierUniform,
    /// He/Kaiming uniform: `limit = sqrt(6 / fan_in)`.
    ///
    /// The default for ReLU networks (used by the DQN in `mano`).
    #[default]
    HeUniform,
}

impl Init {
    /// Samples a `fan_in x fan_out` weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0` or `fan_out == 0`.
    pub fn weights<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
        assert!(
            fan_in > 0 && fan_out > 0,
            "layer dimensions must be positive"
        );
        match self {
            Init::Constant(v) => Matrix::full(fan_in, fan_out, v),
            Init::Uniform(limit) => sample_uniform(fan_in, fan_out, limit, rng),
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
                sample_uniform(fan_in, fan_out, limit, rng)
            }
            Init::HeUniform => {
                let limit = (6.0 / fan_in as f32).sqrt();
                sample_uniform(fan_in, fan_out, limit, rng)
            }
        }
    }

    /// Bias vector for a layer with `fan_out` outputs (always zeros except
    /// for [`Init::Constant`]).
    pub fn bias(self, fan_out: usize) -> Matrix {
        match self {
            Init::Constant(v) => Matrix::full(1, fan_out, v),
            _ => Matrix::zeros(1, fan_out),
        }
    }

    /// The sampling limit this scheme uses for the given fan-in/out, if the
    /// scheme is a bounded-uniform one.
    pub fn limit(self, fan_in: usize, fan_out: usize) -> Option<f32> {
        match self {
            Init::Constant(_) => None,
            Init::Uniform(l) => Some(l),
            Init::XavierUniform => Some((6.0 / (fan_in + fan_out) as f32).sqrt()),
            Init::HeUniform => Some((6.0 / fan_in as f32).sqrt()),
        }
    }
}

fn sample_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, limit: f32, rng: &mut R) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_init() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = Init::Constant(0.5).weights(3, 4, &mut rng);
        assert!(w.as_slice().iter().all(|&v| v == 0.5));
        let b = Init::Constant(0.5).bias(4);
        assert!(b.as_slice().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn he_uniform_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let limit = Init::HeUniform.limit(64, 32).unwrap();
        let w = Init::HeUniform.weights(64, 32, &mut rng);
        assert!(w.as_slice().iter().all(|&v| v.abs() <= limit));
        // Should not collapse to a constant.
        let first = w.as_slice()[0];
        assert!(w.as_slice().iter().any(|&v| v != first));
    }

    #[test]
    fn xavier_limit_formula() {
        let l = Init::XavierUniform.limit(10, 20).unwrap();
        assert!((l - (6.0f32 / 30.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn bias_defaults_to_zero() {
        assert!(Init::HeUniform.bias(8).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            Init::XavierUniform.weights(5, 5, &mut a),
            Init::XavierUniform.weights(5, 5, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_fan_in_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Init::HeUniform.weights(0, 4, &mut rng);
    }
}
