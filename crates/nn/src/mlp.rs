//! Multi-layer perceptron: the function approximator used by every deep-RL
//! agent in this workspace.

use crate::activation::Activation;
use crate::init::Init;
use crate::linear::Dense;
use crate::loss::Loss;
use crate::optimizer::{clip_global_norm, Optimizer, OptimizerConfig};
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Declarative MLP architecture.
///
/// # Examples
///
/// ```
/// use nn::mlp::{Mlp, MlpConfig};
/// use nn::activation::Activation;
/// use rand::SeedableRng;
///
/// let config = MlpConfig::new(4, &[16, 16], 2)
///     .hidden_activation(Activation::Relu);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Mlp::new(&config, &mut rng);
/// assert_eq!(net.output_dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer widths, in order.
    pub hidden: Vec<usize>,
    /// Output dimension.
    pub output_dim: usize,
    /// Activation for hidden layers.
    pub hidden_activation: Activation,
    /// Activation for the output layer (identity for Q-values).
    pub output_activation: Activation,
    /// Weight initialization scheme.
    pub init: Init,
}

impl MlpConfig {
    /// Config with ReLU hidden layers, identity output, He init.
    pub fn new(input_dim: usize, hidden: &[usize], output_dim: usize) -> Self {
        Self {
            input_dim,
            hidden: hidden.to_vec(),
            output_dim,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
            init: Init::HeUniform,
        }
    }

    /// Sets the hidden-layer activation.
    pub fn hidden_activation(mut self, act: Activation) -> Self {
        self.hidden_activation = act;
        self
    }

    /// Sets the output-layer activation.
    pub fn output_activation(mut self, act: Activation) -> Self {
        self.output_activation = act;
        self
    }

    /// Sets the weight initialization scheme.
    pub fn init(mut self, init: Init) -> Self {
        self.init = init;
        self
    }

    /// Sequence of `(in, out, activation)` for each layer.
    fn layer_specs(&self) -> Vec<(usize, usize, Activation)> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 2);
        dims.push(self.input_dim);
        dims.extend_from_slice(&self.hidden);
        dims.push(self.output_dim);
        let mut specs = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                self.output_activation
            } else {
                self.hidden_activation
            };
            specs.push((dims[i], dims[i + 1], act));
        }
        specs
    }
}

/// Reusable inference buffers for [`Mlp::forward_into`] /
/// [`Mlp::forward_one_into`].
///
/// The network ping-pongs layer outputs between two matrices (plus a
/// staging row for single-state inference), so a workspace that has seen
/// its steady-state shapes makes every subsequent forward pass
/// allocation-free. Workspaces are owned by callers (agents own one per
/// network they evaluate) because inference takes `&self` — e.g. a DQN's
/// online and target networks are borrowed simultaneously during a learn
/// step and cannot own their own mutable scratch.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    input: Matrix,
    a: Matrix,
    b: Matrix,
}

impl Workspace {
    /// An empty workspace; buffers take shape on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Training-pass scratch owned by the network (forward/backward ping-pong
/// buffers and the loss gradient), reused across steps.
#[derive(Debug, Clone, Default)]
struct TrainScratch {
    fwd_a: Matrix,
    fwd_b: Matrix,
    grad_a: Matrix,
    grad_b: Matrix,
    loss_grad: Matrix,
}

/// A feed-forward network of dense layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    config: MlpConfig,
    /// Reusable training buffers (not part of the model's state).
    #[serde(skip)]
    scratch: TrainScratch,
}

impl Mlp {
    /// Builds a network with freshly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if any dimension in the config is zero.
    pub fn new<R: Rng + ?Sized>(config: &MlpConfig, rng: &mut R) -> Self {
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(config.output_dim > 0, "output_dim must be positive");
        assert!(
            config.hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        let layers = config
            .layer_specs()
            .into_iter()
            .map(|(i, o, a)| Dense::new(i, o, a, config.init, rng))
            .collect();
        Self {
            layers,
            config: config.clone(),
            scratch: TrainScratch::default(),
        }
    }

    /// The architecture this network was built from.
    pub fn architecture(&self) -> &MlpConfig {
        &self.config
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.config.input_dim
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.config.output_dim
    }

    /// Number of layers (hidden + output).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Inference forward pass over a batch (`batch x input_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != input_dim`.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut ws = Workspace::new();
        self.forward_into(input, &mut ws).clone()
    }

    /// Inference forward pass through a caller-owned [`Workspace`]; returns
    /// a reference into the workspace, valid until its next use. With a
    /// warm workspace the whole pass is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != input_dim`.
    pub fn forward_into<'w>(&self, input: &Matrix, ws: &'w mut Workspace) -> &'w Matrix {
        assert_eq!(input.cols(), self.config.input_dim, "input width mismatch");
        let Workspace { a, b, .. } = ws;
        let (first, rest) = self.layers.split_first().expect("mlp has layers");
        first.forward_into(input, a);
        for layer in rest {
            layer.forward_into(&*a, b);
            std::mem::swap(a, b);
        }
        &*a
    }

    /// Inference on a single state vector; returns the output row.
    pub fn forward_one(&self, input: &[f32]) -> Vec<f32> {
        let out = self.forward(&Matrix::row_vector(input));
        out.row(0).to_vec()
    }

    /// Single-state inference through a caller-owned [`Workspace`]; the
    /// decision hot path. Returns the output row, valid until the
    /// workspace's next use.
    pub fn forward_one_into<'w>(&self, input: &[f32], ws: &'w mut Workspace) -> &'w [f32] {
        ws.input.set_row_vector(input);
        let Workspace { input, a, b } = ws;
        assert_eq!(input.cols(), self.config.input_dim, "input width mismatch");
        let (first, rest) = self.layers.split_first().expect("mlp has layers");
        first.forward_into(&*input, a);
        for layer in rest {
            layer.forward_into(&*a, b);
            std::mem::swap(a, b);
        }
        a.row(0)
    }

    /// Training forward pass, caching per-layer tensors for backprop.
    pub fn forward_train(&mut self, input: &Matrix) -> Matrix {
        self.forward_train_scratch(input).clone()
    }

    /// Training forward pass through the network-owned scratch; returns a
    /// reference to the output, valid until the next training call.
    /// Per-layer caches land in each layer's persistent buffers, so a warm
    /// network performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != input_dim`.
    pub fn forward_train_scratch(&mut self, input: &Matrix) -> &Matrix {
        assert_eq!(input.cols(), self.config.input_dim, "input width mismatch");
        let TrainScratch { fwd_a, fwd_b, .. } = &mut self.scratch;
        fwd_a.copy_from(input);
        for layer in self.layers.iter_mut() {
            layer.forward_train_into(&*fwd_a, fwd_b);
            std::mem::swap(fwd_a, fwd_b);
        }
        &*fwd_a
    }

    /// Backpropagates `grad_output` (dL/d output) through the network,
    /// accumulating parameter gradients. Returns dL/d input.
    ///
    /// # Panics
    ///
    /// Panics if no [`Mlp::forward_train`] preceded this call.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let TrainScratch { grad_a, grad_b, .. } = &mut self.scratch;
        grad_a.copy_from(grad_output);
        for layer in self.layers.iter_mut().rev() {
            layer.backward_into(&*grad_a, grad_b);
            std::mem::swap(grad_a, grad_b);
        }
        grad_a.clone()
    }

    /// Backpropagates through the network-owned scratch, accumulating
    /// parameter gradients without materializing dL/d input for the caller
    /// (the input gradient is discarded — no placement agent consumes it,
    /// so the first layer skips that matmul entirely).
    ///
    /// # Panics
    ///
    /// Panics if no [`Mlp::forward_train`] preceded this call.
    pub fn backward_scratch(&mut self, grad_output: &Matrix) {
        let TrainScratch { grad_a, grad_b, .. } = &mut self.scratch;
        grad_a.copy_from(grad_output);
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            if idx == 0 {
                layer.backward_params_only(&*grad_a);
            } else {
                layer.backward_into(&*grad_a, grad_b);
                std::mem::swap(grad_a, grad_b);
            }
        }
    }

    /// Applies accumulated gradients via `optimizer`, optionally clipping
    /// the global gradient norm first. Clears the accumulators in place
    /// (their allocations are retained for the next step).
    ///
    /// Returns the pre-clip global gradient norm.
    pub fn apply_gradients(
        &mut self,
        optimizer: &mut Optimizer,
        max_grad_norm: Option<f32>,
    ) -> f32 {
        let norm = {
            let mut refs: Vec<&mut Matrix> = Vec::with_capacity(self.layers.len() * 2);
            for layer in self.layers.iter_mut() {
                let (gw, gb) = layer.grads_mut();
                refs.push(gw);
                refs.push(gb);
            }
            match max_grad_norm {
                Some(limit) => clip_global_norm(&mut refs, limit),
                None => refs
                    .iter()
                    .map(|g| g.frobenius_norm().powi(2))
                    .sum::<f32>()
                    .sqrt(),
            }
        };
        optimizer.begin_step();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let (w, b, gw, gb) = layer.params_grads();
            optimizer.update(2 * i, w, gw);
            optimizer.update(2 * i + 1, b, gb);
        }
        for layer in self.layers.iter_mut() {
            layer.clear_grads();
        }
        norm
    }

    /// One supervised training step on `(input, target)` with the given
    /// loss. Returns the batch loss.
    pub fn train_batch(
        &mut self,
        input: &Matrix,
        target: &Matrix,
        loss: Loss,
        optimizer: &mut Optimizer,
        max_grad_norm: Option<f32>,
    ) -> f32 {
        let pred = self.forward_train(input);
        let (l, grad) = loss.evaluate(&pred, target);
        self.backward(&grad);
        self.apply_gradients(optimizer, max_grad_norm);
        l
    }

    /// One Q-learning style step: regress `prediction[r, selected[r]]`
    /// toward `targets[r]`, with optional per-row importance weights.
    ///
    /// Returns `(loss, td_errors)` where `td_errors[r] = pred - target`
    /// (used by prioritized replay to update priorities).
    #[allow(clippy::too_many_arguments)] // mirrors train_batch plus the selection triple
    pub fn train_selected(
        &mut self,
        input: &Matrix,
        selected: &[usize],
        targets: &[f32],
        weights: Option<&[f32]>,
        loss: Loss,
        optimizer: &mut Optimizer,
        max_grad_norm: Option<f32>,
    ) -> (f32, Vec<f32>) {
        assert_eq!(input.cols(), self.config.input_dim, "input width mismatch");
        // Forward, TD errors, and the loss gradient all run inside the
        // network-owned scratch; only the returned TD vector allocates.
        let (l, td) = {
            let TrainScratch {
                fwd_a,
                fwd_b,
                loss_grad,
                ..
            } = &mut self.scratch;
            fwd_a.copy_from(input);
            for layer in self.layers.iter_mut() {
                layer.forward_train_into(&*fwd_a, fwd_b);
                std::mem::swap(fwd_a, fwd_b);
            }
            let pred = &*fwd_a;
            let td: Vec<f32> = selected
                .iter()
                .zip(targets.iter())
                .enumerate()
                .map(|(r, (&c, &t))| pred.get(r, c) - t)
                .collect();
            let l = loss.evaluate_selected_into(pred, selected, targets, weights, loss_grad);
            (l, td)
        };
        {
            let TrainScratch {
                grad_a,
                grad_b,
                loss_grad,
                ..
            } = &mut self.scratch;
            grad_a.copy_from(&*loss_grad);
            for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
                if idx == 0 {
                    // No caller consumes dL/dinput; skip its matmul.
                    layer.backward_params_only(&*grad_a);
                } else {
                    layer.backward_into(&*grad_a, grad_b);
                    std::mem::swap(grad_a, grad_b);
                }
            }
        }
        self.apply_gradients(optimizer, max_grad_norm);
        (l, td)
    }

    /// Drains accumulated per-layer gradients as `(dW, db)` pairs without
    /// applying them. Used by gradient checking and custom update rules.
    pub fn drain_gradients(&mut self) -> Vec<(Matrix, Matrix)> {
        self.layers.iter_mut().map(Dense::take_gradients).collect()
    }

    /// Applies externally drained gradients (from [`Mlp::drain_gradients`])
    /// through `optimizer`, using optimizer slots
    /// `slot_base + 2*layer` / `slot_base + 2*layer + 1`.
    ///
    /// The caller is responsible for [`Optimizer::begin_step`]; this makes it
    /// possible for several sub-networks (e.g. a dueling Q-network's trunk
    /// and heads) to share one optimizer step with disjoint slot ranges.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != layer_count()` or shapes mismatch.
    pub fn apply_external_gradients(
        &mut self,
        grads: &[(Matrix, Matrix)],
        optimizer: &mut Optimizer,
        slot_base: usize,
    ) {
        assert_eq!(
            grads.len(),
            self.layers.len(),
            "gradient count must match layer count"
        );
        for (i, (layer, (gw, gb))) in self.layers.iter_mut().zip(grads.iter()).enumerate() {
            let (w, b) = layer.parameters_mut();
            optimizer.update(slot_base + 2 * i, w, gw);
            optimizer.update(slot_base + 2 * i + 1, b, gb);
        }
    }

    /// Adds `delta` to one parameter scalar: layer `layer`, `which` selects
    /// weights (`0`) or bias (`1`), at `(r, c)`.
    ///
    /// Intended for gradient checking; not a training API.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn perturb_parameter(
        &mut self,
        layer: usize,
        which: usize,
        r: usize,
        c: usize,
        delta: f32,
    ) {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        let (w, b) = self.layers[layer].parameters_mut();
        let target = match which {
            0 => w,
            1 => b,
            other => panic!("`which` must be 0 (weights) or 1 (bias), got {other}"),
        };
        let v = target.get(r, c);
        target.set(r, c, v + delta);
    }

    /// Hard copy of parameters from `other` (target-network sync).
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn copy_parameters_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.config, other.config,
            "cannot copy parameters between different architectures"
        );
        self.layers = other.layers.clone();
    }

    /// Polyak soft update `p ← (1-tau)·p + tau·other` (target-network track).
    ///
    /// # Panics
    ///
    /// Panics if architectures differ or `tau ∉ [0,1]`.
    pub fn soft_update_from(&mut self, other: &Mlp, tau: f32) {
        assert_eq!(
            self.config, other.config,
            "cannot soft-update between different architectures"
        );
        for (mine, theirs) in self.layers.iter_mut().zip(other.layers.iter()) {
            mine.soft_update_from(theirs, tau);
        }
    }

    /// `true` if any parameter is NaN/inf — a cheap divergence tripwire.
    pub fn has_non_finite_params(&self) -> bool {
        self.layers
            .iter()
            .any(|l| l.weights().has_non_finite() || l.bias().has_non_finite())
    }
}

/// Convenience: build network + optimizer together.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainableMlp {
    /// The network.
    pub net: Mlp,
    /// Its optimizer state.
    pub optimizer: Optimizer,
    /// Loss used by [`TrainableMlp::step`].
    pub loss: Loss,
    /// Optional global gradient-norm clip.
    pub max_grad_norm: Option<f32>,
}

impl TrainableMlp {
    /// Builds the network and its optimizer from configs.
    pub fn new<R: Rng + ?Sized>(
        config: &MlpConfig,
        optimizer: OptimizerConfig,
        loss: Loss,
        max_grad_norm: Option<f32>,
        rng: &mut R,
    ) -> Self {
        Self {
            net: Mlp::new(config, rng),
            optimizer: optimizer.build(),
            loss,
            max_grad_norm,
        }
    }

    /// One supervised step; returns the batch loss.
    pub fn step(&mut self, input: &Matrix, target: &Matrix) -> f32 {
        self.net.train_batch(
            input,
            target,
            self.loss,
            &mut self.optimizer,
            self.max_grad_norm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn shapes_and_param_count() {
        let config = MlpConfig::new(3, &[5, 7], 2);
        let net = Mlp::new(&config, &mut rng());
        assert_eq!(net.layer_count(), 3);
        assert_eq!(net.param_count(), (3 * 5 + 5) + (5 * 7 + 7) + (7 * 2 + 2));
        let out = net.forward(&Matrix::zeros(4, 3));
        assert_eq!(out.shape(), (4, 2));
    }

    #[test]
    fn forward_one_matches_batched_forward() {
        let config = MlpConfig::new(3, &[8], 2);
        let net = Mlp::new(&config, &mut rng());
        let x = [0.1, -0.2, 0.3];
        let single = net.forward_one(&x);
        let batched = net.forward(&Matrix::row_vector(&x));
        assert_eq!(single, batched.row(0).to_vec());
    }

    #[test]
    fn learns_linear_function() {
        // y = 2*x0 - x1; an MLP should fit this almost exactly.
        let config = MlpConfig::new(2, &[16], 1).hidden_activation(Activation::Tanh);
        let mut trainable = TrainableMlp::new(
            &config,
            OptimizerConfig::adam(0.01),
            Loss::Mse,
            None,
            &mut rng(),
        );
        let mut r = rng();
        use rand::Rng as _;
        let mut final_loss = f32::MAX;
        for _ in 0..1500 {
            let x = Matrix::from_fn(16, 2, |_, _| r.gen_range(-1.0..1.0));
            let y = Matrix::from_fn(16, 1, |i, _| 2.0 * x.get(i, 0) - x.get(i, 1));
            final_loss = trainable.step(&x, &y);
        }
        assert!(final_loss < 5e-3, "final loss {final_loss}");
    }

    #[test]
    fn learns_xor() {
        // Non-linearly-separable target proves backprop flows through depth.
        let config = MlpConfig::new(2, &[8, 8], 1).hidden_activation(Activation::Tanh);
        let mut t = TrainableMlp::new(
            &config,
            OptimizerConfig::adam(0.02),
            Loss::Mse,
            None,
            &mut rng(),
        );
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut loss = f32::MAX;
        for _ in 0..2000 {
            loss = t.step(&x, &y);
        }
        assert!(loss < 1e-2, "xor loss {loss}");
        let pred = t.net.forward(&x);
        assert!(pred.get(0, 0) < 0.3 && pred.get(1, 0) > 0.7);
    }

    #[test]
    fn train_selected_only_moves_chosen_outputs() {
        let config = MlpConfig::new(2, &[], 3); // single linear layer
        let mut net = Mlp::new(&config, &mut rng());
        let mut opt = OptimizerConfig::sgd(0.5).build();
        let x = Matrix::from_rows(&[&[1.0, 0.0]]);
        let before = net.forward(&x);
        // Push output 1 toward a big value; outputs 0 and 2 share input
        // weights but their columns should not change.
        let (_, td) = net.train_selected(
            &x,
            &[1],
            &[before.get(0, 1) + 1.0],
            None,
            Loss::Mse,
            &mut opt,
            None,
        );
        assert!((td[0] + 1.0).abs() < 1e-5);
        let after = net.forward(&x);
        assert!((after.get(0, 0) - before.get(0, 0)).abs() < 1e-6);
        assert!((after.get(0, 2) - before.get(0, 2)).abs() < 1e-6);
        assert!(after.get(0, 1) > before.get(0, 1));
    }

    #[test]
    fn copy_and_soft_update() {
        let config = MlpConfig::new(2, &[4], 2);
        let mut a = Mlp::new(&config, &mut rng());
        let b = Mlp::new(&config, &mut StdRng::seed_from_u64(999));
        let x = Matrix::from_rows(&[&[0.5, -0.5]]);
        a.copy_parameters_from(&b);
        assert_eq!(a.forward(&x), b.forward(&x));
        // Soft update from a third net moves outputs strictly between.
        let c = Mlp::new(&config, &mut StdRng::seed_from_u64(555));
        let before = a.forward(&x).get(0, 0);
        a.soft_update_from(&c, 0.5);
        let after = a.forward(&x).get(0, 0);
        assert!(after != before);
    }

    #[test]
    fn gradient_clip_bounds_update() {
        let config = MlpConfig::new(1, &[], 1);
        let mut net = Mlp::new(&config, &mut rng());
        let mut opt = OptimizerConfig::sgd(1.0).build();
        let x = Matrix::from_rows(&[&[1000.0]]);
        let before = net.layers()[0].weights().get(0, 0);
        // Huge input would explode without clipping.
        let target = Matrix::from_rows(&[&[0.0]]);
        net.train_batch(&x, &target, Loss::Mse, &mut opt, Some(0.1));
        let after = net.layers()[0].weights().get(0, 0);
        assert!((after - before).abs() <= 0.1 + 1e-4);
    }

    #[test]
    fn parameter_round_trip_preserves_outputs() {
        // Export every layer's parameters and rebuild the layers from them;
        // the reconstructed stack must be output-identical. (The vendored
        // offline serde is a no-op, so the roundtrip is exercised at the
        // parameter level rather than through serde_json.)
        let config = MlpConfig::new(3, &[6], 2);
        let net = Mlp::new(&config, &mut rng());
        let restored: Vec<Dense> = net
            .layers()
            .iter()
            .map(|l| Dense::from_parameters(l.weights().clone(), l.bias().clone(), l.activation()))
            .collect();
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3]]);
        let mut manual = x.clone();
        for layer in &restored {
            manual = layer.forward(&manual);
        }
        assert_eq!(net.forward(&x), manual);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let net = Mlp::new(&MlpConfig::new(3, &[4], 1), &mut rng());
        let _ = net.forward(&Matrix::zeros(1, 5));
    }
}
