//! Fully-connected (dense) layer with cached forward pass for backprop.

use crate::activation::Activation;
use crate::init::Init;
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer computing `a = act(x · W + b)`.
///
/// `W` is `in_dim x out_dim`, `b` is `1 x out_dim`, and inputs are batched
/// row-wise (`batch x in_dim`).
///
/// All per-call tensors of the training loop — the forward cache, the
/// gradient accumulators, and the backward intermediates — live in
/// long-lived buffers owned by the layer, so a steady-state
/// forward/backward/update cycle performs no heap allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
    /// Gradient accumulators, same shape as the parameters. Allocated once
    /// at construction and zero-filled (never dropped) when cleared.
    #[serde(skip)]
    grad_weights: Matrix,
    #[serde(skip)]
    grad_bias: Matrix,
    /// Whether the accumulators hold gradients from a backward pass.
    #[serde(skip)]
    has_grads: bool,
    /// Persistent forward tensors (input and pre-activation), overwritten
    /// in place by every [`Dense::forward_train_into`].
    #[serde(skip)]
    cache: ForwardCache,
    /// Whether `cache` holds tensors a backward pass may consume.
    #[serde(skip)]
    cache_armed: bool,
    /// Backward-pass intermediates, reused across calls.
    #[serde(skip)]
    scratch: BackwardScratch,
}

#[derive(Debug, Clone, Default)]
struct ForwardCache {
    input: Matrix,
    pre_activation: Matrix,
}

#[derive(Debug, Clone, Default)]
struct BackwardScratch {
    grad_z: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    /// Transposed weights, re-materialized per backward pass: `grad · Wᵀ`
    /// through the row-streaming matmul kernel beats the dot-product form
    /// by far, and the accumulation order (ascending `k`) is unchanged.
    w_t: Matrix,
}

impl Dense {
    /// Creates a layer with freshly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        init: Init,
        rng: &mut R,
    ) -> Self {
        Self::from_parameters(
            init.weights(in_dim, out_dim, rng),
            init.bias(out_dim),
            activation,
        )
    }

    /// Creates a layer from explicit parameters (used by tests and loaders).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x weights.cols()`.
    pub fn from_parameters(weights: Matrix, bias: Matrix, activation: Activation) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(
            bias.cols(),
            weights.cols(),
            "bias width must match weight columns"
        );
        let grad_weights = Matrix::zeros(weights.rows(), weights.cols());
        let grad_bias = Matrix::zeros(1, bias.cols());
        Self {
            weights,
            bias,
            activation,
            grad_weights,
            grad_bias,
            has_grads: false,
            cache: ForwardCache::default(),
            cache_armed: false,
            scratch: BackwardScratch::default(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Immutable view of the bias vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Inference-only forward pass (no cache is stored).
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != in_dim`.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    /// Inference forward pass into a caller-owned buffer: matmul, bias
    /// broadcast, and activation all land in `out` with no allocation,
    /// through the fused kernel — bias and activation are applied while
    /// each micro-kernel tile is still in registers, sparing the batched
    /// decision path two full memory passes over the output. Identical
    /// per-element arithmetic in identical order to the unfused
    /// matmul → broadcast → activate sequence, so results are
    /// bit-identical (pinned by the golden scratch tests). The common
    /// activations get monomorphized epilogues; the rest dispatch through
    /// [`Activation::apply_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != in_dim`.
    pub fn forward_into(&self, input: &Matrix, out: &mut Matrix) {
        let (w, b) = (&self.weights, &self.bias);
        match self.activation {
            Activation::Identity => input.matmul_bias_map_into(w, b, |z| z, out),
            Activation::Relu => {
                input.matmul_bias_map_into(w, b, |z| if z > 0.0 { z } else { 0.0 }, out)
            }
            act => input.matmul_bias_map_into(w, b, move |z| act.apply_scalar(z), out),
        }
    }

    /// Training forward pass: caches the input and pre-activation so a
    /// subsequent [`Dense::backward`] can compute gradients.
    pub fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_train_into(input, &mut out);
        out
    }

    /// Training forward pass into a caller-owned buffer. The input and
    /// pre-activation are copied into the layer's persistent cache, so the
    /// whole call is allocation-free at steady state.
    pub fn forward_train_into(&mut self, input: &Matrix, out: &mut Matrix) {
        self.cache.input.copy_from(input);
        input.matmul_into(&self.weights, &mut self.cache.pre_activation);
        self.cache
            .pre_activation
            .add_row_broadcast_assign(&self.bias);
        self.activation.apply_into(&self.cache.pre_activation, out);
        self.cache_armed = true;
    }

    /// Backward pass. `grad_output` is dL/da for this layer's output;
    /// returns dL/dx for the layer's input and accumulates parameter
    /// gradients internally (summed across calls until [`Dense::take_gradients`]).
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Dense::forward_train`].
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_input = Matrix::default();
        self.backward_into(grad_output, &mut grad_input);
        grad_input
    }

    /// Backward pass writing dL/dx into a caller-owned buffer. Every
    /// intermediate (dL/dz, dW, db) lives in the layer's reusable scratch.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Dense::forward_train`].
    pub fn backward_into(&mut self, grad_output: &Matrix, grad_input: &mut Matrix) {
        self.backward_params(grad_output);
        // dL/dx = dL/dz · Wᵀ, via a materialized transpose so the product
        // runs on the vectorized row-streaming kernel (same ascending-`k`
        // accumulation as the dot-product form — bit-identical).
        let BackwardScratch { grad_z, w_t, .. } = &mut self.scratch;
        self.weights.transpose_into(w_t);
        grad_z.matmul_into(w_t, grad_input);
    }

    /// Backward pass that accumulates parameter gradients but skips
    /// dL/dx entirely — for the network's first layer, whose input
    /// gradient no caller consumes (it saves the largest matmul of the
    /// backward chain).
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Dense::forward_train`].
    pub fn backward_params_only(&mut self, grad_output: &Matrix) {
        self.backward_params(grad_output);
    }

    /// Shared core: dL/dz, dL/dW, dL/db into scratch + accumulators.
    fn backward_params(&mut self, grad_output: &Matrix) {
        assert!(
            self.cache_armed,
            "Dense::backward called without a cached forward_train pass"
        );
        self.cache_armed = false;
        let BackwardScratch {
            grad_z,
            grad_w,
            grad_b,
            ..
        } = &mut self.scratch;
        // dL/dz = dL/da ⊙ f'(z), fused.
        self.activation
            .derivative_mul_into(&self.cache.pre_activation, grad_output, grad_z);
        // dL/dW = xᵀ · dL/dz ; dL/db = column-sum(dL/dz)
        self.cache.input.tmatmul_into(grad_z, grad_w);
        grad_z.col_sum_into(grad_b);
        if self.has_grads {
            self.grad_weights.add_scaled_assign(grad_w, 1.0);
            self.grad_bias.add_scaled_assign(grad_b, 1.0);
        } else {
            self.grad_weights.copy_from(grad_w);
            self.grad_bias.copy_from(grad_b);
            self.has_grads = true;
        }
    }

    /// Removes and returns accumulated `(dW, db)` gradients, resetting the
    /// accumulators. Returns zero matrices if no backward pass happened.
    pub fn take_gradients(&mut self) -> (Matrix, Matrix) {
        if self.has_grads {
            self.has_grads = false;
            let gw = self.grad_weights.clone();
            let gb = self.grad_bias.clone();
            self.grad_weights.fill(0.0);
            self.grad_bias.fill(0.0);
            (gw, gb)
        } else {
            (
                Matrix::zeros(self.weights.rows(), self.weights.cols()),
                Matrix::zeros(1, self.bias.cols()),
            )
        }
    }

    /// Peeks at accumulated gradients without clearing them.
    pub fn gradients(&self) -> Option<(&Matrix, &Matrix)> {
        if self.has_grads {
            Some((&self.grad_weights, &self.grad_bias))
        } else {
            None
        }
    }

    /// Keeps the accumulators shaped like the parameters (they start empty
    /// after deserialization, whose skip-fields default to `0 x 0`).
    fn ensure_grad_shapes(&mut self) {
        if self.grad_weights.shape() != self.weights.shape() {
            self.grad_weights
                .reset_zeroed(self.weights.rows(), self.weights.cols());
        }
        if self.grad_bias.shape() != self.bias.shape() {
            self.grad_bias.reset_zeroed(1, self.bias.cols());
        }
    }

    /// Mutable access to both accumulators (shape-ensured) for in-place
    /// gradient clipping.
    pub(crate) fn grads_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        self.ensure_grad_shapes();
        (&mut self.grad_weights, &mut self.grad_bias)
    }

    /// Parameters and accumulated gradients together, for in-place
    /// optimizer updates: `(weights, bias, grad_weights, grad_bias)`.
    pub(crate) fn params_grads(&mut self) -> (&mut Matrix, &mut Matrix, &Matrix, &Matrix) {
        self.ensure_grad_shapes();
        (
            &mut self.weights,
            &mut self.bias,
            &self.grad_weights,
            &self.grad_bias,
        )
    }

    /// Zero-fills the accumulators in place (the allocation-free sibling of
    /// [`Dense::take_gradients`]).
    pub(crate) fn clear_grads(&mut self) {
        self.has_grads = false;
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    /// Applies a parameter delta in place: `W += dw`, `b += db`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_delta(&mut self, dw: &Matrix, db: &Matrix) {
        self.weights.add_scaled_assign(dw, 1.0);
        self.bias.add_scaled_assign(db, 1.0);
    }

    /// Polyak/soft update toward `other`: `p ← (1 - tau) * p + tau * other`.
    ///
    /// # Panics
    ///
    /// Panics if the layers have different shapes or `tau ∉ [0, 1]`.
    pub fn soft_update_from(&mut self, other: &Dense, tau: f32) {
        assert!(
            (0.0..=1.0).contains(&tau),
            "tau must be in [0,1], got {tau}"
        );
        assert_eq!(
            self.weights.shape(),
            other.weights.shape(),
            "soft update shape mismatch"
        );
        self.weights.scale_assign(1.0 - tau);
        self.weights.add_scaled_assign(&other.weights, tau);
        self.bias.scale_assign(1.0 - tau);
        self.bias.add_scaled_assign(&other.bias, tau);
    }

    /// Mutable parameter access for optimizers: `(weights, bias)`.
    pub(crate) fn parameters_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.weights, &mut self.bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_2x3() -> Dense {
        Dense::from_parameters(
            Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 1.0, 0.5]]),
            Matrix::row_vector(&[0.1, -0.1, 0.0]),
            Activation::Identity,
        )
    }

    #[test]
    fn forward_matches_manual_computation() {
        let layer = layer_2x3();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let out = layer.forward(&x);
        // z = [1*1+2*2, 1*0+2*1, 1*-1+2*0.5] + b = [5.1, 1.9, 0.0]
        assert!((out.get(0, 0) - 5.1).abs() < 1e-6);
        assert!((out.get(0, 1) - 1.9).abs() < 1e-6);
        assert!((out.get(0, 2) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn backward_produces_expected_shapes() {
        let mut layer = layer_2x3();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0]]);
        let _ = layer.forward_train(&x);
        let grad_in = layer.backward(&Matrix::full(2, 3, 1.0));
        assert_eq!(grad_in.shape(), (2, 2));
        let (gw, gb) = layer.take_gradients();
        assert_eq!(gw.shape(), (2, 3));
        assert_eq!(gb.shape(), (1, 3));
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut layer = layer_2x3();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let g = Matrix::full(1, 3, 1.0);
        let _ = layer.forward_train(&x);
        let _ = layer.backward(&g);
        let (gw1, _) = {
            let (w, b) = layer.gradients().expect("grads present");
            (w.clone(), b.clone())
        };
        let _ = layer.forward_train(&x);
        let _ = layer.backward(&g);
        let (gw2, _) = layer.take_gradients();
        assert_eq!(gw2, gw1.scale(2.0));
        // Accumulator cleared after take.
        assert!(layer.gradients().is_none());
    }

    #[test]
    #[should_panic(expected = "without a cached forward_train")]
    fn backward_without_forward_panics() {
        let mut layer = layer_2x3();
        let _ = layer.backward(&Matrix::full(1, 3, 1.0));
    }

    #[test]
    fn identity_layer_backward_is_linear_map() {
        // With identity activation: grad_in = grad_out · Wᵀ exactly.
        let mut layer = layer_2x3();
        let x = Matrix::from_rows(&[&[0.3, -0.7]]);
        let _ = layer.forward_train(&x);
        let g = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let grad_in = layer.backward(&g);
        let expected = g.matmul_t(layer.weights());
        assert_eq!(grad_in, expected);
    }

    #[test]
    fn soft_update_interpolates() {
        let mut a = layer_2x3();
        let mut b = layer_2x3();
        let (w, _) = b.parameters_mut();
        w.scale_assign(3.0);
        a.soft_update_from(&b, 0.5);
        // Original weight (0,0) = 1.0, b's = 3.0, expect 2.0.
        assert!((a.weights().get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn random_init_respects_dims() {
        let mut rng = StdRng::seed_from_u64(7);
        let layer = Dense::new(4, 8, Activation::Relu, Init::HeUniform, &mut rng);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 8);
        assert_eq!(layer.param_count(), 4 * 8 + 8);
    }
}
