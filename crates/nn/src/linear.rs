//! Fully-connected (dense) layer with cached forward pass for backprop.

use crate::activation::Activation;
use crate::init::Init;
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer computing `a = act(x · W + b)`.
///
/// `W` is `in_dim x out_dim`, `b` is `1 x out_dim`, and inputs are batched
/// row-wise (`batch x in_dim`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
    /// Gradient accumulators, same shape as the parameters.
    #[serde(skip)]
    grad_weights: Option<Matrix>,
    #[serde(skip)]
    grad_bias: Option<Matrix>,
    /// Cached forward tensors (input and pre-activation).
    #[serde(skip)]
    cache: Option<ForwardCache>,
}

#[derive(Debug, Clone)]
struct ForwardCache {
    input: Matrix,
    pre_activation: Matrix,
}

impl Dense {
    /// Creates a layer with freshly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        init: Init,
        rng: &mut R,
    ) -> Self {
        Self {
            weights: init.weights(in_dim, out_dim, rng),
            bias: init.bias(out_dim),
            activation,
            grad_weights: None,
            grad_bias: None,
            cache: None,
        }
    }

    /// Creates a layer from explicit parameters (used by tests and loaders).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x weights.cols()`.
    pub fn from_parameters(weights: Matrix, bias: Matrix, activation: Activation) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(
            bias.cols(),
            weights.cols(),
            "bias width must match weight columns"
        );
        Self {
            weights,
            bias,
            activation,
            grad_weights: None,
            grad_bias: None,
            cache: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Immutable view of the bias vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Inference-only forward pass (no cache is stored).
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != in_dim`.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let z = input.matmul(&self.weights).add_row_broadcast(&self.bias);
        self.activation.apply(&z)
    }

    /// Training forward pass: caches the input and pre-activation so a
    /// subsequent [`Dense::backward`] can compute gradients.
    pub fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let z = input.matmul(&self.weights).add_row_broadcast(&self.bias);
        let out = self.activation.apply(&z);
        self.cache = Some(ForwardCache {
            input: input.clone(),
            pre_activation: z,
        });
        out
    }

    /// Backward pass. `grad_output` is dL/da for this layer's output;
    /// returns dL/dx for the layer's input and accumulates parameter
    /// gradients internally (summed across calls until [`Dense::take_gradients`]).
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Dense::forward_train`].
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("Dense::backward called without a cached forward_train pass");
        // dL/dz = dL/da ⊙ f'(z)
        let grad_z = grad_output.hadamard(&self.activation.derivative(&cache.pre_activation));
        // dL/dW = xᵀ · dL/dz ; dL/db = column-sum(dL/dz) ; dL/dx = dL/dz · Wᵀ
        let gw = cache.input.tmatmul(&grad_z);
        let gb = grad_z.col_sum();
        match (&mut self.grad_weights, &mut self.grad_bias) {
            (Some(acc_w), Some(acc_b)) => {
                acc_w.add_scaled_assign(&gw, 1.0);
                acc_b.add_scaled_assign(&gb, 1.0);
            }
            _ => {
                self.grad_weights = Some(gw);
                self.grad_bias = Some(gb);
            }
        }
        grad_z.matmul_t(&self.weights)
    }

    /// Removes and returns accumulated `(dW, db)` gradients, resetting the
    /// accumulators. Returns zero matrices if no backward pass happened.
    pub fn take_gradients(&mut self) -> (Matrix, Matrix) {
        let gw = self
            .grad_weights
            .take()
            .unwrap_or_else(|| Matrix::zeros(self.weights.rows(), self.weights.cols()));
        let gb = self
            .grad_bias
            .take()
            .unwrap_or_else(|| Matrix::zeros(1, self.bias.cols()));
        (gw, gb)
    }

    /// Peeks at accumulated gradients without clearing them.
    pub fn gradients(&self) -> Option<(&Matrix, &Matrix)> {
        match (&self.grad_weights, &self.grad_bias) {
            (Some(w), Some(b)) => Some((w, b)),
            _ => None,
        }
    }

    /// Applies a parameter delta in place: `W += dw`, `b += db`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_delta(&mut self, dw: &Matrix, db: &Matrix) {
        self.weights.add_scaled_assign(dw, 1.0);
        self.bias.add_scaled_assign(db, 1.0);
    }

    /// Polyak/soft update toward `other`: `p ← (1 - tau) * p + tau * other`.
    ///
    /// # Panics
    ///
    /// Panics if the layers have different shapes or `tau ∉ [0, 1]`.
    pub fn soft_update_from(&mut self, other: &Dense, tau: f32) {
        assert!(
            (0.0..=1.0).contains(&tau),
            "tau must be in [0,1], got {tau}"
        );
        assert_eq!(
            self.weights.shape(),
            other.weights.shape(),
            "soft update shape mismatch"
        );
        self.weights.scale_assign(1.0 - tau);
        self.weights.add_scaled_assign(&other.weights, tau);
        self.bias.scale_assign(1.0 - tau);
        self.bias.add_scaled_assign(&other.bias, tau);
    }

    /// Mutable parameter access for optimizers: `(weights, bias)`.
    pub(crate) fn parameters_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.weights, &mut self.bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_2x3() -> Dense {
        Dense::from_parameters(
            Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 1.0, 0.5]]),
            Matrix::row_vector(&[0.1, -0.1, 0.0]),
            Activation::Identity,
        )
    }

    #[test]
    fn forward_matches_manual_computation() {
        let layer = layer_2x3();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let out = layer.forward(&x);
        // z = [1*1+2*2, 1*0+2*1, 1*-1+2*0.5] + b = [5.1, 1.9, 0.0]
        assert!((out.get(0, 0) - 5.1).abs() < 1e-6);
        assert!((out.get(0, 1) - 1.9).abs() < 1e-6);
        assert!((out.get(0, 2) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn backward_produces_expected_shapes() {
        let mut layer = layer_2x3();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0]]);
        let _ = layer.forward_train(&x);
        let grad_in = layer.backward(&Matrix::full(2, 3, 1.0));
        assert_eq!(grad_in.shape(), (2, 2));
        let (gw, gb) = layer.take_gradients();
        assert_eq!(gw.shape(), (2, 3));
        assert_eq!(gb.shape(), (1, 3));
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut layer = layer_2x3();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let g = Matrix::full(1, 3, 1.0);
        let _ = layer.forward_train(&x);
        let _ = layer.backward(&g);
        let (gw1, _) = {
            let (w, b) = layer.gradients().expect("grads present");
            (w.clone(), b.clone())
        };
        let _ = layer.forward_train(&x);
        let _ = layer.backward(&g);
        let (gw2, _) = layer.take_gradients();
        assert_eq!(gw2, gw1.scale(2.0));
        // Accumulator cleared after take.
        assert!(layer.gradients().is_none());
    }

    #[test]
    #[should_panic(expected = "without a cached forward_train")]
    fn backward_without_forward_panics() {
        let mut layer = layer_2x3();
        let _ = layer.backward(&Matrix::full(1, 3, 1.0));
    }

    #[test]
    fn identity_layer_backward_is_linear_map() {
        // With identity activation: grad_in = grad_out · Wᵀ exactly.
        let mut layer = layer_2x3();
        let x = Matrix::from_rows(&[&[0.3, -0.7]]);
        let _ = layer.forward_train(&x);
        let g = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let grad_in = layer.backward(&g);
        let expected = g.matmul_t(layer.weights());
        assert_eq!(grad_in, expected);
    }

    #[test]
    fn soft_update_interpolates() {
        let mut a = layer_2x3();
        let mut b = layer_2x3();
        let (w, _) = b.parameters_mut();
        w.scale_assign(3.0);
        a.soft_update_from(&b, 0.5);
        // Original weight (0,0) = 1.0, b's = 3.0, expect 2.0.
        assert!((a.weights().get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn random_init_respects_dims() {
        let mut rng = StdRng::seed_from_u64(7);
        let layer = Dense::new(4, 8, Activation::Relu, Init::HeUniform, &mut rng);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 8);
        assert_eq!(layer.param_count(), 4 * 8 + 8);
    }
}
