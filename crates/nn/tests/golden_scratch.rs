//! Golden-equality suite for the scratch-buffer execution path.
//!
//! The allocation-free kernels and `_into` APIs must reproduce the
//! pre-optimization allocate-per-call pipeline **bit for bit** — the
//! historical kernels are preserved verbatim in [`nn::tensor::reference`]
//! as the oracle. Every comparison here is exact (`assert_eq!` on raw
//! `f32` buffers), not approximate: the perf rewrite is required to change
//! no numerics.

use nn::activation::Activation;
use nn::init::Init;
use nn::linear::Dense;
use nn::loss::Loss;
use nn::mlp::{Mlp, MlpConfig, Workspace};
use nn::optimizer::{clip_global_norm, OptimizerConfig};
use nn::tensor::{reference, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random matrix with zeros sprinkled in (~30%), so the reference kernels'
/// historical `a == 0.0` skip branch actually fires during comparison.
fn sparse_random(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen::<f32>() < 0.3 {
            0.0
        } else {
            rng.gen_range(-2.0..2.0)
        }
    })
}

#[test]
fn blocked_kernels_match_reference_bitwise() {
    let mut rng = StdRng::seed_from_u64(42);
    // Shapes straddling the unroll width (8), the register block (4), and
    // the K block (64): remainders on every path get exercised. The last
    // four rows reach the 8x16 register tile of every product (output
    // m >= 8 and n >= 16) — exact tile grids, row tails, column tails,
    // and both at once.
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (1, 74, 128),
        (3, 8, 8),
        (5, 7, 9),
        (32, 128, 10),
        (4, 130, 67),
        (2, 64, 4),
        (8, 20, 16),
        (16, 70, 33),
        (9, 64, 17),
        (24, 5, 40),
    ] {
        let a = sparse_random(m, k, &mut rng);
        let b = sparse_random(k, n, &mut rng);
        assert_eq!(
            a.matmul(&b),
            reference::matmul(&a, &b),
            "matmul {m}x{k}*{k}x{n}"
        );

        let at = sparse_random(k, m, &mut rng);
        assert_eq!(
            at.tmatmul(&b),
            reference::tmatmul(&at, &b),
            "tmatmul ({k}x{m})T*{k}x{n}"
        );

        let bt = sparse_random(n, k, &mut rng);
        assert_eq!(
            a.matmul_t(&bt),
            reference::matmul_t(&a, &bt),
            "matmul_t {m}x{k}*({n}x{k})T"
        );
    }
}

#[test]
fn into_kernels_reuse_buffers_without_contamination() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Matrix::default();
    // Alternate shapes through ONE output buffer; stale contents from a
    // larger previous result must never leak into a smaller one.
    for &(m, k, n) in &[
        (8usize, 16usize, 12usize),
        (2, 3, 4),
        (8, 16, 12),
        (1, 1, 1),
    ] {
        let a = sparse_random(m, k, &mut rng);
        let b = sparse_random(k, n, &mut rng);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, reference::matmul(&a, &b));
    }
}

#[test]
fn broadcast_assign_matches_reference() {
    let mut rng = StdRng::seed_from_u64(11);
    let a = sparse_random(6, 10, &mut rng);
    let bias = sparse_random(1, 10, &mut rng);
    assert_eq!(
        a.add_row_broadcast(&bias),
        reference::add_row_broadcast(&a, &bias)
    );
}

/// The pre-optimization dense forward pass, reconstructed from reference
/// kernels: allocate-per-call matmul + broadcast + activation.
fn reference_forward(layers: &[Dense], input: &Matrix) -> Matrix {
    let mut x = input.clone();
    for layer in layers {
        let z = reference::add_row_broadcast(&reference::matmul(&x, layer.weights()), layer.bias());
        x = layer.activation().apply(&z);
    }
    x
}

fn test_net(rng: &mut StdRng) -> Mlp {
    let config = MlpConfig::new(9, &[16, 12], 5)
        .hidden_activation(Activation::Relu)
        .init(Init::HeUniform);
    Mlp::new(&config, rng)
}

#[test]
fn forward_paths_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(123);
    let net = test_net(&mut rng);
    let mut ws = Workspace::new();
    // Interleave batch sizes through one workspace: resizing scratch
    // between 1-row action inference and 32-row training batches must not
    // perturb a single bit.
    for &batch in &[1usize, 32, 1, 4, 32, 1] {
        let x = sparse_random(batch, 9, &mut rng);
        let expected = reference_forward(net.layers(), &x);
        assert_eq!(net.forward(&x), expected, "allocating forward");
        assert_eq!(
            *net.forward_into(&x, &mut ws),
            expected,
            "workspace forward"
        );
        let row = net.forward_one_into(x.row(0), &mut ws).to_vec();
        let single = reference_forward(net.layers(), &Matrix::row_vector(x.row(0)));
        assert_eq!(row, single.row(0).to_vec(), "single-row forward");
        assert_eq!(net.forward_one(x.row(0)), row, "allocating forward_one");
    }
}

/// Reference backward for one supervised step: the pre-optimization
/// per-layer pipeline (materialized derivative, hadamard, reference
/// matmuls), returning `(dW, db)` per layer in layer order.
fn reference_backward(
    layers: &[Dense],
    input: &Matrix,
    grad_output: &Matrix,
) -> Vec<(Matrix, Matrix)> {
    // Forward, caching input and pre-activation per layer.
    let mut x = input.clone();
    let mut caches = Vec::new();
    for layer in layers {
        let z = reference::add_row_broadcast(&reference::matmul(&x, layer.weights()), layer.bias());
        let a = layer.activation().apply(&z);
        caches.push((x.clone(), z));
        x = a;
    }
    // Backward in reverse.
    let mut grads = vec![(Matrix::default(), Matrix::default()); layers.len()];
    let mut g = grad_output.clone();
    for (i, layer) in layers.iter().enumerate().rev() {
        let (cache_in, z) = &caches[i];
        let grad_z = g.hadamard(&layer.activation().derivative(z));
        grads[i] = (reference::tmatmul(cache_in, &grad_z), grad_z.col_sum());
        g = reference::matmul_t(&grad_z, layer.weights());
    }
    grads
}

#[test]
fn backward_matches_reference_bitwise() {
    let mut rng = StdRng::seed_from_u64(321);
    let mut net = test_net(&mut rng);
    for &batch in &[4usize, 1, 16] {
        let x = sparse_random(batch, 9, &mut rng);
        let grad_out = sparse_random(batch, 5, &mut rng);
        let expected = reference_backward(net.layers(), &x, &grad_out);

        let _ = net.forward_train(&x);
        net.backward(&grad_out);
        let got = net.drain_gradients();
        for (l, ((gw, gb), (ew, eb))) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(gw, ew, "layer {l} dW (batch {batch})");
            assert_eq!(gb, eb, "layer {l} db (batch {batch})");
        }
    }
}

/// One full DQN-style train step (`train_selected`: the core of
/// `DqnAgent::learn`) against the pre-optimization pipeline replayed with
/// reference kernels: forward, selected loss, backward, global-norm clip,
/// Adam update. Parameters must match bit for bit afterwards.
#[test]
fn train_selected_step_matches_reference_bitwise() {
    let mut rng = StdRng::seed_from_u64(999);
    let mut net = test_net(&mut rng);
    let max_norm = 10.0f32;
    let loss = Loss::Huber(1.0);

    // Snapshot initial parameters for the reference update.
    let mut ref_params: Vec<(Matrix, Matrix)> = net
        .layers()
        .iter()
        .map(|l| (l.weights().clone(), l.bias().clone()))
        .collect();
    let mut ref_opt = OptimizerConfig::adam(1e-3).build();
    let mut opt = OptimizerConfig::adam(1e-3).build();

    // Two consecutive steps: the second runs entirely on warm scratch and
    // a stateful optimizer, the strongest contamination check.
    for step in 0..2 {
        let x = sparse_random(8, 9, &mut rng);
        let selected: Vec<usize> = (0..8).map(|r| r % 5).collect();
        let targets: Vec<f32> = (0..8).map(|r| (r as f32 - 4.0) * 0.3).collect();

        // Reference pipeline on the snapshot.
        let ref_layers: Vec<Dense> = ref_params
            .iter()
            .zip(net.layers().iter())
            .map(|((w, b), l)| Dense::from_parameters(w.clone(), b.clone(), l.activation()))
            .collect();
        let pred = reference_forward(&ref_layers, &x);
        let (_, grad) = loss.evaluate_selected(&pred, &selected, &targets, None);
        let mut expected_grads = reference_backward(&ref_layers, &x, &grad);
        {
            let mut refs: Vec<&mut Matrix> = Vec::new();
            for (gw, gb) in expected_grads.iter_mut() {
                refs.push(gw);
                refs.push(gb);
            }
            clip_global_norm(&mut refs, max_norm);
        }
        ref_opt.begin_step();
        for (i, ((w, b), (gw, gb))) in ref_params.iter_mut().zip(expected_grads.iter()).enumerate()
        {
            ref_opt.update(2 * i, w, gw);
            ref_opt.update(2 * i + 1, b, gb);
        }

        // Optimized pipeline.
        let (_, td) = net.train_selected(
            &x,
            &selected,
            &targets,
            None,
            loss,
            &mut opt,
            Some(max_norm),
        );
        assert_eq!(td.len(), 8);

        for (l, ((w, b), layer)) in ref_params.iter().zip(net.layers().iter()).enumerate() {
            assert_eq!(layer.weights(), w, "layer {l} weights after step {step}");
            assert_eq!(layer.bias(), b, "layer {l} bias after step {step}");
        }
    }
}
