//! Property-based tests for the nn crate: algebraic identities on matrices,
//! gradient checking across random architectures, and optimizer invariants.

use nn::gradcheck::check_mlp_gradients;
use nn::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..6
}

/// Dimensions crossing the 8x16 register-tile boundary, so the tiled and
/// tail paths of the transpose-free products both get random coverage.
fn tile_dim() -> impl Strategy<Value = usize> {
    1usize..24
}

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|v| (v * 100.0).round() / 100.0)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(finite_f32(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative_with_identity((r, c) in (small_dim(), small_dim()), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let a = Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0f32..1.0));
        prop_assert_eq!(a.matmul(&Matrix::eye(c)), a.clone());
        prop_assert_eq!(Matrix::eye(r).matmul(&a), a);
    }

    #[test]
    fn transpose_involution((r, c) in (small_dim(), small_dim()), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let a = Matrix::from_fn(r, c, |_, _| rng.gen_range(-5.0f32..5.0));
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn tmatmul_and_matmul_t_agree_with_explicit((m, k, n) in (tile_dim(), tile_dim(), tile_dim()), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let a = Matrix::from_fn(k, m, |_, _| rng.gen_range(-2.0f32..2.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-2.0f32..2.0));
        let direct = a.tmatmul(&b);
        let explicit = a.transpose().matmul(&b);
        for i in 0..direct.rows() {
            for j in 0..direct.cols() {
                prop_assert!((direct.get(i, j) - explicit.get(i, j)).abs() < 1e-4);
            }
        }
        let c = Matrix::from_fn(m, k, |_, _| rng.gen_range(-2.0f32..2.0));
        let d = Matrix::from_fn(n, k, |_, _| rng.gen_range(-2.0f32..2.0));
        let direct2 = c.matmul_t(&d);
        let explicit2 = c.matmul(&d.transpose());
        for i in 0..direct2.rows() {
            for j in 0..direct2.cols() {
                prop_assert!((direct2.get(i, j) - explicit2.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn add_sub_round_trip(rows in small_dim(), cols in small_dim(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let a = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-10.0f32..10.0));
        let b = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-10.0f32..10.0));
        let back = a.add(&b).sub(&b);
        for i in 0..rows {
            for j in 0..cols {
                prop_assert!((back.get(i, j) - a.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn col_sum_equals_manual(rows in 1usize..5, cols in 1usize..5, m in matrix(3, 3).prop_map(|m| m)) {
        // Use fixed 3x3 matrix regardless of rows/cols draw to keep strategy
        // composition simple; rows/cols exercise other shapes below.
        let s = m.col_sum();
        for c in 0..3 {
            let manual: f32 = (0..3).map(|r| m.get(r, c)).sum();
            prop_assert!((s.get(0, c) - manual).abs() < 1e-4);
        }
        let z = Matrix::zeros(rows, cols);
        prop_assert_eq!(z.col_sum(), Matrix::zeros(1, cols));
    }
}

proptest! {
    // Gradient checks are expensive — fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_architectures_pass_gradcheck(
        input_dim in 1usize..5,
        hidden in proptest::collection::vec(1usize..8, 0..3),
        output_dim in 1usize..4,
        act_pick in 0u8..2,
        seed in 0u64..10_000,
    ) {
        // Only smooth activations here: finite differences straddling the
        // (Leaky)ReLU kink legitimately disagree with the one-sided analytic
        // derivative. The kinked activations are gradient-checked at
        // kink-free points in nn::gradcheck's unit tests.
        let act = match act_pick {
            0 => Activation::Tanh,
            _ => Activation::Sigmoid,
        };
        let config = MlpConfig::new(input_dim, &hidden, output_dim)
            .hidden_activation(act)
            .init(Init::XavierUniform);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(&config, &mut rng);
        use rand::Rng as _;
        let x = Matrix::from_fn(2, input_dim, |_, _| rng.gen_range(-1.0f32..1.0));
        let t = Matrix::from_fn(2, output_dim, |_, _| rng.gen_range(-1.0f32..1.0));
        let report = check_mlp_gradients(&mut net, &x, &t, Loss::Mse, 1e-2);
        prop_assert!(report.passes(3e-2), "gradcheck report {:?}", report);
    }

    #[test]
    fn training_never_produces_non_finite_params(seed in 0u64..10_000) {
        let config = MlpConfig::new(3, &[8], 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = TrainableMlp::new(
            &config,
            OptimizerConfig::adam(0.01),
            Loss::Huber(1.0),
            Some(10.0),
            &mut rng,
        );
        use rand::Rng as _;
        for _ in 0..50 {
            let x = Matrix::from_fn(8, 3, |_, _| rng.gen_range(-3.0f32..3.0));
            let y = Matrix::from_fn(8, 2, |_, _| rng.gen_range(-3.0f32..3.0));
            model.step(&x, &y);
        }
        prop_assert!(!model.net.has_non_finite_params());
    }

    #[test]
    fn soft_update_converges_to_source(seed in 0u64..10_000) {
        let config = MlpConfig::new(2, &[4], 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let source = Mlp::new(&config, &mut rng);
        let mut target = Mlp::new(&config, &mut StdRng::seed_from_u64(seed.wrapping_add(1)));
        for _ in 0..200 {
            target.soft_update_from(&source, 0.1);
        }
        let x = Matrix::from_rows(&[&[0.3, -0.3]]);
        let a = source.forward(&x);
        let b = target.forward(&x);
        for c in 0..2 {
            prop_assert!((a.get(0, c) - b.get(0, c)).abs() < 1e-3);
        }
    }
}
