//! # workload — synthetic traffic generation
//!
//! The paper evaluates on request workloads the authors do not publish;
//! this crate synthesizes the standard equivalents (substitution rule from
//! DESIGN.md): Poisson and Markov-modulated arrival processes, diurnal /
//! flash-crowd / ramp load envelopes, uniform / Zipf / hotspot spatial
//! skew, a weighted chain mix, and geometric flow durations — all
//! deterministic from a `u64` seed.
//!
//! # Examples
//!
//! ```
//! use workload::prelude::*;
//! use edgenet::node::NodeId;
//! use rand::SeedableRng;
//!
//! let spec = WorkloadSpec {
//!     pattern: LoadPattern::Diurnal { base: 6.0, amplitude: 4.0, period: 288, phase: 0 },
//!     spatial: SpatialDistribution::Zipf { exponent: 1.0 },
//!     chain_mix: vec![2.0, 1.0, 1.0, 1.0],
//!     mean_duration_slots: 10.0,
//! };
//! let sites: Vec<NodeId> = (0..8).map(NodeId).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let trace = generate_trace(&spec, &sites, 288, &mut rng);
//! assert!(!trace.is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod metro;
pub mod pattern;
pub mod spatial;
pub mod trace;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::arrival::{exponential, poisson, Mmpp2, Mmpp2State};
    pub use crate::metro::{MetroProfile, MetroStream, RushPeak, TimedRequest};
    pub use crate::pattern::LoadPattern;
    pub use crate::spatial::SpatialDistribution;
    pub use crate::trace::{generate_trace, Trace, WorkloadSpec};
}
