//! Metro-scale workload synthesis: city-style arrival curves (time of
//! day, day of week, rush-hour peaks) with seeded spatial hotspots,
//! emitted as a **lazily generated** millisecond-resolution request
//! stream.
//!
//! Unlike [`crate::trace::generate_trace`], which materializes the whole
//! trace up front, [`MetroProfile::stream`] yields [`TimedRequest`]s one
//! at a time and buffers at most a single slot's worth of arrivals — a
//! 10M-request day costs the same memory as a 1k-request smoke run. The
//! stream is a pure function of the profile (including its seed), the
//! site list and the horizon, so two iterations produce identical
//! requests.

use crate::arrival::poisson;
use edgenet::node::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sfc::chain::ChainId;
use sfc::request::{Request, RequestId};

/// One Gaussian rush-hour bump on the time-of-day rate curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RushPeak {
    /// Peak center as a fraction of the day in `[0, 1)` (0.33 ≈ 8am).
    pub center: f64,
    /// Peak width (Gaussian sigma) as a fraction of the day.
    pub width: f64,
    /// Rate multiplier added at the center (1.5 = +150% of base).
    pub gain: f64,
}

/// A request with an explicit millisecond arrival instant — the
/// workload-side twin of the engine's `TimedArrival` (the `mano` crate
/// adapts one into the other; `workload` cannot depend on the engine).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// Arrival instant in milliseconds since simulation start.
    pub at_ms: u64,
    /// The request. `duration_ms` carries the exact holding time;
    /// `duration_slots` holds its slot-quantized ceiling.
    pub request: Request,
}

/// A city-scale workload profile: deterministic time-of-day /
/// day-of-week arrival-rate curves with rush-hour peaks, plus seeded
/// spatial hotspots concentrating demand on a few sites.
///
/// The profile's own `seed` drives both the hotspot choice and the
/// arrival sampling, so a profile value fully determines its stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetroProfile {
    /// Slots per simulated day (the period of the time-of-day curve).
    pub slots_per_day: u64,
    /// Baseline arrival rate (requests per slot) at the overnight trough.
    pub base_rate: f64,
    /// Rush-hour bumps layered on the baseline (typically AM + PM).
    pub peaks: Vec<RushPeak>,
    /// Per-day-of-week rate multipliers, day 0 = the first simulated day.
    pub weekday_factors: [f64; 7],
    /// Number of hotspot sites (clamped to the site count at streaming).
    pub hotspot_count: usize,
    /// Fraction of requests originating at a hotspot, in `[0, 1]`.
    pub hotspot_fraction: f64,
    /// Zipf exponent skewing popularity *among* the hotspots (0 = even).
    pub hotspot_exponent: f64,
    /// Relative chain-type weights (index = `ChainId`), like
    /// [`crate::trace::WorkloadSpec::chain_mix`].
    pub chain_mix: Vec<f64>,
    /// Mean flow holding time in milliseconds (exponential, minimum 1ms).
    pub mean_duration_ms: f64,
    /// Seed for hotspot selection and arrival sampling.
    pub seed: u64,
}

impl MetroProfile {
    /// A representative city profile: quiet nights, a morning and a
    /// stronger evening rush, damped weekends, two hotspots carrying
    /// half the demand, and one-minute mean flows.
    pub fn default_city(seed: u64) -> Self {
        Self {
            slots_per_day: 288,
            base_rate: 4.0,
            peaks: vec![
                RushPeak {
                    center: 0.35,
                    width: 0.05,
                    gain: 1.5,
                },
                RushPeak {
                    center: 0.75,
                    width: 0.06,
                    gain: 2.0,
                },
            ],
            weekday_factors: [1.0, 1.0, 1.0, 1.0, 1.05, 0.7, 0.6],
            hotspot_count: 2,
            hotspot_fraction: 0.5,
            hotspot_exponent: 1.0,
            chain_mix: vec![2.0, 1.0, 1.0, 1.0],
            mean_duration_ms: 60_000.0,
            seed,
        }
    }

    /// Validates the profile.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!(self.slots_per_day >= 1, "a day needs at least one slot");
        assert!(
            self.base_rate >= 0.0 && self.base_rate.is_finite(),
            "base rate must be non-negative"
        );
        for p in &self.peaks {
            assert!(
                (0.0..1.0).contains(&p.center),
                "peak center must be a day fraction in [0, 1)"
            );
            assert!(p.width > 0.0, "peak width must be positive");
            assert!(p.gain >= 0.0, "peak gain must be non-negative");
        }
        assert!(
            self.weekday_factors.iter().all(|&f| f >= 0.0),
            "weekday factors must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.hotspot_fraction),
            "hotspot fraction must be in [0, 1]"
        );
        assert!(
            self.hotspot_exponent >= 0.0,
            "hotspot exponent must be non-negative"
        );
        assert!(!self.chain_mix.is_empty(), "chain mix must not be empty");
        assert!(
            self.chain_mix.iter().all(|&w| w >= 0.0) && self.chain_mix.iter().sum::<f64>() > 0.0,
            "chain mix needs a positive total weight"
        );
        assert!(
            self.mean_duration_ms >= 1.0,
            "mean duration must be at least one millisecond"
        );
    }

    /// Mean arrival rate (requests per slot) at `slot`: the baseline
    /// shaped by the rush-hour peaks of the time-of-day position and the
    /// day-of-week factor. Deterministic; stochasticity comes from the
    /// Poisson sampling around it in the stream.
    pub fn rate_at(&self, slot: u64) -> f64 {
        let day = slot / self.slots_per_day;
        let dow = (day % 7) as usize;
        let frac = (slot % self.slots_per_day) as f64 / self.slots_per_day as f64;
        let mut shape = 1.0;
        for p in &self.peaks {
            // Wrap-around distance on the day circle, so a late-night
            // peak shoulders into the next morning.
            let d = (frac - p.center).abs();
            let d = d.min(1.0 - d);
            shape += p.gain * (-0.5 * (d / p.width).powi(2)).exp();
        }
        (self.base_rate * shape * self.weekday_factors[dow]).max(0.0)
    }

    /// The seeded hotspot site *indices* (into the site list) for a
    /// topology of `site_count` edge sites: a deterministic sample of
    /// `hotspot_count` distinct indices, a pure function of the seed.
    pub fn hotspot_indices(&self, site_count: usize) -> Vec<usize> {
        let want = self.hotspot_count.min(site_count);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0xC2B2_AE35) ^ 0x9E37_79B9);
        let mut pool: Vec<usize> = (0..site_count).collect();
        let mut chosen = Vec::with_capacity(want);
        for _ in 0..want {
            let i = (rng.gen::<f64>() * pool.len() as f64) as usize;
            chosen.push(pool.swap_remove(i.min(pool.len() - 1)));
        }
        chosen
    }

    /// Per-site source probabilities over `sites`: `hotspot_fraction` of
    /// the mass Zipf-distributed over the seeded hotspots, the remainder
    /// uniform over all sites. Normalized to sum 1.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty or the profile is invalid.
    pub fn source_weights(&self, sites: &[NodeId]) -> Vec<f64> {
        self.validate();
        assert!(!sites.is_empty(), "need at least one site");
        let n = sites.len();
        let mut weights = vec![(1.0 - self.hotspot_fraction) / n as f64; n];
        let hotspots = self.hotspot_indices(n);
        if !hotspots.is_empty() {
            let zipf: Vec<f64> = (0..hotspots.len())
                .map(|rank| 1.0 / ((rank + 1) as f64).powf(self.hotspot_exponent))
                .collect();
            let zipf_total: f64 = zipf.iter().sum();
            for (rank, &site) in hotspots.iter().enumerate() {
                weights[site] += self.hotspot_fraction * zipf[rank] / zipf_total;
            }
        } else {
            // No hotspots: spread the reserved mass uniformly too.
            for w in &mut weights {
                *w += self.hotspot_fraction / n as f64;
            }
        }
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        weights
    }

    /// Expected number of requests over `horizon_slots` (the integral of
    /// the rate curve) — sizing helper for benchmarks.
    pub fn expected_requests(&self, horizon_slots: u64) -> f64 {
        (0..horizon_slots).map(|s| self.rate_at(s)).sum()
    }

    /// Opens a lazy arrival stream over `sites` for `horizon_slots` slots
    /// of `slot_ms` milliseconds each. The iterator generates one slot at
    /// a time — it never materializes the full trace — and is
    /// deterministic: the same profile/sites/horizon always produces the
    /// identical request sequence, sorted by arrival instant with dense
    /// ids from 0.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid, `sites` is empty or
    /// `slot_ms == 0`.
    pub fn stream(&self, sites: &[NodeId], horizon_slots: u64, slot_ms: u64) -> MetroStream {
        self.validate();
        assert!(!sites.is_empty(), "need at least one site");
        assert!(slot_ms >= 1, "slot duration must be at least one ms");
        let weights = self.source_weights(sites);
        MetroStream {
            profile: self.clone(),
            sites: sites.to_vec(),
            weights,
            horizon_slots,
            slot_ms,
            rng: StdRng::seed_from_u64(self.seed.wrapping_mul(0x2545_F491) ^ 0x5DEE_CE66),
            slot: 0,
            next_id: 0,
            buffer: Vec::new(),
        }
    }

    fn sample_chain(&self, rng: &mut StdRng) -> ChainId {
        let total: f64 = self.chain_mix.iter().sum();
        let mut u: f64 = rng.gen::<f64>() * total;
        for (i, w) in self.chain_mix.iter().enumerate() {
            if u < *w {
                return ChainId(i);
            }
            u -= w;
        }
        ChainId(self.chain_mix.len() - 1)
    }

    fn sample_duration_ms(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let d = -u.ln() * self.mean_duration_ms;
        (d as u64).clamp(1, 86_400_000 * 7) // cap at a week
    }
}

/// The lazy arrival stream a [`MetroProfile`] opens: yields
/// [`TimedRequest`]s in non-decreasing `at_ms` order, holding only the
/// current slot's arrivals in memory (O(per-slot arrivals), O(1) in the
/// horizon).
#[derive(Debug, Clone)]
pub struct MetroStream {
    profile: MetroProfile,
    sites: Vec<NodeId>,
    weights: Vec<f64>,
    horizon_slots: u64,
    slot_ms: u64,
    rng: StdRng,
    slot: u64,
    next_id: u64,
    /// Current slot's arrivals, reversed so `pop` yields time order.
    buffer: Vec<TimedRequest>,
}

impl MetroStream {
    /// Requests emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_id - self.buffer.len() as u64
    }

    fn sample_source(&mut self) -> NodeId {
        let mut u: f64 = self.rng.gen();
        for (i, w) in self.weights.iter().enumerate() {
            if u < *w {
                return self.sites[i];
            }
            u -= w;
        }
        *self.sites.last().expect("non-empty")
    }

    /// Generates the next non-empty slot into the buffer (newest first).
    fn refill(&mut self) {
        while self.buffer.is_empty() && self.slot < self.horizon_slots {
            let slot = self.slot;
            self.slot += 1;
            let count = poisson(self.profile.rate_at(slot), &mut self.rng);
            if count == 0 {
                continue;
            }
            let slot_start = slot * self.slot_ms;
            // Arrival offsets within the slot, sorted so the stream stays
            // time-ordered; ids are assigned after sorting so they are
            // dense AND ascending in time.
            let mut offsets: Vec<u64> = (0..count)
                .map(|_| {
                    ((self.rng.gen::<f64>() * self.slot_ms as f64) as u64).min(self.slot_ms - 1)
                })
                .collect();
            offsets.sort_unstable();
            for at_ms in offsets.into_iter().map(|o| slot_start + o) {
                let source = self.sample_source();
                let chain = self.profile.sample_chain(&mut self.rng);
                let duration_ms = self.profile.sample_duration_ms(&mut self.rng);
                let duration_slots = duration_ms
                    .div_ceil(self.slot_ms)
                    .max(1)
                    .min(u32::MAX as u64);
                let request = Request::new(
                    RequestId(self.next_id),
                    chain,
                    source,
                    slot,
                    duration_slots as u32,
                )
                .with_duration_ms(duration_ms);
                self.next_id += 1;
                self.buffer.push(TimedRequest { at_ms, request });
            }
            self.buffer.reverse(); // pop() from the back = earliest first
        }
    }
}

impl Iterator for MetroStream {
    type Item = TimedRequest;

    fn next(&mut self) -> Option<TimedRequest> {
        if self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn profile() -> MetroProfile {
        MetroProfile::default_city(7)
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let s = sites(6);
        let a: Vec<TimedRequest> = profile().stream(&s, 600, 5_000).collect();
        let b: Vec<TimedRequest> = profile().stream(&s, 600, 5_000).collect();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let mut other = profile();
        other.seed = 8;
        let c: Vec<TimedRequest> = other.stream(&s, 600, 5_000).collect();
        assert_ne!(a, c, "a different seed must realize a different stream");
    }

    #[test]
    fn stream_is_time_ordered_with_dense_ids() {
        let s = sites(4);
        let reqs: Vec<TimedRequest> = profile().stream(&s, 600, 5_000).collect();
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.request.id.0, i as u64, "ids dense and ascending");
            assert!(r.at_ms < 600 * 5_000, "arrival inside the horizon");
            assert_eq!(
                r.request.arrival_slot,
                r.at_ms / 5_000,
                "arrival_slot matches the instant"
            );
            assert!(r.request.duration_ms.is_some(), "ms lifetime carried");
        }
        assert!(
            reqs.windows(2).all(|w| w[0].at_ms <= w[1].at_ms),
            "stream sorted by arrival instant"
        );
    }

    #[test]
    fn rush_hour_peaks_raise_the_rate() {
        let p = profile();
        let trough = p.rate_at(0); // midnight of day 0
        let am_peak = p.rate_at((0.35 * p.slots_per_day as f64) as u64);
        let pm_peak = p.rate_at((0.75 * p.slots_per_day as f64) as u64);
        assert!(
            am_peak > 2.0 * trough,
            "AM rush {am_peak} vs trough {trough}"
        );
        assert!(pm_peak > am_peak, "PM rush is the stronger peak");
    }

    #[test]
    fn weekends_are_damped() {
        let p = profile();
        let mid_monday = p.slots_per_day / 2;
        let mid_sunday = 6 * p.slots_per_day + p.slots_per_day / 2;
        assert!(p.rate_at(mid_sunday) < 0.8 * p.rate_at(mid_monday));
    }

    #[test]
    fn hotspots_concentrate_demand() {
        let s = sites(8);
        let p = profile();
        let hot: Vec<usize> = p.hotspot_indices(s.len());
        assert_eq!(hot.len(), 2);
        let mut counts = vec![0usize; s.len()];
        let total: usize = p
            .stream(&s, 2_000, 5_000)
            .map(|r| counts[r.request.source.0] += 1)
            .count();
        let hot_share: usize = hot.iter().map(|&i| counts[i]).sum();
        let frac = hot_share as f64 / total as f64;
        // 50% targeted at 2 of 8 sites plus their uniform share (~12.5%).
        assert!(
            frac > 0.5 && frac < 0.75,
            "hotspot share {frac} off target (counts {counts:?}, hot {hot:?})"
        );
    }

    #[test]
    fn durations_match_the_requested_mean() {
        let s = sites(4);
        let durations: Vec<u64> = profile()
            .stream(&s, 2_000, 5_000)
            .map(|r| r.request.duration_ms.expect("set"))
            .collect();
        let mean = durations.iter().sum::<u64>() as f64 / durations.len() as f64;
        assert!(
            (mean - 60_000.0).abs() < 4_000.0,
            "mean duration {mean} vs 60000"
        );
        for r in profile().stream(&s, 200, 5_000) {
            let ms = r.request.duration_ms.unwrap();
            assert_eq!(
                r.request.duration_slots as u64,
                ms.div_ceil(5_000).max(1),
                "duration_slots is the slot-quantized ceiling"
            );
        }
    }

    #[test]
    fn empirical_rate_tracks_the_curve() {
        let p = profile();
        let s = sites(4);
        let horizon = 4 * p.slots_per_day;
        let n = p.stream(&s, horizon, 5_000).count() as f64;
        let expected = p.expected_requests(horizon);
        assert!(
            (n - expected).abs() < 0.05 * expected,
            "drew {n} vs expected {expected}"
        );
    }

    #[test]
    fn hotspot_count_clamps_to_site_count() {
        let mut p = profile();
        p.hotspot_count = 10;
        let w = p.source_weights(&sites(3));
        assert_eq!(p.hotspot_indices(3).len(), 3);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "hotspot fraction")]
    fn invalid_fraction_panics() {
        let mut p = profile();
        p.hotspot_fraction = 1.5;
        p.validate();
    }
}
