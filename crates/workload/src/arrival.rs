//! Stochastic arrival processes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples a Poisson-distributed count with mean `lambda`.
///
/// Uses Knuth's multiplication method for small means and a normal
/// approximation above 50 (adequate for per-slot arrival counts).
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u32 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        // Normal approximation with continuity correction.
        let z: f64 = sample_standard_normal(rng);
        let v = lambda + lambda.sqrt() * z + 0.5;
        return v.max(0.0) as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerically impossible for lambda <= 50; safety net
        }
    }
}

/// Samples an exponential inter-arrival time with rate `lambda` (mean
/// `1/lambda`).
///
/// # Panics
///
/// Panics if `lambda <= 0`.
pub fn exponential<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> f64 {
    assert!(lambda > 0.0, "rate must be positive, got {lambda}");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / lambda
}

fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A two-state Markov-modulated Poisson process: the arrival rate switches
/// between a low and a high regime with geometric sojourn times. Models
/// bursty traffic that a plain Poisson process cannot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mmpp2 {
    /// Arrival rate in the low state (per slot).
    pub low_rate: f64,
    /// Arrival rate in the high state (per slot).
    pub high_rate: f64,
    /// Probability of switching low → high each slot.
    pub p_low_to_high: f64,
    /// Probability of switching high → low each slot.
    pub p_high_to_low: f64,
}

impl Mmpp2 {
    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid rates or probabilities.
    pub fn validate(&self) {
        assert!(
            self.low_rate >= 0.0 && self.high_rate >= self.low_rate,
            "need 0 <= low <= high rate"
        );
        assert!(
            (0.0..=1.0).contains(&self.p_low_to_high),
            "p_low_to_high must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.p_high_to_low),
            "p_high_to_low must be a probability"
        );
    }

    /// Long-run mean arrival rate.
    pub fn mean_rate(&self) -> f64 {
        let denom = self.p_low_to_high + self.p_high_to_low;
        if denom == 0.0 {
            return self.low_rate; // absorbing start state (low)
        }
        let pi_high = self.p_low_to_high / denom;
        self.low_rate * (1.0 - pi_high) + self.high_rate * pi_high
    }
}

/// Iterator state for an [`Mmpp2`] process.
#[derive(Debug, Clone)]
pub struct Mmpp2State {
    params: Mmpp2,
    in_high: bool,
}

impl Mmpp2State {
    /// Starts in the low state.
    pub fn new(params: Mmpp2) -> Self {
        params.validate();
        Self {
            params,
            in_high: false,
        }
    }

    /// Whether the process is currently in the high regime.
    pub fn is_high(&self) -> bool {
        self.in_high
    }

    /// Advances one slot: possibly switches regime, then samples a count.
    pub fn next_count<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u32 {
        let flip: f64 = rng.gen();
        if self.in_high {
            if flip < self.params.p_high_to_low {
                self.in_high = false;
            }
        } else if flip < self.params.p_low_to_high {
            self.in_high = true;
        }
        let rate = if self.in_high {
            self.params.high_rate
        } else {
            self.params.low_rate
        };
        poisson(rate, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(lambda, &mut rng) as u64).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_variance_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        let lambda = 5.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| poisson(lambda, &mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - lambda).abs() < 0.5, "variance {var}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let rate = 2.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(rate, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        let p = Mmpp2 {
            low_rate: 1.0,
            high_rate: 9.0,
            p_low_to_high: 0.1,
            p_high_to_low: 0.3,
        };
        // pi_high = 0.1/0.4 = 0.25 → mean = 1*0.75 + 9*0.25 = 3.0.
        assert!((p.mean_rate() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mmpp_empirical_mean_matches() {
        let p = Mmpp2 {
            low_rate: 1.0,
            high_rate: 9.0,
            p_low_to_high: 0.1,
            p_high_to_low: 0.3,
        };
        let mut state = Mmpp2State::new(p);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| state.next_count(&mut rng) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mmpp mean {mean}");
    }

    #[test]
    fn mmpp_visits_both_states() {
        let p = Mmpp2 {
            low_rate: 0.0,
            high_rate: 5.0,
            p_low_to_high: 0.2,
            p_high_to_low: 0.2,
        };
        let mut state = Mmpp2State::new(p);
        let mut rng = StdRng::seed_from_u64(6);
        let mut highs = 0;
        for _ in 0..1000 {
            state.next_count(&mut rng);
            if state.is_high() {
                highs += 1;
            }
        }
        assert!(highs > 200 && highs < 800, "high slots {highs}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = poisson(-1.0, &mut rng);
    }
}
