//! Time-varying load patterns: the deterministic rate envelope that an
//! arrival process is modulated by.

use serde::{Deserialize, Serialize};

/// A deterministic mapping from slot to mean arrival rate (requests per
/// slot). Stochasticity comes from the arrival process sampling around it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadPattern {
    /// Constant rate.
    Constant {
        /// Requests per slot.
        rate: f64,
    },
    /// Sinusoidal day/night cycle:
    /// `base + amplitude * sin(2π (slot + phase) / period)`, floored at 0.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Cycle length in slots.
        period: u64,
        /// Phase offset in slots.
        phase: u64,
    },
    /// A baseline rate with a transient spike (flash crowd).
    FlashCrowd {
        /// Rate outside the spike.
        base: f64,
        /// Rate during the spike.
        spike_rate: f64,
        /// First slot of the spike.
        spike_start: u64,
        /// Spike length in slots.
        spike_duration: u64,
    },
    /// Piecewise-linear ramp from `start_rate` to `end_rate` over
    /// `ramp_slots`, then constant at `end_rate`.
    Ramp {
        /// Rate at slot 0.
        start_rate: f64,
        /// Rate after the ramp.
        end_rate: f64,
        /// Ramp length in slots.
        ramp_slots: u64,
    },
}

impl LoadPattern {
    /// Mean arrival rate at `slot` (requests per slot, ≥ 0).
    pub fn rate_at(&self, slot: u64) -> f64 {
        match *self {
            LoadPattern::Constant { rate } => rate.max(0.0),
            LoadPattern::Diurnal {
                base,
                amplitude,
                period,
                phase,
            } => {
                if period == 0 {
                    return base.max(0.0);
                }
                let angle =
                    2.0 * std::f64::consts::PI * ((slot + phase) % period) as f64 / period as f64;
                (base + amplitude * angle.sin()).max(0.0)
            }
            LoadPattern::FlashCrowd {
                base,
                spike_rate,
                spike_start,
                spike_duration,
            } => {
                if slot >= spike_start && slot < spike_start + spike_duration {
                    spike_rate.max(0.0)
                } else {
                    base.max(0.0)
                }
            }
            LoadPattern::Ramp {
                start_rate,
                end_rate,
                ramp_slots,
            } => {
                if ramp_slots == 0 || slot >= ramp_slots {
                    end_rate.max(0.0)
                } else {
                    let frac = slot as f64 / ramp_slots as f64;
                    (start_rate + (end_rate - start_rate) * frac).max(0.0)
                }
            }
        }
    }

    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics on negative rates or a diurnal amplitude exceeding the base
    /// (which would clip the trough to zero and distort the mean).
    pub fn validate(&self) {
        match *self {
            LoadPattern::Constant { rate } => assert!(rate >= 0.0, "rate must be non-negative"),
            LoadPattern::Diurnal {
                base, amplitude, ..
            } => {
                assert!(
                    base >= 0.0 && amplitude >= 0.0,
                    "rates must be non-negative"
                );
                assert!(amplitude <= base, "diurnal amplitude must not exceed base");
            }
            LoadPattern::FlashCrowd {
                base, spike_rate, ..
            } => {
                assert!(
                    base >= 0.0 && spike_rate >= 0.0,
                    "rates must be non-negative"
                );
            }
            LoadPattern::Ramp {
                start_rate,
                end_rate,
                ..
            } => {
                assert!(
                    start_rate >= 0.0 && end_rate >= 0.0,
                    "rates must be non-negative"
                );
            }
        }
    }

    /// Mean rate over `[0, horizon)` slots (numeric average).
    pub fn mean_rate(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        (0..horizon).map(|s| self.rate_at(s)).sum::<f64>() / horizon as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let p = LoadPattern::Constant { rate: 3.5 };
        assert_eq!(p.rate_at(0), 3.5);
        assert_eq!(p.rate_at(1_000_000), 3.5);
    }

    #[test]
    fn diurnal_oscillates_around_base() {
        let p = LoadPattern::Diurnal {
            base: 10.0,
            amplitude: 5.0,
            period: 24,
            phase: 0,
        };
        p.validate();
        let peak = p.rate_at(6); // sin peaks at quarter period
        let trough = p.rate_at(18);
        assert!((peak - 15.0).abs() < 0.1, "peak {peak}");
        assert!((trough - 5.0).abs() < 0.1, "trough {trough}");
        assert!((p.mean_rate(24) - 10.0).abs() < 0.2);
    }

    #[test]
    fn diurnal_is_periodic() {
        let p = LoadPattern::Diurnal {
            base: 4.0,
            amplitude: 2.0,
            period: 100,
            phase: 7,
        };
        for s in [0u64, 13, 57] {
            assert!((p.rate_at(s) - p.rate_at(s + 100)).abs() < 1e-9);
        }
    }

    #[test]
    fn flash_crowd_window() {
        let p = LoadPattern::FlashCrowd {
            base: 2.0,
            spike_rate: 20.0,
            spike_start: 50,
            spike_duration: 10,
        };
        assert_eq!(p.rate_at(49), 2.0);
        assert_eq!(p.rate_at(50), 20.0);
        assert_eq!(p.rate_at(59), 20.0);
        assert_eq!(p.rate_at(60), 2.0);
    }

    #[test]
    fn ramp_interpolates() {
        let p = LoadPattern::Ramp {
            start_rate: 0.0,
            end_rate: 10.0,
            ramp_slots: 10,
        };
        assert_eq!(p.rate_at(0), 0.0);
        assert!((p.rate_at(5) - 5.0).abs() < 1e-9);
        assert_eq!(p.rate_at(10), 10.0);
        assert_eq!(p.rate_at(100), 10.0);
    }

    #[test]
    fn rates_never_negative() {
        let p = LoadPattern::Diurnal {
            base: 1.0,
            amplitude: 1.0,
            period: 10,
            phase: 0,
        };
        for s in 0..20 {
            assert!(p.rate_at(s) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "amplitude must not exceed base")]
    fn oversized_amplitude_rejected() {
        LoadPattern::Diurnal {
            base: 1.0,
            amplitude: 2.0,
            period: 10,
            phase: 0,
        }
        .validate();
    }
}
