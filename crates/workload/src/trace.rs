//! Request-trace synthesis: combines a load pattern, a spatial
//! distribution, a chain mix and a duration distribution into a
//! reproducible stream of [`Request`]s.

use crate::arrival::poisson;
use crate::pattern::LoadPattern;
use crate::spatial::SpatialDistribution;
use edgenet::node::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfc::chain::ChainId;
use sfc::request::{Request, RequestId};

/// Workload specification: everything needed to synthesize a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Arrival-rate envelope (requests per slot, across all sites).
    pub pattern: LoadPattern,
    /// Where requests originate.
    pub spatial: SpatialDistribution,
    /// Relative weight of each chain type (index = `ChainId`); need not be
    /// normalized.
    pub chain_mix: Vec<f64>,
    /// Mean flow duration in slots (geometric distribution, minimum 1).
    pub mean_duration_slots: f64,
}

impl WorkloadSpec {
    /// A uniform-mix Poisson workload at `rate` requests/slot over
    /// `chain_count` chain types with the given mean duration.
    pub fn poisson(rate: f64, chain_count: usize, mean_duration_slots: f64) -> Self {
        Self {
            pattern: LoadPattern::Constant { rate },
            spatial: SpatialDistribution::Uniform,
            chain_mix: vec![1.0; chain_count],
            mean_duration_slots,
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if the chain mix is empty/non-positive or the mean duration
    /// is below 1.
    pub fn validate(&self) {
        self.pattern.validate();
        assert!(!self.chain_mix.is_empty(), "chain mix must not be empty");
        assert!(
            self.chain_mix.iter().all(|&w| w >= 0.0),
            "chain weights must be non-negative"
        );
        assert!(
            self.chain_mix.iter().sum::<f64>() > 0.0,
            "at least one chain weight must be positive"
        );
        assert!(
            self.mean_duration_slots >= 1.0,
            "mean duration must be at least one slot"
        );
    }

    fn sample_chain<R: Rng + ?Sized>(&self, rng: &mut R) -> ChainId {
        let total: f64 = self.chain_mix.iter().sum();
        let mut u: f64 = rng.gen::<f64>() * total;
        for (i, w) in self.chain_mix.iter().enumerate() {
            if u < *w {
                return ChainId(i);
            }
            u -= w;
        }
        ChainId(self.chain_mix.len() - 1)
    }

    fn sample_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        // Geometric with mean m: success probability 1/m, support {1, 2, …}.
        let p = (1.0 / self.mean_duration_slots).clamp(f64::MIN_POSITIVE, 1.0);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let d = (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).floor() as u32 + 1;
        d.min(1_000_000)
    }
}

/// A synthesized trace: requests sorted by arrival slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// All requests in arrival order.
    pub requests: Vec<Request>,
    /// Horizon the trace was generated for.
    pub horizon_slots: u64,
}

impl Trace {
    /// Requests arriving exactly at `slot`.
    pub fn arrivals_at(&self, slot: u64) -> impl Iterator<Item = &Request> {
        self.requests.iter().filter(move |r| r.arrival_slot == slot)
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Empirical mean arrival rate (requests per slot).
    pub fn mean_rate(&self) -> f64 {
        if self.horizon_slots == 0 {
            0.0
        } else {
            self.requests.len() as f64 / self.horizon_slots as f64
        }
    }
}

/// Generates a trace of `horizon_slots` slots over the given edge sites.
///
/// Deterministic for a fixed spec, sites, horizon and RNG state.
///
/// # Panics
///
/// Panics if the spec is invalid or `sites` is empty.
pub fn generate_trace<R: Rng + ?Sized>(
    spec: &WorkloadSpec,
    sites: &[NodeId],
    horizon_slots: u64,
    rng: &mut R,
) -> Trace {
    spec.validate();
    assert!(!sites.is_empty(), "need at least one site");
    let mut requests = Vec::new();
    let mut next_id = 0u64;
    for slot in 0..horizon_slots {
        let rate = spec.pattern.rate_at(slot);
        let count = poisson(rate, rng);
        for _ in 0..count {
            let source = spec.spatial.sample(sites, rng);
            let chain = spec.sample_chain(rng);
            let duration = spec.sample_duration(rng);
            requests.push(Request::new(
                RequestId(next_id),
                chain,
                source,
                slot,
                duration,
            ));
            next_id += 1;
        }
    }
    Trace {
        requests,
        horizon_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sites() -> Vec<NodeId> {
        (0..4).map(NodeId).collect()
    }

    #[test]
    fn trace_is_sorted_and_rate_matches() {
        let spec = WorkloadSpec::poisson(5.0, 3, 4.0);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = generate_trace(&spec, &sites(), 2_000, &mut rng);
        assert!(trace
            .requests
            .windows(2)
            .all(|w| w[0].arrival_slot <= w[1].arrival_slot));
        assert!(
            (trace.mean_rate() - 5.0).abs() < 0.25,
            "rate {}",
            trace.mean_rate()
        );
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let spec = WorkloadSpec::poisson(3.0, 2, 5.0);
        let a = generate_trace(&spec, &sites(), 100, &mut StdRng::seed_from_u64(9));
        let b = generate_trace(&spec, &sites(), 100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn request_ids_are_unique_and_dense() {
        let spec = WorkloadSpec::poisson(4.0, 2, 3.0);
        let trace = generate_trace(&spec, &sites(), 200, &mut StdRng::seed_from_u64(3));
        for (i, r) in trace.requests.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
    }

    #[test]
    fn durations_have_requested_mean() {
        let spec = WorkloadSpec::poisson(10.0, 1, 8.0);
        let trace = generate_trace(&spec, &sites(), 3_000, &mut StdRng::seed_from_u64(4));
        let mean: f64 = trace
            .requests
            .iter()
            .map(|r| r.duration_slots as f64)
            .sum::<f64>()
            / trace.len() as f64;
        assert!((mean - 8.0).abs() < 0.4, "mean duration {mean}");
        assert!(trace.requests.iter().all(|r| r.duration_slots >= 1));
    }

    #[test]
    fn chain_mix_weights_respected() {
        let spec = WorkloadSpec {
            chain_mix: vec![3.0, 1.0],
            ..WorkloadSpec::poisson(10.0, 2, 2.0)
        };
        let trace = generate_trace(&spec, &sites(), 3_000, &mut StdRng::seed_from_u64(5));
        let c0 = trace
            .requests
            .iter()
            .filter(|r| r.chain == ChainId(0))
            .count() as f64;
        let frac = c0 / trace.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "chain-0 fraction {frac}");
    }

    #[test]
    fn arrivals_at_filters_by_slot() {
        let spec = WorkloadSpec::poisson(2.0, 1, 2.0);
        let trace = generate_trace(&spec, &sites(), 50, &mut StdRng::seed_from_u64(6));
        let total: usize = (0..50).map(|s| trace.arrivals_at(s).count()).sum();
        assert_eq!(total, trace.len());
    }

    #[test]
    fn flash_crowd_spikes_in_window() {
        let spec = WorkloadSpec {
            pattern: LoadPattern::FlashCrowd {
                base: 1.0,
                spike_rate: 30.0,
                spike_start: 100,
                spike_duration: 50,
            },
            ..WorkloadSpec::poisson(0.0, 1, 2.0)
        };
        let trace = generate_trace(&spec, &sites(), 300, &mut StdRng::seed_from_u64(7));
        let in_spike = trace
            .requests
            .iter()
            .filter(|r| (100..150).contains(&r.arrival_slot))
            .count();
        let outside = trace.len() - in_spike;
        assert!(
            in_spike as f64 > outside as f64 * 2.0,
            "spike {in_spike} vs outside {outside}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_sites_panics() {
        let spec = WorkloadSpec::poisson(1.0, 1, 2.0);
        let _ = generate_trace(&spec, &[], 10, &mut StdRng::seed_from_u64(0));
    }
}
