//! Spatial distribution of request sources over edge nodes.

use edgenet::node::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How request sources distribute over the edge sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum SpatialDistribution {
    /// Every edge site equally likely.
    #[default]
    Uniform,
    /// Zipf-distributed popularity with exponent `s` over sites in id
    /// order (site 0 most popular). `s = 0` degenerates to uniform.
    Zipf {
        /// Skew exponent (≥ 0); ~0.8–1.2 models metro popularity well.
        exponent: f64,
    },
    /// One hotspot site receives `hot_fraction` of requests; the rest
    /// spread uniformly over the other sites.
    Hotspot {
        /// Index *into the edge-node list* of the hot site.
        hot_index: usize,
        /// Fraction of requests originating at the hot site, in `[0,1]`.
        hot_fraction: f64,
    },
}

impl SpatialDistribution {
    /// Per-site probability weights over `sites` (normalized to sum 1).
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty, a hotspot index is out of range, or
    /// parameters are invalid.
    pub fn weights(&self, sites: &[NodeId]) -> Vec<f64> {
        assert!(!sites.is_empty(), "need at least one site");
        let n = sites.len();
        let raw: Vec<f64> = match *self {
            SpatialDistribution::Uniform => vec![1.0; n],
            SpatialDistribution::Zipf { exponent } => {
                assert!(exponent >= 0.0, "zipf exponent must be non-negative");
                (0..n)
                    .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
                    .collect()
            }
            SpatialDistribution::Hotspot {
                hot_index,
                hot_fraction,
            } => {
                assert!(
                    hot_index < n,
                    "hotspot index {hot_index} out of range for {n} sites"
                );
                assert!(
                    (0.0..=1.0).contains(&hot_fraction),
                    "hot fraction must be in [0,1]"
                );
                let rest = if n > 1 {
                    (1.0 - hot_fraction) / (n - 1) as f64
                } else {
                    0.0
                };
                (0..n)
                    .map(|i| {
                        if i == hot_index {
                            hot_fraction.max(f64::MIN_POSITIVE)
                        } else {
                            rest
                        }
                    })
                    .collect()
            }
        };
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }

    /// Samples a source site.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SpatialDistribution::weights`].
    pub fn sample<R: Rng + ?Sized>(&self, sites: &[NodeId], rng: &mut R) -> NodeId {
        let weights = self.weights(sites);
        let mut u: f64 = rng.gen();
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return sites[i];
            }
            u -= w;
        }
        *sites.last().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sites(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn empirical(dist: &SpatialDistribution, n: usize, draws: usize, seed: u64) -> Vec<f64> {
        let s = sites(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[dist.sample(&s, &mut rng).0] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / draws as f64)
            .collect()
    }

    #[test]
    fn uniform_weights_are_equal() {
        let w = SpatialDistribution::Uniform.weights(&sites(4));
        assert!(w.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let w = SpatialDistribution::Zipf { exponent: 0.0 }.weights(&sites(5));
        assert!(w.iter().all(|&x| (x - 0.2).abs() < 1e-12));
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let w = SpatialDistribution::Zipf { exponent: 1.0 }.weights(&sites(6));
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hotspot_gets_requested_fraction() {
        let freq = empirical(
            &SpatialDistribution::Hotspot {
                hot_index: 2,
                hot_fraction: 0.7,
            },
            4,
            20_000,
            42,
        );
        assert!((freq[2] - 0.7).abs() < 0.02, "hot freq {}", freq[2]);
        assert!((freq[0] - 0.1).abs() < 0.02);
    }

    #[test]
    fn sampling_matches_weights() {
        let dist = SpatialDistribution::Zipf { exponent: 1.0 };
        let w = dist.weights(&sites(3));
        let freq = empirical(&dist, 3, 30_000, 7);
        for i in 0..3 {
            assert!(
                (freq[i] - w[i]).abs() < 0.02,
                "site {i}: {} vs {}",
                freq[i],
                w[i]
            );
        }
    }

    #[test]
    fn single_site_always_selected() {
        let s = sites(1);
        let mut rng = StdRng::seed_from_u64(0);
        for dist in [
            SpatialDistribution::Uniform,
            SpatialDistribution::Zipf { exponent: 1.0 },
            SpatialDistribution::Hotspot {
                hot_index: 0,
                hot_fraction: 1.0,
            },
        ] {
            assert_eq!(dist.sample(&s, &mut rng), NodeId(0));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hotspot_out_of_range_panics() {
        let _ = SpatialDistribution::Hotspot {
            hot_index: 5,
            hot_fraction: 0.5,
        }
        .weights(&sites(2));
    }
}
