//! # exper — the parallel multi-seed experiment engine
//!
//! The paper's evaluation is a grid of (scenario × policy × seed) cells.
//! Each simulation run stays sequential and deterministic — a pure
//! function of (scenario, seed) — so the engine scales the evaluation the
//! only way that preserves reproducibility: Monte Carlo fan-out of whole
//! runs across worker threads.
//!
//! * [`pool`] — the std-only fork-join pool (`EXPER_THREADS` override,
//!   shared-counter work stealing, index-ordered results, worker-local
//!   state via [`pool::run_indexed_with`]).
//! * [`grid`] — declarative [`grid::ExperimentGrid`]s with deterministic
//!   multi-seed aggregation and [`mano::report::BenchReport`] output.
//! * [`eval`] — [`eval::parallel_eval`], the greedy-evaluation fan-out
//!   that clones one frozen policy per worker thread (one warm inference
//!   workspace each) instead of per cell.
//! * [`manifest`] — declarative [`manifest::ScenarioManifest`]s (JSON or
//!   code) that expand deterministically into grids: the single
//!   definition path shared by figure binaries, the sweep registry and
//!   the search driver.
//! * [`search`] — composite [`search::HealthScore`]s over
//!   `SUMMARY_METRICS` and the successive-halving
//!   [`search::SearchDriver`] that hunts a manifest's frontier on a
//!   fraction of the exhaustive (cell × seed) budget.
//!
//! # Determinism guarantee
//!
//! `report.cells` and `report.aggregates` of a grid run are bit-identical
//! for every thread count (cells carry their grid index; reduction sorts
//! by index, and per-cell wall-clock decision timing is scrubbed unless
//! explicitly kept). Only `wall_clock_secs` / `throughput_slots_per_sec`
//! / `threads` — measurement metadata — vary between runs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod grid;
pub mod manifest;
pub mod pool;
pub mod search;

/// Convenient glob-import of the engine's surface.
pub mod prelude {
    pub use crate::eval::{
        cells_for_seeds, parallel_eval, parallel_eval_semantics, report_from_cells, EvalCell,
    };
    pub use crate::grid::{
        cells_csv, merge_reports, sweep_csv, ExperimentGrid, GridScenario, PolicyFactory,
    };
    pub use crate::manifest::{
        baseline_factory, baseline_names, roster, synthetic_chains, Axis, EventSpec, ExpandedPoint,
        Expansion, FastScaled, ManifestBase, PolicySpec, ResolvedPolicy, RewardAxes,
        ScenarioManifest, SearchParams, SweepSpec, TopologyFamily, TrainRequest,
        MANIFEST_SCHEMA_VERSION,
    };
    pub use crate::pool::{parallel_map, run_indexed, run_indexed_with, thread_count, THREADS_ENV};
    pub use crate::search::{
        HealthScore, SearchDriver, SearchOutcome, SearchedCandidate, SearchedPoint,
    };
}
