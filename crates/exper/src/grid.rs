//! Declarative experiment grids: a (scenario × policy-factory × seed)
//! cross-product whose cells run in parallel and reduce deterministically.
//!
//! Every cell carries its grid index; workers report `(index, result)`
//! pairs that land in index-addressed slots, and aggregation walks the
//! slots in index order. The reduction therefore never observes execution
//! interleaving, which is what makes a parallel run bit-identical to
//! `EXPER_THREADS=1`.

use crate::pool::{run_indexed, thread_count};
use mano::prelude::*;
use mano::report::group_aggregates;
use sfc::chain::ChainCatalog;
use sfc::vnf::VnfCatalog;
use std::time::Instant;

/// Builds a fresh policy instance for one grid cell. Cells never share
/// policy state — stateful policies (the DRL manager) are cloned into
/// each cell by their factory, so cells stay independent and the grid can
/// run them in any order on any thread.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn PlacementPolicy> + Send + Sync>;

/// One labelled grid row: a scenario plus the sweep coordinate it
/// represents (arrival rate, site count, chain length, …).
pub struct GridScenario {
    /// Stable label recorded in cells (`λ=8`, `sites=12`, …).
    pub label: String,
    /// Numeric sweep coordinate for CSV/plot axes.
    pub x: f64,
    /// The scenario itself.
    pub scenario: Scenario,
}

/// A declarative (scenario × policy × seed) experiment.
///
/// ```
/// use exper::prelude::*;
/// use mano::prelude::*;
///
/// let report = ExperimentGrid::new("doc")
///     .scenario("small", 1.0, Scenario::small_test())
///     .policy("first-fit", || Box::new(FirstFitPolicy))
///     .policy("greedy-latency", || Box::new(GreedyLatencyPolicy))
///     .seeds(&[1, 2])
///     .threads(2)
///     .run();
/// assert_eq!(report.cells.len(), 4);
/// assert_eq!(report.aggregates.len(), 2);
/// ```
pub struct ExperimentGrid {
    name: String,
    scenarios: Vec<GridScenario>,
    policies: Vec<(String, PolicyFactory)>,
    seeds: Vec<u64>,
    reward: RewardConfig,
    threads: Option<usize>,
    scrub_decision_time: bool,
    catalogs: Option<(VnfCatalog, ChainCatalog)>,
    fingerprint: String,
}

impl ExperimentGrid {
    /// Starts an empty grid named `name` (becomes `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            scenarios: Vec::new(),
            policies: Vec::new(),
            seeds: vec![0],
            reward: RewardConfig::default(),
            threads: None,
            scrub_decision_time: true,
            catalogs: None,
            fingerprint: String::new(),
        }
    }

    /// Adds a scenario row with its sweep coordinate.
    pub fn scenario(mut self, label: impl Into<String>, x: f64, scenario: Scenario) -> Self {
        self.scenarios.push(GridScenario {
            label: label.into(),
            x,
            scenario,
        });
        self
    }

    /// Adds a policy column built per cell by `factory`.
    pub fn policy<F, P>(mut self, label: impl Into<String>, factory: F) -> Self
    where
        F: Fn() -> Box<P> + Send + Sync + 'static,
        P: PlacementPolicy + 'static,
    {
        self.policies.push((
            label.into(),
            Box::new(move || factory() as Box<dyn PlacementPolicy>),
        ));
        self
    }

    /// Adds a policy column from an already-boxed factory (for trait
    /// objects whose concrete type varies at runtime).
    pub fn policy_boxed(mut self, label: impl Into<String>, factory: PolicyFactory) -> Self {
        self.policies.push((label.into(), factory));
        self
    }

    /// Appends a batch of labelled boxed factories (the common "DRL plus
    /// all baselines" shape).
    pub fn policies(mut self, policies: Vec<(String, PolicyFactory)>) -> Self {
        for (label, factory) in policies {
            self.policies.push((label, factory));
        }
        self
    }

    /// Replaces the seed axis (default `[0]`).
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the reward configuration passed to every evaluation.
    pub fn reward(mut self, reward: RewardConfig) -> Self {
        self.reward = reward;
        self
    }

    /// Pins the worker-thread count, overriding `EXPER_THREADS` (tests
    /// use this to compare thread counts without mutating the process
    /// environment).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Keeps wall-clock decision times in cell summaries. They are
    /// scrubbed to zero by default because they are measurement noise
    /// that would break the byte-identical-output guarantee; the
    /// scalability figure opts back in (its whole point is timing).
    pub fn keep_decision_time(mut self) -> Self {
        self.scrub_decision_time = false;
        self
    }

    /// Evaluates every cell on custom VNF/chain catalogs instead of the
    /// standard ones.
    pub fn with_catalogs(mut self, vnfs: VnfCatalog, chains: ChainCatalog) -> Self {
        self.catalogs = Some((vnfs, chains));
        self
    }

    /// Attaches a configuration fingerprint recorded in the report
    /// (binaries sharing a cached grid use it to detect staleness).
    pub fn fingerprint(mut self, fingerprint: impl Into<String>) -> Self {
        self.fingerprint = fingerprint.into();
        self
    }

    /// Total number of cells the grid will run.
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.policies.len() * self.seeds.len()
    }

    /// The grid's name (`BENCH_<name>.json`).
    pub fn grid_name(&self) -> &str {
        &self.name
    }

    /// The fingerprint attached via [`ExperimentGrid::fingerprint`]
    /// (empty when unset).
    pub fn grid_fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// A structural fingerprint of the grid: an FNV-1a hash over the
    /// name, every scenario (label, coordinate, full `Debug` form), the
    /// policy labels, the seed axis, the reward configuration, custom
    /// catalogs and the decision-time scrub flag — everything that
    /// determines the deterministic cell payload *except* the policy
    /// factories themselves, which are opaque closures. Callers must keep
    /// the label↔policy binding stable (the registry discipline: a label
    /// names exactly one construction); under that discipline two grids
    /// with equal fingerprints produce bit-identical cells, which is what
    /// the sharded-sweep merge validates before trusting a fragment.
    pub fn auto_fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut desc = format!(
            "grid;v1;name={};seeds={:?};reward={:?};scrub={}",
            self.name, self.seeds, self.reward, self.scrub_decision_time
        );
        for row in &self.scenarios {
            let _ = write!(desc, ";scenario={}|{}|{:?}", row.label, row.x, row.scenario);
        }
        for (label, _) in &self.policies {
            let _ = write!(desc, ";policy={label}");
        }
        if let Some((vnfs, chains)) = &self.catalogs {
            let _ = write!(desc, ";catalogs={vnfs:?}|{chains:?}");
        }
        format!("{}-{:016x}", self.name, fnv1a(desc.as_bytes()))
    }

    /// Executes exactly one global cell. Pure in the grid-engine sense:
    /// the result depends only on the grid definition and `index`, never
    /// on which other cells ran (or on which thread/process this one ran).
    fn cell(&self, index: usize) -> BenchCell {
        let per_policy = self.seeds.len();
        let per_scenario = self.policies.len() * per_policy;
        let row = &self.scenarios[index / per_scenario];
        let (policy_label, factory) = &self.policies[(index % per_scenario) / per_policy];
        let seed = self.seeds[index % per_policy];
        let mut policy = factory();
        let mut result = match &self.catalogs {
            Some((vnfs, chains)) => evaluate_policy_with_catalogs(
                &row.scenario,
                self.reward,
                policy.as_mut(),
                seed,
                vnfs,
                chains,
            ),
            None => evaluate_policy(&row.scenario, self.reward, policy.as_mut(), seed),
        };
        if self.scrub_decision_time {
            result.summary.mean_decision_time_us = 0.0;
        }
        BenchCell {
            scenario: row.label.clone(),
            policy: policy_label.clone(),
            x: row.x,
            seed,
            summary: result.summary,
        }
    }

    /// Executes exactly the given global cells (any subset, any order) on
    /// the grid's worker pool and returns `(global index, cell)` pairs in
    /// the order of `indices`. This is the shard-execution entry point:
    /// a sweep worker expands its shard plan to indices and runs only
    /// those, and because every cell is a pure function of its index the
    /// results are bit-identical to the same cells of a full
    /// [`ExperimentGrid::run`].
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty (like [`ExperimentGrid::run`]) or any
    /// index is out of range.
    pub fn run_cells(&self, indices: &[usize]) -> Vec<(usize, BenchCell)> {
        self.assert_runnable();
        let n = self.cell_count();
        for &index in indices {
            assert!(index < n, "cell index {index} outside grid of {n} cells");
        }
        let threads = self.threads.unwrap_or_else(thread_count);
        run_indexed(indices.len(), threads, |slot| {
            let index = indices[slot];
            (index, self.cell(index))
        })
    }

    fn assert_runnable(&self) {
        assert!(
            !self.scenarios.is_empty(),
            "grid needs at least one scenario"
        );
        assert!(!self.policies.is_empty(), "grid needs at least one policy");
        assert!(!self.seeds.is_empty(), "grid needs at least one seed");
    }

    /// Executes the grid and returns its report.
    ///
    /// Cell order (and therefore `report.cells` order) is scenario-major,
    /// then policy, then seed. `cells` and `aggregates` are bit-identical
    /// for any thread count; `wall_clock_secs`/`throughput_slots_per_sec`
    /// are measurement metadata.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no scenarios or no policies, or if a cell's
    /// policy panics.
    pub fn run(&self) -> BenchReport {
        self.assert_runnable();
        let threads = self.threads.unwrap_or_else(thread_count);
        let n = self.cell_count();

        let started = Instant::now();
        let cells = run_indexed(n, threads, |index| self.cell(index));
        let wall_clock_secs = started.elapsed().as_secs_f64();

        let slots_simulated: u64 = cells.iter().map(|c| c.summary.slots).sum();
        let aggregates = group_aggregates(&cells);
        BenchReport {
            name: self.name.clone(),
            threads,
            wall_clock_secs,
            slots_simulated,
            throughput_slots_per_sec: if wall_clock_secs > 0.0 {
                slots_simulated as f64 / wall_clock_secs
            } else {
                0.0
            },
            fingerprint: self.fingerprint.clone(),
            cells,
            aggregates,
        }
    }
}

/// FNV-1a 64-bit over bytes — dependency-free, stable across platforms,
/// plenty for detecting grid-structure drift (this is staleness detection,
/// not a security boundary).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Concatenates several grid reports into one (used when a sweep must be
/// split into sub-grids, e.g. a per-size DRL manager whose observation
/// width differs per scenario). Cells keep their per-report order;
/// aggregates are recomputed over the concatenation; wall-clock and slot
/// totals are summed (the sub-grids ran back to back).
///
/// # Panics
///
/// Panics when `reports` is empty.
pub fn merge_reports(name: impl Into<String>, reports: Vec<BenchReport>) -> BenchReport {
    assert!(!reports.is_empty(), "cannot merge zero reports");
    let threads = reports.iter().map(|r| r.threads).max().unwrap_or(1);
    let wall_clock_secs: f64 = reports.iter().map(|r| r.wall_clock_secs).sum();
    let cells: Vec<BenchCell> = reports.into_iter().flat_map(|r| r.cells).collect();
    let slots_simulated: u64 = cells.iter().map(|c| c.summary.slots).sum();
    let aggregates = group_aggregates(&cells);
    BenchReport {
        name: name.into(),
        threads,
        wall_clock_secs,
        slots_simulated,
        throughput_slots_per_sec: if wall_clock_secs > 0.0 {
            slots_simulated as f64 / wall_clock_secs
        } else {
            0.0
        },
        fingerprint: String::new(),
        cells,
        aggregates,
    }
}

/// Renders a report's aggregates as a band CSV (header + one row per
/// (scenario, policy) group): the multi-seed upgrade of the old
/// single-seed sweep CSVs.
pub fn sweep_csv(report: &BenchReport) -> Vec<String> {
    let mut lines = vec![aggregate_csv_header()];
    for a in &report.aggregates {
        lines.push(aggregate_csv_row(&a.policy, a.x, &a.aggregate));
    }
    lines
}

/// Renders a report's raw cells as a CSV (header + one row per cell),
/// for consumers that want the per-seed scatter rather than the bands.
pub fn cells_csv(report: &BenchReport) -> Vec<String> {
    let mut lines = vec![format!("{},seed", summary_csv_header())];
    for c in &report.cells {
        lines.push(format!(
            "{},{}",
            summary_csv_row(&c.policy, c.x, &c.summary),
            c.seed
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid(threads: usize) -> BenchReport {
        ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .policy("first-fit", || Box::new(FirstFitPolicy))
            .policy("cloud-only", || Box::new(CloudOnlyPolicy))
            .seeds(&[3, 7])
            .threads(threads)
            .run()
    }

    #[test]
    fn grid_runs_all_cells_in_order() {
        let report = tiny_grid(2);
        assert_eq!(report.cells.len(), 4);
        let coords: Vec<(&str, u64)> = report
            .cells
            .iter()
            .map(|c| (c.policy.as_str(), c.seed))
            .collect();
        assert_eq!(
            coords,
            vec![
                ("first-fit", 3),
                ("first-fit", 7),
                ("cloud-only", 3),
                ("cloud-only", 7)
            ]
        );
        assert_eq!(report.aggregates.len(), 2);
        assert_eq!(report.aggregates[0].aggregate.runs, 2);
        assert!(report.slots_simulated > 0);
        assert!(report.wall_clock_secs > 0.0);
    }

    #[test]
    fn decision_time_scrubbed_by_default() {
        let report = tiny_grid(1);
        assert!(report
            .cells
            .iter()
            .all(|c| c.summary.mean_decision_time_us == 0.0));
        let kept = ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .policy("first-fit", || Box::new(FirstFitPolicy))
            .keep_decision_time()
            .threads(1)
            .run();
        assert!(kept.cells[0].summary.mean_decision_time_us > 0.0);
    }

    #[test]
    fn merge_concatenates_and_reaggregates() {
        // The fig5 shape: one sub-grid per scenario size, merged into a
        // single report whose groups stay distinct per scenario.
        let sub = |label: &str, x: f64| {
            ExperimentGrid::new(label)
                .scenario(label, x, Scenario::small_test())
                .policy("first-fit", || Box::new(FirstFitPolicy))
                .seeds(&[3, 7])
                .threads(2)
                .run()
        };
        let merged = merge_reports("merged", vec![sub("n=4", 4.0), sub("n=8", 8.0)]);
        assert_eq!(merged.cells.len(), 4);
        assert_eq!(merged.aggregates.len(), 2);
        assert_eq!(merged.aggregates[0].scenario, "n=4");
        assert_eq!(merged.aggregates[1].scenario, "n=8");
        assert!(merged.aggregates.iter().all(|a| a.aggregate.runs == 2));
    }

    #[test]
    fn csv_renderers_match_cell_counts() {
        let report = tiny_grid(1);
        assert_eq!(sweep_csv(&report).len(), 1 + report.aggregates.len());
        assert_eq!(cells_csv(&report).len(), 1 + report.cells.len());
    }

    fn tiny_grid_def(threads: usize) -> ExperimentGrid {
        ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .policy("first-fit", || Box::new(FirstFitPolicy))
            .policy("cloud-only", || Box::new(CloudOnlyPolicy))
            .seeds(&[3, 7])
            .threads(threads)
    }

    #[test]
    fn run_cells_matches_full_run_for_any_subset() {
        let grid = tiny_grid_def(2);
        let full = grid.run();
        // An out-of-order, non-contiguous subset.
        let picked = grid.run_cells(&[3, 0, 2]);
        assert_eq!(
            picked.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![3, 0, 2],
            "pairs come back in request order"
        );
        for (index, cell) in &picked {
            assert_eq!(cell, &full.cells[*index], "cell {index} diverged");
        }
        assert!(grid.run_cells(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn run_cells_rejects_out_of_range_indices() {
        let _ = tiny_grid_def(1).run_cells(&[99]);
    }

    #[test]
    fn auto_fingerprint_is_stable_and_structure_sensitive() {
        let fp = tiny_grid_def(1).auto_fingerprint();
        assert_eq!(
            fp,
            tiny_grid_def(4).auto_fingerprint(),
            "thread count is measurement config, not structure"
        );
        assert!(
            fp.starts_with("unit-"),
            "fingerprint is name-prefixed: {fp}"
        );
        let other_seeds = ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .policy("first-fit", || Box::new(FirstFitPolicy))
            .policy("cloud-only", || Box::new(CloudOnlyPolicy))
            .seeds(&[3, 8])
            .auto_fingerprint();
        assert_ne!(fp, other_seeds, "seed axis is structural");
        let other_label = ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .policy("first-fit", || Box::new(FirstFitPolicy))
            .policy("greedy-latency", || Box::new(GreedyLatencyPolicy))
            .seeds(&[3, 7])
            .auto_fingerprint();
        assert_ne!(fp, other_label, "policy labels are structural");
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_policy_axis_rejected() {
        let _ = ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .run();
    }
}
