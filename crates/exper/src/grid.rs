//! Declarative experiment grids: a (scenario × policy-factory × seed)
//! cross-product whose cells run in parallel and reduce deterministically.
//!
//! Every cell carries its grid index; workers report `(index, result)`
//! pairs that land in index-addressed slots, and aggregation walks the
//! slots in index order. The reduction therefore never observes execution
//! interleaving, which is what makes a parallel run bit-identical to
//! `EXPER_THREADS=1`.

use crate::pool::{run_indexed, thread_count};
use mano::prelude::*;
use mano::report::group_aggregates;
use sfc::chain::ChainCatalog;
use sfc::vnf::VnfCatalog;
use std::time::Instant;

/// Builds a fresh policy instance for one grid cell. Cells never share
/// policy state — stateful policies (the DRL manager) are cloned into
/// each cell by their factory, so cells stay independent and the grid can
/// run them in any order on any thread.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn PlacementPolicy> + Send + Sync>;

/// One labelled grid row: a scenario plus the sweep coordinate it
/// represents (arrival rate, site count, chain length, …).
pub struct GridScenario {
    /// Stable label recorded in cells (`λ=8`, `sites=12`, …).
    pub label: String,
    /// Numeric sweep coordinate for CSV/plot axes.
    pub x: f64,
    /// The scenario itself.
    pub scenario: Scenario,
}

/// A declarative (scenario × policy × seed) experiment.
///
/// ```
/// use exper::prelude::*;
/// use mano::prelude::*;
///
/// let report = ExperimentGrid::new("doc")
///     .scenario("small", 1.0, Scenario::small_test())
///     .policy("first-fit", || Box::new(FirstFitPolicy))
///     .policy("greedy-latency", || Box::new(GreedyLatencyPolicy))
///     .seeds(&[1, 2])
///     .threads(2)
///     .run();
/// assert_eq!(report.cells.len(), 4);
/// assert_eq!(report.aggregates.len(), 2);
/// ```
pub struct ExperimentGrid {
    name: String,
    scenarios: Vec<GridScenario>,
    policies: Vec<(String, PolicyFactory)>,
    seeds: Vec<u64>,
    reward: RewardConfig,
    threads: Option<usize>,
    scrub_decision_time: bool,
    catalogs: Option<(VnfCatalog, ChainCatalog)>,
    fingerprint: String,
}

impl ExperimentGrid {
    /// Starts an empty grid named `name` (becomes `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            scenarios: Vec::new(),
            policies: Vec::new(),
            seeds: vec![0],
            reward: RewardConfig::default(),
            threads: None,
            scrub_decision_time: true,
            catalogs: None,
            fingerprint: String::new(),
        }
    }

    /// Adds a scenario row with its sweep coordinate.
    pub fn scenario(mut self, label: impl Into<String>, x: f64, scenario: Scenario) -> Self {
        self.scenarios.push(GridScenario {
            label: label.into(),
            x,
            scenario,
        });
        self
    }

    /// Adds a policy column built per cell by `factory`.
    pub fn policy<F, P>(mut self, label: impl Into<String>, factory: F) -> Self
    where
        F: Fn() -> Box<P> + Send + Sync + 'static,
        P: PlacementPolicy + 'static,
    {
        self.policies.push((
            label.into(),
            Box::new(move || factory() as Box<dyn PlacementPolicy>),
        ));
        self
    }

    /// Adds a policy column from an already-boxed factory (for trait
    /// objects whose concrete type varies at runtime).
    pub fn policy_boxed(mut self, label: impl Into<String>, factory: PolicyFactory) -> Self {
        self.policies.push((label.into(), factory));
        self
    }

    /// Appends a batch of labelled boxed factories (the common "DRL plus
    /// all baselines" shape).
    pub fn policies(mut self, policies: Vec<(String, PolicyFactory)>) -> Self {
        for (label, factory) in policies {
            self.policies.push((label, factory));
        }
        self
    }

    /// Replaces the seed axis (default `[0]`).
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the reward configuration passed to every evaluation.
    pub fn reward(mut self, reward: RewardConfig) -> Self {
        self.reward = reward;
        self
    }

    /// Pins the worker-thread count, overriding `EXPER_THREADS` (tests
    /// use this to compare thread counts without mutating the process
    /// environment).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Keeps wall-clock decision times in cell summaries. They are
    /// scrubbed to zero by default because they are measurement noise
    /// that would break the byte-identical-output guarantee; the
    /// scalability figure opts back in (its whole point is timing).
    pub fn keep_decision_time(mut self) -> Self {
        self.scrub_decision_time = false;
        self
    }

    /// Evaluates every cell on custom VNF/chain catalogs instead of the
    /// standard ones.
    pub fn with_catalogs(mut self, vnfs: VnfCatalog, chains: ChainCatalog) -> Self {
        self.catalogs = Some((vnfs, chains));
        self
    }

    /// Attaches a configuration fingerprint recorded in the report
    /// (binaries sharing a cached grid use it to detect staleness).
    pub fn fingerprint(mut self, fingerprint: impl Into<String>) -> Self {
        self.fingerprint = fingerprint.into();
        self
    }

    /// Total number of cells the grid will run.
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.policies.len() * self.seeds.len()
    }

    /// Executes the grid and returns its report.
    ///
    /// Cell order (and therefore `report.cells` order) is scenario-major,
    /// then policy, then seed. `cells` and `aggregates` are bit-identical
    /// for any thread count; `wall_clock_secs`/`throughput_slots_per_sec`
    /// are measurement metadata.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no scenarios or no policies, or if a cell's
    /// policy panics.
    pub fn run(&self) -> BenchReport {
        assert!(
            !self.scenarios.is_empty(),
            "grid needs at least one scenario"
        );
        assert!(!self.policies.is_empty(), "grid needs at least one policy");
        assert!(!self.seeds.is_empty(), "grid needs at least one seed");

        let threads = self.threads.unwrap_or_else(thread_count);
        let n = self.cell_count();
        let per_policy = self.seeds.len();
        let per_scenario = self.policies.len() * per_policy;

        let started = Instant::now();
        let cells = run_indexed(n, threads, |index| {
            let row = &self.scenarios[index / per_scenario];
            let (policy_label, factory) = &self.policies[(index % per_scenario) / per_policy];
            let seed = self.seeds[index % per_policy];
            let mut policy = factory();
            let mut result = match &self.catalogs {
                Some((vnfs, chains)) => evaluate_policy_with_catalogs(
                    &row.scenario,
                    self.reward,
                    policy.as_mut(),
                    seed,
                    vnfs,
                    chains,
                ),
                None => evaluate_policy(&row.scenario, self.reward, policy.as_mut(), seed),
            };
            if self.scrub_decision_time {
                result.summary.mean_decision_time_us = 0.0;
            }
            BenchCell {
                scenario: row.label.clone(),
                policy: policy_label.clone(),
                x: row.x,
                seed,
                summary: result.summary,
            }
        });
        let wall_clock_secs = started.elapsed().as_secs_f64();

        let slots_simulated: u64 = cells.iter().map(|c| c.summary.slots).sum();
        let aggregates = group_aggregates(&cells);
        BenchReport {
            name: self.name.clone(),
            threads,
            wall_clock_secs,
            slots_simulated,
            throughput_slots_per_sec: if wall_clock_secs > 0.0 {
                slots_simulated as f64 / wall_clock_secs
            } else {
                0.0
            },
            fingerprint: self.fingerprint.clone(),
            cells,
            aggregates,
        }
    }
}

/// Concatenates several grid reports into one (used when a sweep must be
/// split into sub-grids, e.g. a per-size DRL manager whose observation
/// width differs per scenario). Cells keep their per-report order;
/// aggregates are recomputed over the concatenation; wall-clock and slot
/// totals are summed (the sub-grids ran back to back).
///
/// # Panics
///
/// Panics when `reports` is empty.
pub fn merge_reports(name: impl Into<String>, reports: Vec<BenchReport>) -> BenchReport {
    assert!(!reports.is_empty(), "cannot merge zero reports");
    let threads = reports.iter().map(|r| r.threads).max().unwrap_or(1);
    let wall_clock_secs: f64 = reports.iter().map(|r| r.wall_clock_secs).sum();
    let cells: Vec<BenchCell> = reports.into_iter().flat_map(|r| r.cells).collect();
    let slots_simulated: u64 = cells.iter().map(|c| c.summary.slots).sum();
    let aggregates = group_aggregates(&cells);
    BenchReport {
        name: name.into(),
        threads,
        wall_clock_secs,
        slots_simulated,
        throughput_slots_per_sec: if wall_clock_secs > 0.0 {
            slots_simulated as f64 / wall_clock_secs
        } else {
            0.0
        },
        fingerprint: String::new(),
        cells,
        aggregates,
    }
}

/// Renders a report's aggregates as a band CSV (header + one row per
/// (scenario, policy) group): the multi-seed upgrade of the old
/// single-seed sweep CSVs.
pub fn sweep_csv(report: &BenchReport) -> Vec<String> {
    let mut lines = vec![aggregate_csv_header()];
    for a in &report.aggregates {
        lines.push(aggregate_csv_row(&a.policy, a.x, &a.aggregate));
    }
    lines
}

/// Renders a report's raw cells as a CSV (header + one row per cell),
/// for consumers that want the per-seed scatter rather than the bands.
pub fn cells_csv(report: &BenchReport) -> Vec<String> {
    let mut lines = vec![format!("{},seed", summary_csv_header())];
    for c in &report.cells {
        lines.push(format!(
            "{},{}",
            summary_csv_row(&c.policy, c.x, &c.summary),
            c.seed
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid(threads: usize) -> BenchReport {
        ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .policy("first-fit", || Box::new(FirstFitPolicy))
            .policy("cloud-only", || Box::new(CloudOnlyPolicy))
            .seeds(&[3, 7])
            .threads(threads)
            .run()
    }

    #[test]
    fn grid_runs_all_cells_in_order() {
        let report = tiny_grid(2);
        assert_eq!(report.cells.len(), 4);
        let coords: Vec<(&str, u64)> = report
            .cells
            .iter()
            .map(|c| (c.policy.as_str(), c.seed))
            .collect();
        assert_eq!(
            coords,
            vec![
                ("first-fit", 3),
                ("first-fit", 7),
                ("cloud-only", 3),
                ("cloud-only", 7)
            ]
        );
        assert_eq!(report.aggregates.len(), 2);
        assert_eq!(report.aggregates[0].aggregate.runs, 2);
        assert!(report.slots_simulated > 0);
        assert!(report.wall_clock_secs > 0.0);
    }

    #[test]
    fn decision_time_scrubbed_by_default() {
        let report = tiny_grid(1);
        assert!(report
            .cells
            .iter()
            .all(|c| c.summary.mean_decision_time_us == 0.0));
        let kept = ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .policy("first-fit", || Box::new(FirstFitPolicy))
            .keep_decision_time()
            .threads(1)
            .run();
        assert!(kept.cells[0].summary.mean_decision_time_us > 0.0);
    }

    #[test]
    fn merge_concatenates_and_reaggregates() {
        // The fig5 shape: one sub-grid per scenario size, merged into a
        // single report whose groups stay distinct per scenario.
        let sub = |label: &str, x: f64| {
            ExperimentGrid::new(label)
                .scenario(label, x, Scenario::small_test())
                .policy("first-fit", || Box::new(FirstFitPolicy))
                .seeds(&[3, 7])
                .threads(2)
                .run()
        };
        let merged = merge_reports("merged", vec![sub("n=4", 4.0), sub("n=8", 8.0)]);
        assert_eq!(merged.cells.len(), 4);
        assert_eq!(merged.aggregates.len(), 2);
        assert_eq!(merged.aggregates[0].scenario, "n=4");
        assert_eq!(merged.aggregates[1].scenario, "n=8");
        assert!(merged.aggregates.iter().all(|a| a.aggregate.runs == 2));
    }

    #[test]
    fn csv_renderers_match_cell_counts() {
        let report = tiny_grid(1);
        assert_eq!(sweep_csv(&report).len(), 1 + report.aggregates.len());
        assert_eq!(cells_csv(&report).len(), 1 + report.cells.len());
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_policy_axis_rejected() {
        let _ = ExperimentGrid::new("unit")
            .scenario("small", 1.0, Scenario::small_test())
            .run();
    }
}
