//! Parallel greedy-evaluation fan-out: N evaluation cells of ONE frozen
//! policy, executed with one policy clone — and therefore one warm
//! inference [`Workspace`](nn::prelude::Workspace) — per worker thread.
//!
//! The experiment grid clones its policies once per *cell* (factories keep
//! cells fully independent). That is the right default for mixed policy
//! rosters, but for the common "evaluate this trained manager across a
//! seed × scenario plane" shape it rebuilds the agent's scratch buffers
//! over and over. `parallel_eval` instead hands each worker a single
//! clone and threads it mutably through every cell the worker claims:
//! the clone's workspaces stay warm, and since a frozen policy's
//! evaluation is a pure function of (scenario, seed) — reusable buffers,
//! not behavioral state, pinned by the warm-buffer golden tests — the
//! results stay index-keyed deterministic for any thread count.

use crate::pool::{run_indexed_with, thread_count};
use mano::prelude::*;
use mano::report::group_aggregates;

/// One greedy evaluation cell: a labelled scenario coordinate plus the
/// workload seed offset.
#[derive(Debug, Clone)]
pub struct EvalCell {
    /// Scenario label recorded in the report cells (`sites=8`, …).
    pub label: String,
    /// Numeric sweep coordinate for CSV/plot axes.
    pub x: f64,
    /// The scenario to evaluate on.
    pub scenario: Scenario,
    /// Workload seed offset.
    pub seed: u64,
}

/// Convenience: the (scenario × seeds) cross-product as evaluation cells.
pub fn cells_for_seeds(label: &str, x: f64, scenario: &Scenario, seeds: &[u64]) -> Vec<EvalCell> {
    seeds
        .iter()
        .map(|&seed| EvalCell {
            label: label.to_string(),
            x,
            scenario: scenario.clone(),
            seed,
        })
        .collect()
}

/// Evaluates `policy` on every cell, fanning out over the std scoped
/// thread pool with one policy clone per worker. Results come back in
/// cell order (index-keyed, bit-identical for any thread count);
/// wall-clock decision times are scrubbed unless `keep_decision_time`
/// (they are measurement noise that would break byte-identical outputs).
///
/// `threads = None` uses the engine default (`EXPER_THREADS` override or
/// available parallelism).
pub fn parallel_eval<P>(
    policy: &P,
    policy_label: &str,
    reward: RewardConfig,
    cells: &[EvalCell],
    threads: Option<usize>,
    keep_decision_time: bool,
) -> Vec<BenchCell>
where
    P: PlacementPolicy + Clone + Sync,
{
    parallel_eval_semantics(
        policy,
        policy_label,
        reward,
        cells,
        threads,
        keep_decision_time,
        DecisionSemantics::Sequential,
    )
}

/// [`parallel_eval`] under explicit decision semantics: the snapshot
/// figure columns fan out with [`DecisionSemantics::SlotSnapshot`].
/// Index-keyed determinism holds exactly as for `parallel_eval` — a
/// frozen policy's snapshot evaluation is still a pure function of
/// (scenario, seed, semantics).
#[allow(clippy::too_many_arguments)]
pub fn parallel_eval_semantics<P>(
    policy: &P,
    policy_label: &str,
    reward: RewardConfig,
    cells: &[EvalCell],
    threads: Option<usize>,
    keep_decision_time: bool,
    semantics: DecisionSemantics,
) -> Vec<BenchCell>
where
    P: PlacementPolicy + Clone + Sync,
{
    let threads = threads.unwrap_or_else(thread_count);
    run_indexed_with(
        cells.len(),
        threads,
        || policy.clone(),
        |worker, index| {
            let cell = &cells[index];
            let mut result = evaluate_policy_with_semantics(
                &cell.scenario,
                reward,
                worker,
                cell.seed,
                semantics,
            );
            if !keep_decision_time {
                result.summary.mean_decision_time_us = 0.0;
            }
            BenchCell {
                scenario: cell.label.clone(),
                policy: policy_label.to_string(),
                x: cell.x,
                seed: cell.seed,
                summary: result.summary,
            }
        },
    )
}

/// Packages evaluation cells (from [`parallel_eval`] or several
/// concatenated calls) as a [`BenchReport`] with freshly computed
/// aggregates, so fan-out results merge with grid reports through
/// [`crate::grid::merge_reports`].
pub fn report_from_cells(
    name: impl Into<String>,
    threads: usize,
    wall_clock_secs: f64,
    cells: Vec<BenchCell>,
) -> BenchReport {
    let slots_simulated: u64 = cells.iter().map(|c| c.summary.slots).sum();
    let aggregates = group_aggregates(&cells);
    BenchReport {
        name: name.into(),
        threads,
        wall_clock_secs,
        slots_simulated,
        throughput_slots_per_sec: if wall_clock_secs > 0.0 {
            slots_simulated as f64 / wall_clock_secs
        } else {
            0.0
        },
        fingerprint: String::new(),
        cells,
        aggregates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_for_seeds_expands_the_seed_axis() {
        let cells = cells_for_seeds("s", 2.0, &Scenario::small_test(), &[5, 6, 7]);
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.label == "s" && c.x == 2.0));
        assert_eq!(
            cells.iter().map(|c| c.seed).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
    }

    #[test]
    fn parallel_eval_matches_per_cell_evaluation() {
        let scenario = Scenario::small_test();
        let cells = cells_for_seeds("small", 1.0, &scenario, &[1, 2]);
        let got = parallel_eval(
            &FirstFitPolicy,
            "first-fit",
            RewardConfig::default(),
            &cells,
            Some(2),
            false,
        );
        assert_eq!(got.len(), 2);
        for (cell, spec) in got.iter().zip(cells.iter()) {
            let mut policy = FirstFitPolicy;
            let mut expected =
                evaluate_policy(&scenario, RewardConfig::default(), &mut policy, spec.seed);
            expected.summary.mean_decision_time_us = 0.0;
            assert_eq!(cell.summary, expected.summary);
            assert_eq!(cell.policy, "first-fit");
        }
    }

    #[test]
    fn report_from_cells_aggregates_per_group() {
        let scenario = Scenario::small_test();
        let cells = cells_for_seeds("small", 1.0, &scenario, &[1, 2]);
        let cells = parallel_eval(
            &FirstFitPolicy,
            "first-fit",
            RewardConfig::default(),
            &cells,
            Some(1),
            false,
        );
        let report = report_from_cells("unit_eval", 1, 0.5, cells);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.aggregates.len(), 1);
        assert_eq!(report.aggregates[0].aggregate.runs, 2);
        assert!(report.slots_simulated > 0);
        assert!(report.throughput_slots_per_sec > 0.0);
    }
}
