//! Declarative scenario manifests: one JSON-or-code document that expands
//! deterministically into [`ExperimentGrid`]s.
//!
//! A manifest names every axis an experiment sweeps — topology family,
//! workload pattern, event schedule, reward weights, policy set, seeds —
//! instead of hand-assembling grids with ad-hoc builder calls. The same
//! manifest is the single definition path for in-process figure binaries,
//! the multi-process sweep registry, and the automated search driver
//! ([`crate::search`]), so a grid can no longer drift between its
//! consumers.
//!
//! # Determinism contract
//!
//! Expansion is a pure function of `(manifest, fast)`:
//!
//! * Axes expand in a fixed axis-major order (reward points outermost,
//!   then scenario rows, then policies, then seeds — the existing grid
//!   cell order).
//! * [`Axis::Random`] draws from an RNG seeded only by the axis's own
//!   `seed` field — never from ambient state — so sampled axes are as
//!   reproducible as listed ones.
//! * Every expanded grid carries its structural
//!   [`ExperimentGrid::auto_fingerprint`], and the manifest itself has a
//!   mode-independent [`ScenarioManifest::fingerprint`] covering both the
//!   full and `FAST` variants, so artifacts can be traced back to the
//!   exact manifest that produced them.

use crate::grid::{ExperimentGrid, GridScenario, PolicyFactory};
use edgenet::node::Resources;
use mano::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use sfc::chain::{ChainCatalog, ChainId, ChainSpec};
use sfc::vnf::VnfCatalog;
use std::path::Path;

/// Version stamp of the manifest JSON schema; bump on breaking changes.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// A numeric sweep axis. All variants expand to a fixed value list via
/// [`Axis::values`]; `Random` is seeded sampling, not ambient randomness.
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// Explicit values, used verbatim in order.
    List(Vec<f64>),
    /// `steps` evenly spaced values from `start` to `end` inclusive.
    LinRange {
        /// First value.
        start: f64,
        /// Last value.
        end: f64,
        /// Number of values (≥ 1; 1 yields `[start]`).
        steps: usize,
    },
    /// `steps` geometrically spaced values from `start` to `end`
    /// inclusive (both must be positive).
    LogRange {
        /// First value (> 0).
        start: f64,
        /// Last value (> 0).
        end: f64,
        /// Number of values (≥ 1; 1 yields `[start]`).
        steps: usize,
    },
    /// `n` uniform draws from `[lo, hi)`, in draw order, from an RNG
    /// seeded only by `seed` — the sampled axis is a pure function of
    /// this variant's fields.
    Random {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
        /// Number of samples.
        n: usize,
        /// RNG seed; the only source of randomness.
        seed: u64,
    },
}

impl Axis {
    /// A single-value axis (the degenerate default for unswept axes).
    pub fn single(value: f64) -> Self {
        Axis::List(vec![value])
    }

    /// Expands the axis to its deterministic value list.
    ///
    /// # Panics
    ///
    /// Panics on an empty axis (`steps`/`n` of 0, empty list) or a
    /// non-positive `LogRange` endpoint.
    pub fn values(&self) -> Vec<f64> {
        match self {
            Axis::List(values) => {
                assert!(!values.is_empty(), "axis needs at least one value");
                values.clone()
            }
            Axis::LinRange { start, end, steps } => {
                assert!(*steps >= 1, "axis needs at least one value");
                if *steps == 1 {
                    return vec![*start];
                }
                (0..*steps)
                    .map(|i| start + (end - start) * i as f64 / (*steps as f64 - 1.0))
                    .collect()
            }
            Axis::LogRange { start, end, steps } => {
                assert!(*steps >= 1, "axis needs at least one value");
                assert!(
                    *start > 0.0 && *end > 0.0,
                    "log axis endpoints must be positive"
                );
                if *steps == 1 {
                    return vec![*start];
                }
                let ratio = end / start;
                (0..*steps)
                    .map(|i| start * ratio.powf(i as f64 / (*steps as f64 - 1.0)))
                    .collect()
            }
            Axis::Random { lo, hi, n, seed } => {
                assert!(*n >= 1, "axis needs at least one value");
                assert!(lo < hi, "random axis needs lo < hi");
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..*n).map(|_| lo + rng.gen::<f64>() * (hi - lo)).collect()
            }
        }
    }

    fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        match self {
            Axis::List(values) => {
                map.insert("kind", Value::from("list"));
                map.insert(
                    "values",
                    Value::Array(values.iter().map(|&v| Value::from(v)).collect()),
                );
            }
            Axis::LinRange { start, end, steps } => {
                map.insert("kind", Value::from("lin_range"));
                map.insert("start", Value::from(*start));
                map.insert("end", Value::from(*end));
                map.insert("steps", Value::from(*steps));
            }
            Axis::LogRange { start, end, steps } => {
                map.insert("kind", Value::from("log_range"));
                map.insert("start", Value::from(*start));
                map.insert("end", Value::from(*end));
                map.insert("steps", Value::from(*steps));
            }
            Axis::Random { lo, hi, n, seed } => {
                map.insert("kind", Value::from("random"));
                map.insert("lo", Value::from(*lo));
                map.insert("hi", Value::from(*hi));
                map.insert("n", Value::from(*n));
                // As a decimal string: JSON numbers round-trip through
                // f64, which silently truncates seeds above 2^53.
                map.insert("seed", Value::from(seed.to_string()));
            }
        }
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let kind = req_str(v, "kind", "axis")?;
        match kind {
            "list" => {
                let values = v
                    .get("values")
                    .and_then(Value::as_array)
                    .ok_or("axis list needs a `values` array")?
                    .iter()
                    .map(|x| x.as_f64().ok_or("axis values must be numbers"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Axis::List(values))
            }
            "lin_range" => Ok(Axis::LinRange {
                start: req_f64(v, "start", "lin_range axis")?,
                end: req_f64(v, "end", "lin_range axis")?,
                steps: req_usize(v, "steps", "lin_range axis")?,
            }),
            "log_range" => Ok(Axis::LogRange {
                start: req_f64(v, "start", "log_range axis")?,
                end: req_f64(v, "end", "log_range axis")?,
                steps: req_usize(v, "steps", "log_range axis")?,
            }),
            "random" => {
                // Canonical form is a decimal string (exact for any
                // u64); a plain integer is accepted for hand-written
                // files with small seeds.
                let seed = match v.get("seed").and_then(Value::as_str) {
                    Some(s) => s
                        .parse::<u64>()
                        .map_err(|e| format!("random axis seed `{s}`: {e}"))?,
                    None => req_u64(v, "seed", "random axis")?,
                };
                Ok(Axis::Random {
                    lo: req_f64(v, "lo", "random axis")?,
                    hi: req_f64(v, "hi", "random axis")?,
                    n: req_usize(v, "n", "random axis")?,
                    seed,
                })
            }
            other => Err(format!("unknown axis kind `{other}`")),
        }
    }
}

/// A value with distinct full-resolution and `FAST` smoke variants.
/// Manifests carry both so the manifest file (and its fingerprint) is
/// independent of the mode it is expanded under.
#[derive(Debug, Clone, PartialEq)]
pub struct FastScaled<T> {
    /// Full-resolution value.
    pub full: T,
    /// `FAST=1` smoke value.
    pub fast: T,
}

impl<T: Clone> FastScaled<T> {
    /// The same value in both modes.
    pub fn same(value: T) -> Self {
        Self {
            full: value.clone(),
            fast: value,
        }
    }

    /// Picks the variant for the given mode.
    pub fn pick(&self, fast: bool) -> T {
        if fast {
            self.fast.clone()
        } else {
            self.full.clone()
        }
    }
}

impl<T: Clone> FastScaled<T> {
    fn to_json_with(&self, f: impl Fn(&T) -> Value) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("full", f(&self.full));
        map.insert("fast", f(&self.fast));
        Value::Object(map)
    }

    fn from_json_with(v: &Value, f: impl Fn(&Value) -> Result<T, String>) -> Result<Self, String> {
        match (v.get("full"), v.get("fast")) {
            (Some(full), Some(fast)) => Ok(Self {
                full: f(full)?,
                fast: f(fast)?,
            }),
            // A bare value applies to both modes.
            (None, None) => Ok(Self::same(f(v)?)),
            _ => Err("fast-scaled value needs both `full` and `fast` (or a bare value)".into()),
        }
    }
}

/// The topology family a manifest's scenarios run on.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyFamily {
    /// Real metro sites, fully meshed, plus a cloud.
    Metro {
        /// Number of edge sites (≤ 16).
        sites: usize,
    },
    /// Edge sites in a ring plus a cloud.
    Ring {
        /// Number of edge sites.
        sites: usize,
    },
}

impl TopologyFamily {
    fn spec(&self, sites_override: Option<usize>) -> TopologySpec {
        match *self {
            TopologyFamily::Metro { sites } => TopologySpec::Metro {
                sites: sites_override.unwrap_or(sites),
            },
            TopologyFamily::Ring { sites } => TopologySpec::Ring {
                sites: sites_override.unwrap_or(sites),
            },
        }
    }

    fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        let (family, sites) = match *self {
            TopologyFamily::Metro { sites } => ("metro", sites),
            TopologyFamily::Ring { sites } => ("ring", sites),
        };
        map.insert("family", Value::from(family));
        map.insert("sites", Value::from(sites));
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let sites = req_usize(v, "sites", "topology")?;
        match req_str(v, "family", "topology")? {
            "metro" => Ok(TopologyFamily::Metro { sites }),
            "ring" => Ok(TopologyFamily::Ring { sites }),
            other => Err(format!("unknown topology family `{other}`")),
        }
    }
}

/// The manifest's network-event schedule axis.
#[derive(Debug, Clone, PartialEq)]
pub enum EventSpec {
    /// Static network.
    None,
    /// Seeded stochastic failure/repair process (see
    /// [`Scenario::with_failures`]).
    Stochastic {
        /// Per-slot failure probability of each live edge node.
        failure_rate: f64,
        /// Mean downtime in slots.
        mean_downtime_slots: f64,
    },
}

impl EventSpec {
    fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        match self {
            EventSpec::None => {
                map.insert("kind", Value::from("none"));
            }
            EventSpec::Stochastic {
                failure_rate,
                mean_downtime_slots,
            } => {
                map.insert("kind", Value::from("stochastic"));
                map.insert("failure_rate", Value::from(*failure_rate));
                map.insert("mean_downtime_slots", Value::from(*mean_downtime_slots));
            }
        }
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        match req_str(v, "kind", "events")? {
            "none" => Ok(EventSpec::None),
            "stochastic" => Ok(EventSpec::Stochastic {
                failure_rate: req_f64(v, "failure_rate", "stochastic events")?,
                mean_downtime_slots: req_f64(v, "mean_downtime_slots", "stochastic events")?,
            }),
            other => Err(format!("unknown event kind `{other}`")),
        }
    }
}

/// The common scenario template every sweep row starts from. Defaults
/// mirror [`Scenario::default_metro`]; only fields a manifest sets
/// explicitly deviate from it, so manifest-built scenarios stay
/// structurally identical to the hand-built ones they replaced.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestBase {
    /// Topology family and size.
    pub topology: TopologyFamily,
    /// Per-edge-site capacity override as `(cpu, mem)`; `None` keeps the
    /// topology builder's default.
    pub edge_capacity: Option<(f64, f64)>,
    /// Simulation horizon in slots, per mode.
    pub horizon_slots: FastScaled<u64>,
    /// Arrival rate (requests/slot) outside any arrival-rate sweep.
    pub arrival_rate: f64,
    /// Number of chain types in the (uniform) workload mix.
    pub chain_count: usize,
    /// Mean flow duration in slots.
    pub mean_duration_slots: f64,
    /// Network-event schedule outside any failure-rate sweep.
    pub events: EventSpec,
}

impl ManifestBase {
    /// The paper's evaluation baseline: 8 metro sites, scarce edge
    /// capacity, 360-slot horizon (40 under `FAST`).
    pub fn bench(arrival_rate: f64) -> Self {
        Self {
            topology: TopologyFamily::Metro { sites: 8 },
            edge_capacity: Some((32.0, 128.0)),
            horizon_slots: FastScaled {
                full: 360,
                fast: 40,
            },
            arrival_rate,
            chain_count: 4,
            mean_duration_slots: 12.0,
            events: EventSpec::None,
        }
    }

    /// Materializes the template into a concrete scenario at `rate`.
    fn scenario(&self, fast: bool, rate: f64, sites_override: Option<usize>) -> Scenario {
        let mut s = Scenario::default_metro();
        s.topology = self.topology.spec(sites_override);
        s.workload = workload::trace::WorkloadSpec::poisson(
            rate,
            self.chain_count,
            self.mean_duration_slots,
        );
        if let Some((cpu, mem)) = self.edge_capacity {
            s.topology_builder.edge_capacity = Resources::new(cpu, mem);
        }
        s.horizon_slots = self.horizon_slots.pick(fast);
        if let EventSpec::Stochastic {
            failure_rate,
            mean_downtime_slots,
        } = self.events
        {
            s = s.with_failures(failure_rate, mean_downtime_slots);
        }
        s
    }

    fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("topology", self.topology.to_json());
        if let Some((cpu, mem)) = self.edge_capacity {
            let mut cap = serde_json::Map::new();
            cap.insert("cpu", Value::from(cpu));
            cap.insert("mem", Value::from(mem));
            map.insert("edge_capacity", Value::Object(cap));
        }
        map.insert(
            "horizon_slots",
            self.horizon_slots.to_json_with(|&h| Value::from(h)),
        );
        map.insert("arrival_rate", Value::from(self.arrival_rate));
        map.insert("chain_count", Value::from(self.chain_count));
        map.insert("mean_duration_slots", Value::from(self.mean_duration_slots));
        map.insert("events", self.events.to_json());
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let edge_capacity = match v.get("edge_capacity") {
            None => None,
            Some(cap) => Some((
                req_f64(cap, "cpu", "edge_capacity")?,
                req_f64(cap, "mem", "edge_capacity")?,
            )),
        };
        Ok(Self {
            topology: TopologyFamily::from_json(v.get("topology").ok_or("base needs `topology`")?)?,
            edge_capacity,
            horizon_slots: FastScaled::from_json_with(
                v.get("horizon_slots").ok_or("base needs `horizon_slots`")?,
                |h| h.as_u64().ok_or_else(|| "horizon must be a u64".into()),
            )?,
            arrival_rate: req_f64(v, "arrival_rate", "base")?,
            chain_count: req_usize(v, "chain_count", "base")?,
            mean_duration_slots: req_f64(v, "mean_duration_slots", "base")?,
            events: match v.get("events") {
                None => EventSpec::None,
                Some(e) => EventSpec::from_json(e)?,
            },
        })
    }
}

/// What varies across a manifest's scenario rows (the grid's scenario
/// axis). Every variant yields labelled [`GridScenario`] rows in axis
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// Arrival-rate sweep: one row per rate, labelled `lambda=<rate>`.
    ArrivalRate {
        /// Rate values per mode.
        values: FastScaled<Axis>,
    },
    /// Topology-size sweep: one row per site count, labelled
    /// `sites=<n>` (values are truncated to integers).
    Sites {
        /// Site-count values per mode.
        values: FastScaled<Axis>,
    },
    /// Chain-length sweep on the synthetic length-k catalog: one row per
    /// length `1..=max`, labelled `len=<k>`, each with a one-hot chain
    /// mix. Implies [`synthetic_chains`] catalogs.
    ChainLength {
        /// Longest chain (and catalog size) per mode.
        max: FastScaled<u64>,
    },
    /// Failure-rate sweep: one row per rate, labelled `f=<rate>`, each
    /// with a seeded stochastic failure schedule.
    FailureRate {
        /// Failure-rate values per mode.
        values: FastScaled<Axis>,
        /// Mean downtime of each failure, in slots.
        mean_downtime_slots: f64,
    },
}

impl SweepSpec {
    fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        match self {
            SweepSpec::ArrivalRate { values } => {
                map.insert("kind", Value::from("arrival_rate"));
                map.insert("values", values.to_json_with(Axis::to_json));
            }
            SweepSpec::Sites { values } => {
                map.insert("kind", Value::from("sites"));
                map.insert("values", values.to_json_with(Axis::to_json));
            }
            SweepSpec::ChainLength { max } => {
                map.insert("kind", Value::from("chain_length"));
                map.insert("max", max.to_json_with(|&m| Value::from(m)));
            }
            SweepSpec::FailureRate {
                values,
                mean_downtime_slots,
            } => {
                map.insert("kind", Value::from("failure_rate"));
                map.insert("values", values.to_json_with(Axis::to_json));
                map.insert("mean_downtime_slots", Value::from(*mean_downtime_slots));
            }
        }
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let values = |field: &str| -> Result<FastScaled<Axis>, String> {
            FastScaled::from_json_with(
                v.get(field)
                    .ok_or_else(|| format!("sweep needs `{field}`"))?,
                Axis::from_json,
            )
        };
        match req_str(v, "kind", "sweep")? {
            "arrival_rate" => Ok(SweepSpec::ArrivalRate {
                values: values("values")?,
            }),
            "sites" => Ok(SweepSpec::Sites {
                values: values("values")?,
            }),
            "chain_length" => Ok(SweepSpec::ChainLength {
                max: FastScaled::from_json_with(
                    v.get("max").ok_or("chain_length sweep needs `max`")?,
                    |m| m.as_u64().ok_or_else(|| "max must be a u64".into()),
                )?,
            }),
            "failure_rate" => Ok(SweepSpec::FailureRate {
                values: values("values")?,
                mean_downtime_slots: req_f64(v, "mean_downtime_slots", "failure_rate sweep")?,
            }),
            other => Err(format!("unknown sweep kind `{other}`")),
        }
    }
}

/// One policy-set entry of a manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// A single named baseline from [`baseline_names`].
    Baseline(String),
    /// A named roster of baselines (`"comparison"` or `"standard"`).
    Roster(String),
    /// A DRL manager trained per reward point by the expansion's caller.
    /// `{alpha}` / `{beta}` placeholders in the label are substituted
    /// with the point's weights (so fig10's columns keep their
    /// `a<α>-b<β>` names).
    Trained {
        /// Label template for the grid column.
        label: String,
    },
}

impl PolicySpec {
    fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        match self {
            PolicySpec::Baseline(name) => {
                map.insert("kind", Value::from("baseline"));
                map.insert("name", Value::from(name.as_str()));
            }
            PolicySpec::Roster(name) => {
                map.insert("kind", Value::from("roster"));
                map.insert("name", Value::from(name.as_str()));
            }
            PolicySpec::Trained { label } => {
                map.insert("kind", Value::from("trained"));
                map.insert("label", Value::from(label.as_str()));
            }
        }
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        match req_str(v, "kind", "policy")? {
            "baseline" => Ok(PolicySpec::Baseline(req_str(v, "name", "policy")?.into())),
            "roster" => Ok(PolicySpec::Roster(req_str(v, "name", "policy")?.into())),
            "trained" => Ok(PolicySpec::Trained {
                label: req_str(v, "label", "policy")?.into(),
            }),
            other => Err(format!("unknown policy kind `{other}`")),
        }
    }
}

/// The reward-weight axes: α (latency weight) × β (cost weight).
#[derive(Debug, Clone, PartialEq)]
pub struct RewardAxes {
    /// Latency-weight axis.
    pub alpha: Axis,
    /// Cost-weight axis.
    pub beta: Axis,
    /// `true` zips the axes position-wise into a diagonal (lengths must
    /// match); `false` takes the full cross-product, α-major.
    pub paired: bool,
}

impl Default for RewardAxes {
    /// The unswept default: one point at the default weights (1, 1).
    fn default() -> Self {
        Self {
            alpha: Axis::single(1.0),
            beta: Axis::single(1.0),
            paired: true,
        }
    }
}

impl RewardAxes {
    /// Expands to `(α, β)` weight points in fixed axis-major order.
    ///
    /// # Panics
    ///
    /// Panics when `paired` axes have different lengths.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let alphas = self.alpha.values();
        let betas = self.beta.values();
        if self.paired {
            assert_eq!(
                alphas.len(),
                betas.len(),
                "paired reward axes must have equal lengths"
            );
            alphas.into_iter().zip(betas).collect()
        } else {
            alphas
                .iter()
                .flat_map(|&a| betas.iter().map(move |&b| (a, b)))
                .collect()
        }
    }

    fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("alpha", self.alpha.to_json());
        map.insert("beta", self.beta.to_json());
        map.insert("paired", Value::from(self.paired));
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(Self {
            alpha: Axis::from_json(v.get("alpha").ok_or("reward needs `alpha`")?)?,
            beta: Axis::from_json(v.get("beta").ok_or("reward needs `beta`")?)?,
            paired: v
                .get("paired")
                .and_then(Value::as_bool)
                .ok_or("reward needs boolean `paired`")?,
        })
    }
}

/// The manifest's successive-halving schedule (consumed by
/// [`crate::search`]; declarative here so a search's budget is part of
/// the checked-in definition, not a command-line accident).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchParams {
    /// Seeds used in the cheap screening pass, per mode.
    pub screen_seeds: FastScaled<usize>,
    /// Fraction of candidates promoted to the full seed budget, in
    /// `(0, 1]` (at least one candidate is always promoted).
    pub promote_fraction: f64,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            screen_seeds: FastScaled { full: 2, fast: 1 },
            promote_fraction: 0.5,
        }
    }
}

impl SearchParams {
    fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert(
            "screen_seeds",
            self.screen_seeds.to_json_with(|&s| Value::from(s)),
        );
        map.insert("promote_fraction", Value::from(self.promote_fraction));
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(Self {
            screen_seeds: FastScaled::from_json_with(
                v.get("screen_seeds").ok_or("search needs `screen_seeds`")?,
                |s| {
                    s.as_u64()
                        .map(|s| s as usize)
                        .ok_or_else(|| "screen_seeds must be a u64".into())
                },
            )?,
            promote_fraction: req_f64(v, "promote_fraction", "search")?,
        })
    }
}

/// A declarative scenario manifest: the single definition of an
/// experiment's axes, expandable into [`ExperimentGrid`]s with
/// [`ScenarioManifest::expand`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioManifest {
    /// Manifest (and base grid) name.
    pub name: String,
    /// Common scenario template.
    pub base: ManifestBase,
    /// The scenario axis.
    pub sweep: SweepSpec,
    /// The reward-weight axes (one grid per point).
    pub reward: RewardAxes,
    /// The policy set.
    pub policies: Vec<PolicySpec>,
    /// Workload seed axis, per mode.
    pub seeds: FastScaled<Vec<u64>>,
    /// Successive-halving schedule for [`crate::search`].
    pub search: SearchParams,
    /// Health-score weights for ranking (metric name, weight,
    /// higher-is-better), defaulting to
    /// [`crate::search::HealthScore::default`]'s weights.
    pub health: Vec<(String, f64, bool)>,
}

impl ScenarioManifest {
    /// Starts a manifest with the standard evaluation seeds, default
    /// reward axes, default search schedule and default health weights.
    pub fn new(name: impl Into<String>, base: ManifestBase, sweep: SweepSpec) -> Self {
        Self {
            name: name.into(),
            base,
            sweep,
            reward: RewardAxes::default(),
            policies: Vec::new(),
            seeds: FastScaled {
                full: vec![101, 102, 103, 104, 105],
                fast: vec![101, 102],
            },
            search: SearchParams::default(),
            health: crate::search::HealthScore::default_weights(),
        }
    }

    /// Appends a policy-set entry.
    pub fn policy(mut self, spec: PolicySpec) -> Self {
        self.policies.push(spec);
        self
    }

    /// Replaces the seed axis (both modes).
    pub fn seeds(mut self, seeds: FastScaled<Vec<u64>>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Replaces the reward axes.
    pub fn reward(mut self, reward: RewardAxes) -> Self {
        self.reward = reward;
        self
    }

    /// A mode-independent structural fingerprint of the manifest (FNV-1a
    /// over its full debug form, covering both the full and `FAST`
    /// variants). Search artifacts record it so `bench_summary` can flag
    /// results produced from a drifted manifest file.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}-{:016x}",
            self.name,
            fnv1a(format!("{self:?}").as_bytes())
        )
    }

    /// Expands the manifest for the given mode: one
    /// [`ExpandedPoint`] per reward-weight point, each describing a full
    /// (scenario × policy × seed) grid. Pure function of
    /// `(self, fast)` — see the module docs for the determinism
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics on an invalid manifest: empty axes, unknown baseline or
    /// roster names, duplicate policy labels, or trained-label templates
    /// that collide across reward points.
    pub fn expand(&self, fast: bool) -> Expansion {
        assert!(
            !self.policies.is_empty(),
            "manifest needs at least one policy"
        );
        let seeds = self.seeds.pick(fast);
        assert!(!seeds.is_empty(), "manifest needs at least one seed");
        let weight_points = self.reward.points();
        let multi_point = weight_points.len() > 1;

        let points = weight_points
            .into_iter()
            .map(|(alpha, beta)| {
                let reward = RewardConfig {
                    alpha_latency: alpha as f32,
                    beta_cost: beta as f32,
                    ..RewardConfig::default()
                };
                let (scenarios, catalogs) = self.sweep_rows(fast);
                let policies = self.resolve_policies(alpha, beta);
                let grid_name = if multi_point {
                    format!("{}.a{alpha}-b{beta}", self.name)
                } else {
                    self.name.clone()
                };
                ExpandedPoint {
                    alpha,
                    beta,
                    reward,
                    grid_name,
                    scenarios,
                    policies,
                    seeds: seeds.clone(),
                    catalogs,
                }
            })
            .collect();
        Expansion {
            manifest_name: self.name.clone(),
            fingerprint: self.fingerprint(),
            fast,
            points,
        }
    }

    /// The scenario rows (and implied catalogs) of one reward point.
    fn sweep_rows(&self, fast: bool) -> (Vec<GridScenario>, Option<(VnfCatalog, ChainCatalog)>) {
        match &self.sweep {
            SweepSpec::ArrivalRate { values } => (
                values
                    .pick(fast)
                    .values()
                    .into_iter()
                    .map(|rate| GridScenario {
                        label: format!("lambda={rate}"),
                        x: rate,
                        scenario: self.base.scenario(fast, rate, None),
                    })
                    .collect(),
                None,
            ),
            SweepSpec::Sites { values } => (
                values
                    .pick(fast)
                    .values()
                    .into_iter()
                    .map(|v| {
                        let sites = v as usize;
                        GridScenario {
                            label: format!("sites={sites}"),
                            x: sites as f64,
                            scenario: self
                                .base
                                .scenario(fast, self.base.arrival_rate, Some(sites)),
                        }
                    })
                    .collect(),
                None,
            ),
            SweepSpec::ChainLength { max } => {
                let max_len = max.pick(fast) as usize;
                assert!(max_len >= 1, "chain_length sweep needs max >= 1");
                let vnfs = VnfCatalog::standard();
                let chains = synthetic_chains(&vnfs, max_len);
                let rows = (1..=max_len)
                    .map(|len| {
                        let mut s = self.base.scenario(fast, self.base.arrival_rate, None);
                        s.workload.chain_mix = (0..max_len)
                            .map(|i| if i + 1 == len { 1.0 } else { 0.0 })
                            .collect();
                        GridScenario {
                            label: format!("len={len}"),
                            x: len as f64,
                            scenario: s,
                        }
                    })
                    .collect();
                (rows, Some((vnfs, chains)))
            }
            SweepSpec::FailureRate {
                values,
                mean_downtime_slots,
            } => (
                values
                    .pick(fast)
                    .values()
                    .into_iter()
                    .map(|rate| {
                        let mut s = self.base.scenario(fast, self.base.arrival_rate, None);
                        if rate > 0.0 {
                            s = s.with_failures(rate, *mean_downtime_slots);
                        }
                        GridScenario {
                            label: format!("f={rate}"),
                            x: rate,
                            scenario: s,
                        }
                    })
                    .collect(),
                None,
            ),
        }
    }

    /// Flattens the policy set for one reward point, substituting
    /// `{alpha}`/`{beta}` in trained-label templates.
    fn resolve_policies(&self, alpha: f64, beta: f64) -> Vec<ResolvedPolicy> {
        let mut out: Vec<ResolvedPolicy> = Vec::new();
        for spec in &self.policies {
            match spec {
                PolicySpec::Baseline(name) => {
                    assert!(
                        baseline_names().contains(&name.as_str()),
                        "unknown baseline `{name}` (known: {:?})",
                        baseline_names()
                    );
                    out.push(ResolvedPolicy::Baseline(name.clone()));
                }
                PolicySpec::Roster(name) => {
                    for &member in roster(name).unwrap_or_else(|| panic!("unknown roster `{name}`"))
                    {
                        out.push(ResolvedPolicy::Baseline(member.to_string()));
                    }
                }
                PolicySpec::Trained { label } => {
                    let label = label
                        .replace("{alpha}", &format!("{alpha}"))
                        .replace("{beta}", &format!("{beta}"));
                    out.push(ResolvedPolicy::Trained { label });
                }
            }
        }
        let mut labels: Vec<&str> = out.iter().map(ResolvedPolicy::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(
            labels.len(),
            out.len(),
            "manifest policy labels must be unique"
        );
        out
    }

    /// Serializes the manifest to its JSON document form.
    pub fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("schema_version", Value::from(MANIFEST_SCHEMA_VERSION));
        map.insert("name", Value::from(self.name.as_str()));
        map.insert("base", self.base.to_json());
        map.insert("sweep", self.sweep.to_json());
        map.insert("reward", self.reward.to_json());
        map.insert(
            "policies",
            Value::Array(self.policies.iter().map(PolicySpec::to_json).collect()),
        );
        map.insert(
            "seeds",
            self.seeds.to_json_with(|seeds| {
                Value::Array(seeds.iter().map(|&s| Value::from(s)).collect())
            }),
        );
        map.insert("search", self.search.to_json());
        let health: Vec<Value> = self
            .health
            .iter()
            .map(|(metric, weight, up)| {
                let mut w = serde_json::Map::new();
                w.insert("metric", Value::from(metric.as_str()));
                w.insert("weight", Value::from(*weight));
                w.insert("direction", Value::from(if *up { "up" } else { "down" }));
                Value::Object(w)
            })
            .collect();
        map.insert("health", Value::Array(health));
        Value::Object(map)
    }

    /// Parses a manifest from its JSON document form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation found.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let version = v
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or("manifest needs `schema_version`")?;
        if version != MANIFEST_SCHEMA_VERSION {
            return Err(format!(
                "manifest schema version {version} != supported {MANIFEST_SCHEMA_VERSION}"
            ));
        }
        let policies = v
            .get("policies")
            .and_then(Value::as_array)
            .ok_or("manifest needs a `policies` array")?
            .iter()
            .map(PolicySpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let health = match v.get("health") {
            None => crate::search::HealthScore::default_weights(),
            Some(h) => h
                .as_array()
                .ok_or("`health` must be an array")?
                .iter()
                .map(|w| {
                    let metric = req_str(w, "metric", "health weight")?.to_string();
                    let weight = req_f64(w, "weight", "health weight")?;
                    let up = match req_str(w, "direction", "health weight")? {
                        "up" => true,
                        "down" => false,
                        other => {
                            return Err(format!("health direction must be up/down, got `{other}`"))
                        }
                    };
                    Ok((metric, weight, up))
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        Ok(Self {
            name: req_str(v, "name", "manifest")?.to_string(),
            base: ManifestBase::from_json(v.get("base").ok_or("manifest needs `base`")?)?,
            sweep: SweepSpec::from_json(v.get("sweep").ok_or("manifest needs `sweep`")?)?,
            reward: match v.get("reward") {
                None => RewardAxes::default(),
                Some(r) => RewardAxes::from_json(r)?,
            },
            policies,
            seeds: FastScaled::from_json_with(
                v.get("seeds").ok_or("manifest needs `seeds`")?,
                |seeds| {
                    seeds
                        .as_array()
                        .ok_or("seeds must be arrays")?
                        .iter()
                        .map(|s| s.as_u64().ok_or_else(|| "seeds must be u64s".to_string()))
                        .collect()
                },
            )?,
            search: match v.get("search") {
                None => SearchParams::default(),
                Some(s) => SearchParams::from_json(s)?,
            },
            health,
        })
    }

    /// Parses a manifest from JSON text.
    ///
    /// # Errors
    ///
    /// Returns parse or schema errors as text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("manifest JSON: {e:?}"))?;
        Self::from_json(&v)
    }

    /// Loads `dir/<name>.json`.
    ///
    /// # Errors
    ///
    /// Returns I/O, parse, or schema errors as text, and an error when
    /// the file's `name` field disagrees with the file name.
    pub fn load(dir: &Path, name: &str) -> Result<Self, String> {
        let path = dir.join(format!("{name}.json"));
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let manifest = Self::parse(&text)?;
        if manifest.name != name {
            return Err(format!(
                "manifest file {} names itself `{}`",
                path.display(),
                manifest.name
            ));
        }
        Ok(manifest)
    }
}

/// One reward point of an expanded manifest: a complete grid definition
/// awaiting only trained-policy construction.
pub struct ExpandedPoint {
    /// Latency weight α of this point.
    pub alpha: f64,
    /// Cost weight β of this point.
    pub beta: f64,
    /// The reward configuration trained policies use at this point.
    pub reward: RewardConfig,
    /// Grid name (`<manifest>` for a single point,
    /// `<manifest>.a<α>-b<β>` otherwise).
    pub grid_name: String,
    /// Scenario rows, sweep order.
    pub scenarios: Vec<GridScenario>,
    /// Policy columns, manifest order.
    pub policies: Vec<ResolvedPolicy>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Custom catalogs implied by the sweep (chain-length sweeps).
    pub catalogs: Option<(VnfCatalog, ChainCatalog)>,
}

/// A policy column after roster flattening and label substitution.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedPolicy {
    /// Named baseline, constructible via [`baseline_factory`].
    Baseline(String),
    /// Trained column; the factory comes from the expansion's caller.
    Trained {
        /// Final (substituted) column label.
        label: String,
    },
}

impl ResolvedPolicy {
    /// The grid column label.
    pub fn label(&self) -> &str {
        match self {
            ResolvedPolicy::Baseline(name) => name,
            ResolvedPolicy::Trained { label } => label,
        }
    }
}

/// What an [`ExpandedPoint`] asks its caller to train: one policy for
/// `label`, under `reward`, for the point's first scenario (the sweep's
/// anchor row; single-scenario manifests train exactly where they
/// evaluate).
pub struct TrainRequest<'a> {
    /// Column label of the policy being trained.
    pub label: &'a str,
    /// Reward weights of the point.
    pub reward: RewardConfig,
    /// The training scenario.
    pub scenario: &'a Scenario,
    /// α of the point (for logging).
    pub alpha: f64,
    /// β of the point (for logging).
    pub beta: f64,
}

impl ExpandedPoint {
    /// `true` when the point has at least one trained policy column.
    pub fn needs_training(&self) -> bool {
        self.policies
            .iter()
            .any(|p| matches!(p, ResolvedPolicy::Trained { .. }))
    }

    /// Builds the point's [`ExperimentGrid`], asking `trainer` for a
    /// factory per trained column, and attaches the grid's structural
    /// fingerprint. Baseline columns resolve through
    /// [`baseline_factory`].
    ///
    /// # Panics
    ///
    /// Panics when a trained column exists but the point has no
    /// scenarios (cannot happen for a validated manifest).
    pub fn grid_with(
        &self,
        trainer: &mut dyn FnMut(&TrainRequest) -> PolicyFactory,
    ) -> ExperimentGrid {
        let mut grid = ExperimentGrid::new(self.grid_name.clone())
            .seeds(&self.seeds)
            .reward(self.reward);
        if let Some((vnfs, chains)) = &self.catalogs {
            grid = grid.with_catalogs(vnfs.clone(), chains.clone());
        }
        for row in &self.scenarios {
            grid = grid.scenario(row.label.clone(), row.x, row.scenario.clone());
        }
        for policy in &self.policies {
            grid = match policy {
                ResolvedPolicy::Baseline(name) => grid.policy_boxed(
                    name.clone(),
                    baseline_factory(name).expect("validated baseline name"),
                ),
                ResolvedPolicy::Trained { label } => {
                    let scenario = &self
                        .scenarios
                        .first()
                        .expect("expanded point has scenarios")
                        .scenario;
                    let factory = trainer(&TrainRequest {
                        label,
                        reward: self.reward,
                        scenario,
                        alpha: self.alpha,
                        beta: self.beta,
                    });
                    grid.policy_boxed(label.clone(), factory)
                }
            };
        }
        let fp = grid.auto_fingerprint();
        grid.fingerprint(fp)
    }

    /// [`ExpandedPoint::grid_with`] for baseline-only points.
    ///
    /// # Panics
    ///
    /// Panics when the point has trained policy columns.
    pub fn grid(&self) -> ExperimentGrid {
        self.grid_with(&mut |req| {
            panic!(
                "point has trained column `{}` — use grid_with and supply a trainer",
                req.label
            )
        })
    }
}

/// A fully expanded manifest: one grid definition per reward point.
pub struct Expansion {
    /// The manifest's name.
    pub manifest_name: String,
    /// The manifest's mode-independent fingerprint.
    pub fingerprint: String,
    /// The mode this expansion was made for.
    pub fast: bool,
    /// One point per reward-weight combination, axis-major order.
    pub points: Vec<ExpandedPoint>,
}

/// Every baseline name manifests may reference.
pub fn baseline_names() -> &'static [&'static str] {
    &[
        "random",
        "first-fit",
        "best-fit",
        "worst-fit",
        "greedy-latency",
        "greedy-cost",
        "cloud-only",
        "weighted-greedy",
    ]
}

/// The members of a named roster (`"comparison"` keeps plots readable;
/// `"standard"` is the full Table 3 set), or `None` for unknown names.
pub fn roster(name: &str) -> Option<&'static [&'static str]> {
    match name {
        "comparison" => Some(&[
            "random",
            "first-fit",
            "greedy-latency",
            "greedy-cost",
            "cloud-only",
            "weighted-greedy",
        ]),
        "standard" => Some(&[
            "random",
            "first-fit",
            "best-fit",
            "worst-fit",
            "greedy-latency",
            "greedy-cost",
            "cloud-only",
            "weighted-greedy",
        ]),
        _ => None,
    }
}

/// Builds a fresh per-cell factory for a named baseline, or `None` for
/// unknown names. The label↔construction binding here is the registry
/// discipline [`ExperimentGrid::auto_fingerprint`] relies on: one name,
/// one construction, everywhere.
pub fn baseline_factory(name: &str) -> Option<PolicyFactory> {
    Some(match name {
        "random" => Box::new(|| Box::new(RandomPolicy)),
        "first-fit" => Box::new(|| Box::new(FirstFitPolicy)),
        "best-fit" => Box::new(|| Box::new(BestFitPolicy)),
        "worst-fit" => Box::new(|| Box::new(WorstFitPolicy)),
        "greedy-latency" => Box::new(|| Box::new(GreedyLatencyPolicy)),
        "greedy-cost" => Box::new(|| Box::new(GreedyCostPolicy)),
        "cloud-only" => Box::new(|| Box::new(CloudOnlyPolicy)),
        "weighted-greedy" => Box::new(|| Box::new(WeightedGreedyPolicy::default())),
        _ => return None,
    })
}

/// The synthetic per-length chain catalog shared by the fig6 binary and
/// the `fig6_chains` manifests: chain *k* has *k* VNFs drawn in a fixed
/// light-to-medium order, with a latency budget that grows with length.
pub fn synthetic_chains(vnfs: &VnfCatalog, max_len: usize) -> ChainCatalog {
    let order = [
        "nat",
        "firewall",
        "load-balancer",
        "proxy",
        "encryption-gw",
        "wan-optimizer",
    ];
    let chains: Vec<ChainSpec> = (1..=max_len)
        .map(|len| {
            let seq = order[..len]
                .iter()
                .map(|n| vnfs.by_name(n).expect("standard catalog").id)
                .collect();
            ChainSpec::new(
                ChainId(len - 1),
                format!("len-{len}"),
                seq,
                40.0 + 25.0 * len as f64, // budget grows with length
                0.05,
                10.0,
            )
        })
        .collect();
    ChainCatalog::new(chains, vnfs)
}

fn req_str<'a>(v: &'a Value, field: &str, ctx: &str) -> Result<&'a str, String> {
    v.get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx} needs string `{field}`"))
}

fn req_f64(v: &Value, field: &str, ctx: &str) -> Result<f64, String> {
    v.get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx} needs number `{field}`"))
}

fn req_u64(v: &Value, field: &str, ctx: &str) -> Result<u64, String> {
    v.get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx} needs u64 `{field}`"))
}

fn req_usize(v: &Value, field: &str, ctx: &str) -> Result<usize, String> {
    req_u64(v, field, ctx).map(|n| n as usize)
}

/// FNV-1a 64-bit over bytes (same discipline as the grid fingerprint:
/// drift detection, not a security boundary).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest() -> ScenarioManifest {
        ScenarioManifest::new(
            "unit_manifest",
            ManifestBase {
                topology: TopologyFamily::Metro { sites: 4 },
                edge_capacity: None,
                horizon_slots: FastScaled { full: 60, fast: 24 },
                arrival_rate: 2.0,
                chain_count: 4,
                mean_duration_slots: 6.0,
                events: EventSpec::None,
            },
            SweepSpec::ArrivalRate {
                values: FastScaled {
                    full: Axis::List(vec![2.0, 6.0]),
                    fast: Axis::List(vec![2.0]),
                },
            },
        )
        .policy(PolicySpec::Baseline("first-fit".into()))
        .policy(PolicySpec::Baseline("greedy-latency".into()))
        .seeds(FastScaled {
            full: vec![1, 2, 3],
            fast: vec![1, 2],
        })
    }

    #[test]
    fn axis_values_expand_deterministically() {
        assert_eq!(Axis::single(3.0).values(), vec![3.0]);
        assert_eq!(
            Axis::LinRange {
                start: 0.0,
                end: 1.0,
                steps: 3
            }
            .values(),
            vec![0.0, 0.5, 1.0]
        );
        let log = Axis::LogRange {
            start: 1.0,
            end: 4.0,
            steps: 3,
        }
        .values();
        assert_eq!(log.len(), 3);
        assert!((log[1] - 2.0).abs() < 1e-12 && log[2] == 4.0, "{log:?}");
        let a = Axis::Random {
            lo: 0.5,
            hi: 2.0,
            n: 4,
            seed: 9,
        }
        .values();
        let b = Axis::Random {
            lo: 0.5,
            hi: 2.0,
            n: 4,
            seed: 9,
        }
        .values();
        assert_eq!(a, b, "random axes are pure functions of their seed");
        assert!(a.iter().all(|&v| (0.5..2.0).contains(&v)));
        let c = Axis::Random {
            lo: 0.5,
            hi: 2.0,
            n: 4,
            seed: 10,
        }
        .values();
        assert_ne!(a, c, "a different seed samples different values");
    }

    #[test]
    fn reward_axes_pair_and_cross() {
        let paired = RewardAxes {
            alpha: Axis::List(vec![4.0, 1.0]),
            beta: Axis::List(vec![0.25, 1.0]),
            paired: true,
        };
        assert_eq!(paired.points(), vec![(4.0, 0.25), (1.0, 1.0)]);
        let crossed = RewardAxes {
            paired: false,
            ..paired
        };
        assert_eq!(
            crossed.points(),
            vec![(4.0, 0.25), (4.0, 1.0), (1.0, 0.25), (1.0, 1.0)]
        );
    }

    #[test]
    fn expansion_is_mode_aware_and_deterministic() {
        let manifest = tiny_manifest();
        let full = manifest.expand(false);
        assert_eq!(full.points.len(), 1);
        let point = &full.points[0];
        assert_eq!(point.grid_name, "unit_manifest");
        assert_eq!(point.scenarios.len(), 2);
        assert_eq!(point.scenarios[0].label, "lambda=2");
        assert_eq!(point.seeds, vec![1, 2, 3]);
        assert_eq!(point.policies.len(), 2);
        let fast = manifest.expand(true);
        assert_eq!(fast.points[0].scenarios.len(), 1);
        assert_eq!(fast.points[0].seeds, vec![1, 2]);
        assert_eq!(
            fast.points[0].scenarios[0].scenario.horizon_slots, 24,
            "FAST picks the fast horizon"
        );
        // Same manifest, same mode → same grid fingerprints.
        assert_eq!(
            full.points[0].grid().grid_fingerprint(),
            manifest.expand(false).points[0].grid().grid_fingerprint()
        );
        assert_eq!(
            full.fingerprint, fast.fingerprint,
            "manifest fingerprint is mode-free"
        );
    }

    #[test]
    fn trained_labels_substitute_weight_placeholders() {
        let manifest = tiny_manifest()
            .reward(RewardAxes {
                alpha: Axis::List(vec![4.0, 0.25]),
                beta: Axis::List(vec![0.25, 4.0]),
                paired: true,
            })
            .policy(PolicySpec::Trained {
                label: "a{alpha}-b{beta}".into(),
            });
        let expansion = manifest.expand(true);
        assert_eq!(expansion.points.len(), 2);
        assert_eq!(expansion.points[0].policies[2].label(), "a4-b0.25");
        assert_eq!(expansion.points[1].policies[2].label(), "a0.25-b4");
        assert_eq!(expansion.points[0].grid_name, "unit_manifest.a4-b0.25");
        assert!(expansion.points[0].needs_training());
        assert_eq!(expansion.points[0].reward.alpha_latency, 4.0);
        assert_eq!(expansion.points[0].reward.beta_cost, 0.25);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let manifest = tiny_manifest()
            .policy(PolicySpec::Roster("comparison".into()))
            .policy(PolicySpec::Trained {
                label: "drl".into(),
            })
            .reward(RewardAxes {
                alpha: Axis::LogRange {
                    start: 0.25,
                    end: 4.0,
                    steps: 5,
                },
                beta: Axis::Random {
                    lo: 0.1,
                    hi: 2.0,
                    n: 5,
                    seed: 3,
                },
                paired: true,
            });
        let text = serde_json::to_string_pretty(&manifest.to_json());
        let parsed = ScenarioManifest::parse(&text).expect("roundtrip parses");
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.fingerprint(), manifest.fingerprint());
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(baseline_factory("no-such-policy").is_none());
        assert!(roster("no-such-roster").is_none());
        let bad = tiny_manifest().policy(PolicySpec::Baseline("no-such-policy".into()));
        assert!(std::panic::catch_unwind(|| bad.expand(false)).is_err());
    }

    #[test]
    fn baseline_factories_match_policy_names() {
        for &name in baseline_names() {
            let factory = baseline_factory(name).expect("known baseline");
            assert_eq!(factory().name(), name, "label must equal policy name()");
        }
    }

    #[test]
    fn chain_length_sweep_builds_one_hot_rows_and_catalogs() {
        let manifest = ScenarioManifest::new(
            "unit_chains",
            ManifestBase {
                topology: TopologyFamily::Metro { sites: 4 },
                edge_capacity: Some((32.0, 128.0)),
                horizon_slots: FastScaled { full: 60, fast: 24 },
                arrival_rate: 5.0,
                chain_count: 4,
                mean_duration_slots: 12.0,
                events: EventSpec::None,
            },
            SweepSpec::ChainLength {
                max: FastScaled { full: 3, fast: 2 },
            },
        )
        .policy(PolicySpec::Baseline("first-fit".into()));
        let point = &manifest.expand(false).points[0];
        assert_eq!(point.scenarios.len(), 3);
        assert_eq!(point.scenarios[2].label, "len=3");
        assert_eq!(
            point.scenarios[1].scenario.workload.chain_mix,
            vec![0.0, 1.0, 0.0]
        );
        assert!(point.catalogs.is_some());
    }
}
